#!/usr/bin/env python
"""Distributed-FFT transpose pipeline (Appendix A.2.1).

The paper's first numerical example: an FFT stage with AI ≈ 5, CI = 1,
no algorithmic imbalance, and ε = 0.04 noise.  For θ ∈ {1, 2, 8}
partitions per thread the script measures the pipelining gain η with
the simulator's benchmark harness (using the workload's own delay rate
γ_θ) and compares it against the paper's published table.

Run:  python examples/fft_pipeline.py
"""

from repro.bench import BenchSpec, run_benchmark
from repro.model import FFT, PAPER_FFT_TABLE
from repro.net import MELUXINA

N_THREADS = 8
PART_BYTES = 2 << 20  # large partitions: the bandwidth-dominated regime
ITERATIONS = 10


def measured_gain(theta: int) -> float:
    """η = T_bulk / T_pipelined for the FFT workload at this θ."""
    gamma_us = FFT.gamma_us_per_mb(theta)
    common = dict(
        total_bytes=N_THREADS * theta * PART_BYTES,
        n_threads=N_THREADS,
        theta=theta,
        iterations=ITERATIONS,
        gamma_us_per_mb=gamma_us,
    )
    bulk = run_benchmark(BenchSpec(approach="pt2pt_single", **common)).mean
    pipe = run_benchmark(BenchSpec(approach="pt2pt_part", **common)).mean
    return bulk / pipe


def main():
    print("Distributed FFT pipeline (Appendix A.2.1 workload)")
    print(f"  N = {N_THREADS} threads, S_part = {PART_BYTES >> 20} MiB, "
          f"beta = {MELUXINA.bandwidth / 1e9:.0f} GB/s\n")
    print(f"  {'theta':>5} | {'gamma [us/MB]':>14} | {'eta (Eq. 4)':>11} | "
          f"{'eta measured':>12} | {'eta paper':>9}")
    print("  " + "-" * 64)
    for theta in (1, 2, 8):
        gamma = FFT.gamma_us_per_mb(theta)
        predicted = FFT.eta(N_THREADS, theta)
        measured = measured_gain(theta)
        paper_gamma, paper_eta = PAPER_FFT_TABLE[theta]
        print(
            f"  {theta:>5} | {gamma:>14.2f} | {predicted:>11.4f} | "
            f"{measured:>12.4f} | {paper_eta:>9.4f}"
        )
    print("\nThe measured gain tracks Eq. (4) from below: the model omits")
    print("latency and thread congestion, exactly as the paper observes")
    print("for its own measured-vs-theory gap (2.54 vs 2.67 in Fig. 8).")


if __name__ == "__main__":
    main()
