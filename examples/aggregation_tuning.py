#!/usr/bin/env python
"""Choosing ``MPIR_CVAR_PART_AGGR_SIZE`` for a small-partition workload.

A particle-exchange-style pattern: 4 threads each producing 32 small
partitions per step.  The script sweeps the aggregation bound, shows the
message count and time at several buffer sizes, and reports the best
setting per size — reproducing the Fig. 7 guidance that aggregation
helps until the buffer reaches N_part x aggr_size.

Run:  python examples/aggregation_tuning.py
"""

from repro.bench import BenchSpec, run_benchmark
from repro.mpi import Cvars
from repro.mpi.partitioned import negotiate_message_count

N_THREADS = 4
THETA = 32
N_PARTS = N_THREADS * THETA
BOUNDS = (0, 512, 1024, 4096, 16384)
SIZES = (2048, 16384, 131072, 1 << 20)
ITERATIONS = 10


def time_us(total_bytes: int, aggr: int) -> float:
    return run_benchmark(
        BenchSpec(
            approach="pt2pt_part",
            total_bytes=total_bytes,
            n_threads=N_THREADS,
            theta=THETA,
            iterations=ITERATIONS,
            cvars=Cvars(part_aggr_size=aggr),
        )
    ).mean_us


def main():
    print(f"Aggregation tuning: {N_THREADS} threads x theta={THETA} "
          f"({N_PARTS} partitions)\n")
    header = f"  {'buffer':>8} | " + " | ".join(
        f"{('aggr=' + str(b)) if b else 'no aggr':>12}" for b in BOUNDS
    ) + " | best"
    print(header)
    print("  " + "-" * (len(header) - 2))
    for size in SIZES:
        times = {b: time_us(size, b) for b in BOUNDS}
        cells = " | ".join(f"{times[b]:>12.2f}" for b in BOUNDS)
        best = min(times, key=times.get)
        msgs = negotiate_message_count(N_PARTS, N_PARTS, size, best)
        label = f"aggr={best}" if best else "no aggr"
        print(f"  {size:>8} | {cells} | {label} ({msgs} msgs)")
    print("\ntimes in us; aggregation stops helping once the buffer")
    print(f"exceeds N_part x bound (e.g. {N_PARTS} x 512 = "
          f"{N_PARTS * 512 >> 10} KiB for the 512 B bound).")


if __name__ == "__main__":
    main()
