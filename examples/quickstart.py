#!/usr/bin/env python
"""Quickstart: MPI-4.0 partitioned communication on the simulator.

Builds a two-rank world, moves one buffer with ``Psend/Precv``, checks
the data end to end, and prints where the time went — in ~40 lines of
user code.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.mpi import Cvars, MPIWorld

N_PARTITIONS = 8
NBYTES = 1 << 20  # 1 MiB


def sender(world):
    comm = world.comm_world(0)
    data = (np.arange(NBYTES) % 251).astype(np.uint8)
    # MPI_Psend_init: one request over the whole buffer.
    req = yield from comm.psend_init(
        dest=1, tag=7, partitions=N_PARTITIONS, nbytes=NBYTES, data=data
    )
    yield from req.start()  # MPI_Start
    for p in range(N_PARTITIONS):  # each worker would do its own share
        yield from req.pready(p)  # MPI_Pready
    yield from req.wait()  # MPI_Wait
    return data


def receiver(world, buf):
    comm = world.comm_world(1)
    req = yield from comm.precv_init(
        source=0, tag=7, partitions=N_PARTITIONS, nbytes=NBYTES, buffer=buf
    )
    yield from req.start()
    yield from req.wait()
    return world.now


def main():
    world = MPIWorld(n_ranks=2, cvars=Cvars(verify_payloads=True))
    buf = np.zeros(NBYTES, dtype=np.uint8)
    s = world.launch(0, sender(world))
    r = world.launch(1, receiver(world, buf))
    world.run()

    elapsed_us = r.value * 1e6
    wire_us = NBYTES / world.params.bandwidth * 1e6
    ok = bool((buf == s.value).all())
    print(f"moved {NBYTES >> 20} MiB in {N_PARTITIONS} partitions")
    print(f"  data intact:        {ok}")
    print(f"  time to solution:   {elapsed_us:8.2f} us")
    print(f"  pure wire time:     {wire_us:8.2f} us "
          f"({wire_us / elapsed_us:.0%} of total)")
    print(f"  messages on wire:   {world.fabric.packets_sent}")
    assert ok


if __name__ == "__main__":
    main()
