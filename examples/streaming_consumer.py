#!/usr/bin/env python
"""Receiver-side pipelining with ``MPI_Parrived``.

The sender's threads produce partitions with staggered compute; the
receiver *consumes* each partition as soon as ``Parrived`` reports it,
instead of blocking in ``Wait`` for the whole buffer — overlapping its
own post-processing with the remaining transfers (the receive-side
mirror of the early-bird effect).

The script compares end-to-end completion (last partition consumed)
between the streaming consumer and a wait-then-process baseline.

Run:  python examples/streaming_consumer.py
"""

import numpy as np

from repro.mpi import Cvars, MPIWorld
from repro.threads import FixedDelayModel

N_PARTS = 8
PART_BYTES = 1 << 20  # 1 MiB partitions: rendezvous territory
TOTAL = N_PARTS * PART_BYTES
GAMMA_US_PER_MB = 200.0  # strong producer-side imbalance
PROCESS_US = 25.0  # receiver-side post-processing per partition


def sender(world):
    comm = world.comm_world(0)
    delay = FixedDelayModel.from_us_per_mb(GAMMA_US_PER_MB)
    req = yield from comm.psend_init(
        dest=1, tag=4, partitions=N_PARTS, nbytes=TOTAL
    )
    yield from req.start()
    for p in range(N_PARTS):
        dt = delay.compute_time(0, p, PART_BYTES, N_PARTS, 1)
        if dt:
            yield world.env.timeout(dt)
        yield from req.pready(p)
    yield from req.wait()


def streaming_receiver(world):
    """Poll Parrived and process partitions as they land."""
    comm = world.comm_world(1)
    req = yield from comm.precv_init(
        source=0, tag=4, partitions=N_PARTS, nbytes=TOTAL
    )
    yield from req.start()
    done = set()
    while len(done) < N_PARTS:
        progressed = False
        for p in range(N_PARTS):
            if p not in done and req.parrived(p):
                yield world.env.timeout(PROCESS_US * 1e-6)  # consume it
                done.add(p)
                progressed = True
        if not progressed:
            yield world.env.timeout(1e-6)  # poll interval
    yield from req.wait()
    return world.now


def blocking_receiver(world):
    """Wait for everything, then process all partitions."""
    comm = world.comm_world(1)
    req = yield from comm.precv_init(
        source=0, tag=4, partitions=N_PARTS, nbytes=TOTAL
    )
    yield from req.start()
    yield from req.wait()
    yield world.env.timeout(N_PARTS * PROCESS_US * 1e-6)
    return world.now


def run(receiver_fn):
    world = MPIWorld(n_ranks=2)
    world.launch(0, sender(world))
    p = world.launch(1, receiver_fn(world))
    world.run()
    return p.value * 1e6


def main():
    streaming = run(streaming_receiver)
    blocking = run(blocking_receiver)
    print(f"streaming consumer (Parrived-driven): {streaming:9.1f} us")
    print(f"wait-then-process baseline:           {blocking:9.1f} us")
    print(f"receive-side overlap gain:            x{blocking / streaming:.2f}")
    print()
    print("Note the paper's caveat (§3.2.1): Parrived's granularity is the")
    print("internal *message*, so aggregation trades away exactly this")
    print("fine-grained consumption — MPICH optimizes for latency instead.")
    assert streaming < blocking


if __name__ == "__main__":
    main()
