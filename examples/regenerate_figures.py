#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation.

Prints the textual reproduction of Tables 1-2 and Figures 4-8 with the
paper-vs-measured headline factors.  ``--full`` uses the paper's full
size grids (slower); the default quick mode spans the same ranges with
fewer points.

Run:  python examples/regenerate_figures.py [--full] [--iters N]
"""

import argparse
import sys
import time

from repro.figures import (
    fig4_improvement,
    fig5_congestion,
    fig6_vcis,
    fig7_aggregation,
    fig8_earlybird,
    tables,
)

DRIVERS = (
    fig4_improvement,
    fig5_congestion,
    fig6_vcis,
    fig7_aggregation,
    fig8_earlybird,
)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="full size grids (slower)")
    parser.add_argument("--iters", type=int, default=10,
                        help="iterations per benchmark point")
    args = parser.parse_args(argv)

    print(tables.table1())
    print()
    print(tables.table2())
    for driver in DRIVERS:
        t0 = time.time()
        data = driver.run(iterations=args.iters, quick=not args.full)
        print("\n" + "=" * 72)
        print(driver.report(data))
        print(f"[regenerated in {time.time() - t0:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
