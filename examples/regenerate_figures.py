#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation.

Prints the textual reproduction of Tables 1-2 and Figures 4-8 with the
paper-vs-measured headline factors.  ``--full`` uses the paper's full
size grids (slower); the default quick mode spans the same ranges with
fewer points.  ``--jobs N`` fans each figure's scenario grid out across
N worker processes through the unified runner (0 = one per CPU) with
results identical to a serial run.

Run:  python examples/regenerate_figures.py [--full] [--iters N] [--jobs N]
"""

import argparse
import sys
import time

from repro.figures import (
    fig4_improvement,
    fig5_congestion,
    fig6_vcis,
    fig7_aggregation,
    fig8_earlybird,
    tables,
)

DRIVERS = (
    fig4_improvement,
    fig5_congestion,
    fig6_vcis,
    fig7_aggregation,
    fig8_earlybird,
)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="full size grids (slower)")
    parser.add_argument("--iters", type=int, default=10,
                        help="iterations per benchmark point")
    parser.add_argument("--jobs", type=int, default=0,
                        help="runner worker processes (0 = one per CPU)")
    args = parser.parse_args(argv)

    from repro.runner import default_jobs

    if args.jobs < 0:
        parser.error("--jobs must be >= 0")
    jobs = args.jobs if args.jobs > 0 else default_jobs()
    print(tables.table1())
    print()
    print(tables.table2())
    for driver in DRIVERS:
        t0 = time.time()
        data = driver.run(iterations=args.iters, quick=not args.full,
                          jobs=jobs)
        print("\n" + "=" * 72)
        print(driver.report(data))
        print(f"[regenerated in {time.time() - t0:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
