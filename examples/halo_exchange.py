#!/usr/bin/env python
"""Halo exchange for a 3-D finite-difference stencil (Appendix A.2.2).

The paper's second numerical example: a distributed 4th-order stencil on
64³ blocks with two ghost layers, δ = 0.5 algorithmic imbalance, and
ε = 0.04 system noise.  Each rank computes its face partitions and sends
them to the neighbour as soon as they are ready; the early-bird overlap
is compared against bulk synchronization and against the Eq. (4)
prediction using the workload's own γ_θ.

Run:  python examples/halo_exchange.py
"""

import numpy as np

from repro.bench import BenchSpec, run_benchmark
from repro.model import STENCIL, eta_large
from repro.mpi import Cvars, MPIWorld
from repro.net import MELUXINA
from repro.threads import GaussianComputeModel, ThreadTeam

N_THREADS = 8
THETA = 2  # two faces per thread
FACE_BYTES = 66 * 66 * 8  # one 64^2 face + ghosts, float64
TOTAL = N_THREADS * THETA * FACE_BYTES
ITERATIONS = 20


def run_side(world, rank, peer, compute, results):
    """One rank of the halo exchange: compute faces, pipeline them out,
    and receive the peer's faces (symmetric)."""
    comm = world.comm_world(rank)
    n_parts = N_THREADS * THETA
    sreq = yield from comm.psend_init(
        dest=peer, tag=1, partitions=n_parts, nbytes=TOTAL
    )
    rreq = yield from comm.precv_init(
        source=peer, tag=1, partitions=n_parts, nbytes=TOTAL
    )
    team = ThreadTeam(world.env, N_THREADS,
                      world.params.barrier_time(N_THREADS))
    times = []

    def thread_body(tid):
        for it in range(ITERATIONS):
            if tid == 0:
                yield from comm.barrier()
                times.append(-world.now)
                yield from sreq.start()
                yield from rreq.start()
            yield from team.barrier()
            for j in range(THETA):
                p = tid * THETA + j
                dt = compute.compute_time(tid, p, FACE_BYTES, N_THREADS, THETA)
                if dt > 0:
                    yield world.env.timeout(dt)
                yield from sreq.pready(p)
            yield from team.barrier()
            if tid == 0:
                yield from sreq.wait()
                yield from rreq.wait()
                times[-1] += world.now

    procs = team.fork(thread_body)
    yield from team.join(procs)
    results[rank] = times


def main():
    print("3-D stencil halo exchange (Appendix A.2.2 workload)")
    print(f"  {N_THREADS} threads x theta={THETA}, "
          f"{FACE_BYTES} B/face, {TOTAL >> 10} KiB per exchange\n")

    # --- pipelined halo exchange with the Gaussian compute model -----
    world = MPIWorld(n_ranks=2, seed=42)
    compute = {
        r: GaussianComputeModel(
            mu=STENCIL.mu,
            epsilon=STENCIL.epsilon,
            delta=STENCIL.delta,
            rng=world.rng.stream(f"stencil-rank{r}"),
        )
        for r in (0, 1)
    }
    results = {}
    for rank, peer in ((0, 1), (1, 0)):
        world.launch(rank, run_side(world, rank, peer, compute[rank], results))
    world.run()
    pipelined = float(np.mean(results[0][2:]))  # skip warm-up

    # --- the same workload, bulk-synchronized, via the harness ----------
    bulk = run_benchmark(
        BenchSpec(
            approach="pt2pt_single",
            total_bytes=TOTAL,
            n_threads=N_THREADS,
            theta=THETA,
            iterations=ITERATIONS,
        )
    ).mean

    gamma = STENCIL.gamma(THETA)
    predicted = eta_large(N_THREADS, THETA, MELUXINA.bandwidth, gamma)
    print(f"  bulk exchange (no overlap, comm only): {bulk * 1e6:8.2f} us")
    print(f"  pipelined exchange (incl. compute):    {pipelined * 1e6:8.2f} us")
    print(f"  workload delay rate gamma_theta:       "
          f"{STENCIL.gamma_us_per_mb(THETA):8.2f} us/MB")
    print(f"  Eq. (4) predicted comm gain:           x{predicted:.3f}")
    print("\nThe pipelined time above includes the stencil compute; the")
    print("prediction applies to the communication fraction it overlaps.")


if __name__ == "__main__":
    main()
