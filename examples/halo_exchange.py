#!/usr/bin/env python
"""Halo exchange for a 3-D finite-difference stencil — at topology scale.

The paper's second numerical example (Appendix A.2.2) is a distributed
4th-order stencil on 64³ blocks with two ghost layers.  Originally this
script hand-rolled a two-rank exchange; it now drives the
:mod:`repro.apps` Halo3D pattern instead: 8 ranks on a periodic 2×2×2
grid, six ghost faces per rank per iteration, one partition per thread,
with the workload's own compute rate providing the overlap window.  The
measured partitioned-vs-bulk gain is compared against the Eq. (4)
prediction using the stencil workload's γ_θ.

Run:  python examples/halo_exchange.py
"""

from repro.apps import PatternConfig, PatternSweep, build_pattern
from repro.model import STENCIL, eta_large
from repro.mpi import Cvars
from repro.net import MELUXINA

N_RANKS = 8
N_THREADS = 8
FACE_BYTES = 66 * 66 * 8 * 8  # one 64^2 face + ghosts, float64, 8 planes
ITERATIONS = 10
#: One VCI per thread (the paper's §4.2.1 multithreaded configuration);
#: on a single VCI the 48 concurrent rendezvous faces congest the
#: progress engine — the very effect Figs. 5/6 quantify.
CVARS = Cvars(num_vcis=N_THREADS)


def main():
    print("3-D stencil halo exchange (Appendix A.2.2 workload, "
          "repro.apps.halo3d)")
    mu_us_per_mb = STENCIL.mu * 1e6 * 1e6

    sweep = PatternSweep()
    results = {}
    for approach in ("pt2pt_part", "pt2pt_single"):
        config = PatternConfig(
            pattern="halo3d",
            approach=approach,
            n_ranks=N_RANKS,
            n_threads=N_THREADS,
            msg_bytes=FACE_BYTES,
            iterations=ITERATIONS,
            compute_us_per_mb=mu_us_per_mb,
            seed=42,
            cvars=CVARS,
        )
        results[approach] = sweep.run(config)

    pattern = build_pattern(results["pt2pt_part"].config)
    print(f"  {pattern.describe()}")
    print(f"  {N_THREADS} threads/rank, {FACE_BYTES >> 10} KiB per face, "
          f"compute rate {mu_us_per_mb:.1f} us/MB\n")

    part = results["pt2pt_part"]
    bulk = results["pt2pt_single"]
    measured = bulk.mean / part.mean if part.mean else float("inf")

    theta = 1  # one partition per thread in the pattern framework
    gamma = STENCIL.gamma(theta)
    predicted = eta_large(N_THREADS, theta, MELUXINA.bandwidth, gamma)
    print(f"  bulk exchange (pt2pt_single):          {bulk.mean_us:8.2f} us")
    print(f"  partitioned exchange (pt2pt_part):     {part.mean_us:8.2f} us")
    print(f"  perceived bandwidth (partitioned):     "
          f"{part.bandwidth_gbs:8.2f} GB/s")
    print(f"  measured comm gain eta:                x{measured:.3f}")
    print(f"  workload delay rate gamma_theta:       "
          f"{STENCIL.gamma_us_per_mb(theta):8.2f} us/MB")
    print(f"  Eq. (4) predicted comm gain:           x{predicted:.3f}")
    print("\nThe measured gain includes topology fan-out effects (6 faces")
    print("per rank share each NIC) the two-rank Eq. (4) model ignores.")
    assert measured > 1.0, "partitioned should beat bulk with overlap"


if __name__ == "__main__":
    main()
