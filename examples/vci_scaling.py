#!/usr/bin/env python
"""Thread-congestion mitigation with VCIs (the Fig. 5 → Fig. 6 story).

Sweeps thread counts against VCI counts for the partitioned and
``Pt2Pt many`` approaches at a small message size, printing the penalty
relative to the single-message baseline.  Shows both of the paper's
recommendations:

* many threads → prefer ``Pt2Pt many`` with one VCI per thread;
* the partitioned path keeps a residual (shared-counter atomics) even
  with enough VCIs — its strength is the simple interface.

Run:  python examples/vci_scaling.py
"""

from repro.bench import BenchSpec, run_benchmark
from repro.mpi import Cvars, VCI_METHOD_TAG_RR

MSG_BYTES = 1024
THREADS = (2, 8, 32)
VCIS = (1, 8, 32)
ITERATIONS = 8


def penalty(approach: str, n_threads: int, n_vcis: int) -> float:
    cvars = Cvars(
        num_vcis=n_vcis,
        vci_method=VCI_METHOD_TAG_RR if n_vcis > 1 else "comm",
    )
    t = run_benchmark(
        BenchSpec(
            approach=approach,
            total_bytes=MSG_BYTES,
            n_threads=n_threads,
            iterations=ITERATIONS,
            cvars=cvars,
        )
    ).mean
    base = run_benchmark(
        BenchSpec(
            approach="pt2pt_single",
            total_bytes=MSG_BYTES,
            n_threads=n_threads,
            iterations=ITERATIONS,
            cvars=cvars,
        )
    ).mean
    return t / base


def main():
    print(f"Penalty vs Pt2Pt single at {MSG_BYTES} B "
          "(rows: threads, cols: VCIs)\n")
    for approach in ("pt2pt_part", "pt2pt_many"):
        print(f"  {approach}:")
        print("    threads\\VCIs | " + " | ".join(f"{v:>7}" for v in VCIS))
        print("    " + "-" * 46)
        for n in THREADS:
            cells = " | ".join(
                f"x{penalty(approach, n, v):>6.2f}" for v in VCIS
            )
            print(f"    {n:>12} | {cells}")
        print()
    print("Reading: Pt2Pt many reaches ~x1 with one VCI per thread;")
    print("the partitioned path keeps its atomic-counter residual, so")
    print("performance-critical many-thread codes should prefer")
    print("Comm_dup-per-thread (the paper's recommendation, §4.2.3).")


if __name__ == "__main__":
    main()
