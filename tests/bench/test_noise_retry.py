"""Tests for the Gaussian compute model in the harness and the paper's
CI-based rerun rule under real noise."""

import pytest

from repro.bench import BenchSpec, run_benchmark
from repro.threads import GaussianComputeModel, NoDelayModel


class TestGaussianSpec:
    def test_spec_builds_gaussian_model(self):
        spec = BenchSpec(
            approach="pt2pt_single",
            total_bytes=1 << 20,
            gaussian_mu_us_per_mb=10.0,
            gaussian_epsilon=0.1,
        )
        model = spec.compute_model()
        assert isinstance(model, GaussianComputeModel)
        assert model.mu == pytest.approx(1e-11)
        assert model.sigma == pytest.approx(0.05)

    def test_gaussian_takes_precedence_over_gamma(self):
        spec = BenchSpec(
            approach="pt2pt_single",
            total_bytes=1 << 20,
            gamma_us_per_mb=100.0,
            gaussian_mu_us_per_mb=10.0,
        )
        assert isinstance(spec.compute_model(), GaussianComputeModel)

    def test_no_noise_defaults_to_nodelay(self):
        spec = BenchSpec(approach="pt2pt_single", total_bytes=64)
        assert isinstance(spec.compute_model(), NoDelayModel)


class TestNoisyRuns:
    def _noisy_spec(self, **kw):
        return BenchSpec(
            approach="pt2pt_part",
            total_bytes=1 << 20,
            n_threads=4,
            iterations=10,
            gaussian_mu_us_per_mb=200.0,
            gaussian_epsilon=0.8,
            gaussian_delta=0.5,
            **kw,
        )

    def test_noise_produces_variance(self):
        result = run_benchmark(self._noisy_spec())
        assert result.stats.std > 0

    def test_noise_is_seeded_and_reproducible(self):
        a = run_benchmark(self._noisy_spec(seed=3))
        b = run_benchmark(self._noisy_spec(seed=3))
        assert a.times == b.times

    def test_different_seeds_differ(self):
        a = run_benchmark(self._noisy_spec(seed=3))
        b = run_benchmark(self._noisy_spec(seed=4))
        assert a.times != b.times

    def test_noisy_compute_still_overlaps(self):
        """Average delay behaves like the early-bird delay: pipelined
        time stays below bulk."""
        bulk = run_benchmark(
            BenchSpec(
                approach="pt2pt_single",
                total_bytes=1 << 20,
                n_threads=4,
                iterations=10,
                gaussian_mu_us_per_mb=200.0,
                gaussian_epsilon=0.8,
            )
        ).mean
        pipe = run_benchmark(self._noisy_spec()).mean
        assert pipe < bulk


class TestRetryRule:
    def test_retries_triggered_by_noise(self):
        """With extreme noise and tiny samples the 5 % rule fires."""
        spec = BenchSpec(
            approach="pt2pt_part",
            total_bytes=1 << 20,
            n_threads=4,
            iterations=3,
            gaussian_mu_us_per_mb=500.0,
            gaussian_epsilon=1.5,
            gaussian_delta=1.0,
            max_retries=5,
            seed=1,
        )
        result = run_benchmark(spec)
        # The run either converged early or consumed retries; either
        # way the retry machinery ran without error and is bounded.
        assert 0 <= result.retries <= 5

    def test_retry_cap_respected(self):
        spec = BenchSpec(
            approach="pt2pt_part",
            total_bytes=1 << 20,
            n_threads=4,
            iterations=2,
            gaussian_mu_us_per_mb=500.0,
            gaussian_epsilon=2.0,
            gaussian_delta=2.0,
            max_retries=2,
            seed=1,
        )
        result = run_benchmark(spec)
        assert result.retries <= 2
