"""Tests for the paper's measurement statistics."""

import math

import pytest

from repro.bench import needs_rerun, summarize


class TestSummarize:
    def test_constant_samples(self):
        s = summarize([2.0] * 10)
        assert s.mean == 2.0
        assert s.std == 0.0
        assert s.ci_half == 0.0
        assert s.relative_ci == 0.0

    def test_single_sample(self):
        s = summarize([5.0])
        assert s.n == 1 and s.mean == 5.0 and s.ci_half == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_mean_and_extremes(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0 and s.maximum == 3.0

    def test_ci_uses_student_t(self):
        """For n=5, 90 % CI: t(0.95, df=4) = 2.1318."""
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        s = summarize(samples)
        std = math.sqrt(2.5)
        expected = 2.131846786 * std / math.sqrt(5)
        assert s.ci_half == pytest.approx(expected, rel=1e-6)

    def test_ci_shrinks_with_samples(self):
        wide = summarize([1.0, 3.0] * 3)
        narrow = summarize([1.0, 3.0] * 50)
        assert narrow.ci_half < wide.ci_half

    def test_custom_confidence(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        s90 = summarize(samples, confidence=0.90)
        s99 = summarize(samples, confidence=0.99)
        assert s99.ci_half > s90.ci_half


class TestRerunRule:
    def test_tight_run_accepted(self):
        s = summarize([1.0, 1.001, 0.999, 1.0, 1.0])
        assert not needs_rerun(s)

    def test_noisy_run_rejected(self):
        s = summarize([1.0, 3.0, 0.2, 2.5, 0.6])
        assert needs_rerun(s)

    def test_exact_threshold(self):
        """The rule is strictly 'greater than 5 %'."""
        s = summarize([2.0] * 10)
        assert not needs_rerun(s)  # 0 % CI

    def test_custom_fraction(self):
        s = summarize([1.0, 1.2, 0.8, 1.1, 0.9])
        assert needs_rerun(s, ci_fraction=0.01)
        assert not needs_rerun(s, ci_fraction=0.5)
