"""Tests for sweeps and report formatting."""

import pytest

from repro.bench import (
    BenchSpec,
    SweepResult,
    format_bandwidth_table,
    format_ratio_line,
    format_us_table,
    size_grid,
    sweep_approaches,
    sweep_sizes,
)


class TestSizeGrid:
    def test_powers_of_two(self):
        assert size_grid(16, 128) == [16, 32, 64, 128]

    def test_multiple_of_respected(self):
        grid = size_grid(100, 1000, multiple_of=24)
        assert all(s % 24 == 0 for s in grid)
        assert all(100 <= s <= 1000 for s in grid)

    def test_validation(self):
        # Both bounds-validation branches: min_bytes < 1, and
        # max_bytes < min_bytes with a valid lower bound.
        with pytest.raises(ValueError):
            size_grid(0, 100)
        with pytest.raises(ValueError):
            size_grid(100, 10)
        with pytest.raises(ValueError):
            size_grid(100, 1000, multiple_of=0)

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            size_grid(3, 3, multiple_of=1024)

    def test_points_per_decade_removed(self):
        # The deprecated no-op parameter is gone (removed as announced).
        with pytest.raises(TypeError):
            size_grid(16, 128, points_per_decade=5)

    def test_no_warning(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert size_grid(16, 64) == [16, 32, 64]


@pytest.fixture(scope="module")
def small_sweep():
    base = BenchSpec(approach="pt2pt_single", total_bytes=64, iterations=2)
    return sweep_approaches(
        base, ["pt2pt_single", "pt2pt_part"], [64, 1024, 16384]
    )


class TestSweep:
    def test_all_points_present(self, small_sweep):
        assert len(small_sweep) == 6
        assert small_sweep.approaches() == ["pt2pt_part", "pt2pt_single"]
        assert small_sweep.sizes("pt2pt_single") == [64, 1024, 16384]

    def test_series_us_monotone_in_size(self, small_sweep):
        series = small_sweep.series_us("pt2pt_single")
        times = [t for _, t, _ in series]
        assert times == sorted(times)

    def test_bandwidth_series(self, small_sweep):
        series = small_sweep.series_bandwidth("pt2pt_single")
        assert series[-1][1] > series[0][1]  # large msgs → more GB/s

    def test_ratio(self, small_sweep):
        r = small_sweep.ratio("pt2pt_part", "pt2pt_single", 64)
        assert r > 0

    def test_sweep_sizes_accumulates(self):
        base = BenchSpec(approach="pt2pt_single", total_bytes=64, iterations=1)
        out = SweepResult()
        sweep_sizes(base, [64], out=out)
        sweep_sizes(base, [128], out=out)
        assert out.sizes("pt2pt_single") == [64, 128]


class TestReporting:
    def test_us_table_contains_data(self, small_sweep):
        table = format_us_table(small_sweep, title="demo")
        assert "demo" in table
        assert "pt2pt_single" in table and "pt2pt_part" in table
        assert "1KiB" in table and "16KiB" in table and "64B" in table

    def test_bandwidth_table(self, small_sweep):
        table = format_bandwidth_table(small_sweep)
        assert "pt2pt_single" in table

    def test_ratio_line(self, small_sweep):
        line = format_ratio_line(
            small_sweep, "pt2pt_part", "pt2pt_single", 64, note="smallest"
        )
        assert line.startswith("pt2pt_part/pt2pt_single @ 64B: x")
        assert "smallest" in line

    def test_table_column_subset(self, small_sweep):
        table = format_us_table(small_sweep, approaches=["pt2pt_single"])
        assert "pt2pt_part" not in table
