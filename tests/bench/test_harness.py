"""Tests for the Fig. 3 benchmark harness."""

import pytest

from repro.bench import APPROACHES, BenchSpec, run_benchmark
from repro.mpi import Cvars
from repro.net import MELUXINA


class TestSpecValidation:
    def test_unknown_approach(self):
        with pytest.raises(KeyError):
            BenchSpec(approach="nope", total_bytes=64)

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            BenchSpec(approach="pt2pt_single", total_bytes=64, iterations=0)

    def test_compute_model_selection(self):
        from repro.threads import FixedDelayModel, NoDelayModel

        assert isinstance(
            BenchSpec(approach="pt2pt_single", total_bytes=64).compute_model(),
            NoDelayModel,
        )
        spec = BenchSpec(
            approach="pt2pt_single", total_bytes=64, gamma_us_per_mb=50.0
        )
        assert isinstance(spec.compute_model(), FixedDelayModel)


class TestSingleRuns:
    @pytest.mark.parametrize("name", sorted(APPROACHES))
    def test_every_approach_runs_and_verifies(self, name):
        result = run_benchmark(
            BenchSpec(
                approach=name,
                total_bytes=2048,
                n_threads=2,
                theta=2,
                iterations=3,
                verify=True,
            )
        )
        assert result.verified
        assert result.mean > 0
        assert len(result.times) == 3

    def test_deterministic_runs_have_zero_variance(self):
        result = run_benchmark(
            BenchSpec(approach="pt2pt_single", total_bytes=1024, iterations=8)
        )
        # Identical up to float rounding of timestamp subtraction.
        assert result.stats.relative_ci < 1e-9

    def test_deterministic_reproducibility(self):
        spec = BenchSpec(
            approach="pt2pt_part", total_bytes=4096, n_threads=4, iterations=4
        )
        assert run_benchmark(spec).mean == run_benchmark(spec).mean

    def test_warmup_iterations_excluded(self):
        r1 = run_benchmark(
            BenchSpec(approach="pt2pt_single", total_bytes=64,
                      iterations=5, warmup=0)
        )
        r2 = run_benchmark(
            BenchSpec(approach="pt2pt_single", total_bytes=64,
                      iterations=5, warmup=3)
        )
        assert len(r1.times) == len(r2.times) == 5

    def test_bandwidth_metric(self):
        result = run_benchmark(
            BenchSpec(approach="pt2pt_single", total_bytes=1 << 20,
                      iterations=3)
        )
        assert result.bandwidth == pytest.approx(
            (1 << 20) / result.mean
        )
        assert result.bandwidth_gbs < MELUXINA.bandwidth / 1e9

    def test_mean_us_unit(self):
        result = run_benchmark(
            BenchSpec(approach="pt2pt_single", total_bytes=64, iterations=2)
        )
        assert result.mean_us == pytest.approx(result.mean * 1e6)


class TestComputeRemoval:
    def test_delay_removed_from_bulk_measurement(self):
        """§2.1: the bulk time excludes the compute delay itself."""
        base = run_benchmark(
            BenchSpec(approach="pt2pt_single", total_bytes=1 << 20,
                      n_threads=4, iterations=3)
        ).mean
        delayed = run_benchmark(
            BenchSpec(approach="pt2pt_single", total_bytes=1 << 20,
                      n_threads=4, iterations=3, gamma_us_per_mb=100.0)
        ).mean
        # The delay is subtracted, so bulk time is delay-independent.
        assert delayed == pytest.approx(base, rel=0.02)

    def test_pipelined_time_shrinks_with_delay(self):
        """The early-bird effect: overlap reduces the net comm time."""
        base = run_benchmark(
            BenchSpec(approach="pt2pt_part", total_bytes=1 << 20,
                      n_threads=4, iterations=3)
        ).mean
        delayed = run_benchmark(
            BenchSpec(approach="pt2pt_part", total_bytes=1 << 20,
                      n_threads=4, iterations=3, gamma_us_per_mb=100.0)
        ).mean
        assert delayed < base


class TestAmForcing:
    def test_old_approach_gets_am_world(self):
        from repro.bench import build_world

        spec = BenchSpec(approach="pt2pt_part_old", total_bytes=64)
        assert build_world(spec).cvars.part_force_am

    def test_new_approach_keeps_tag_path(self):
        from repro.bench import build_world

        spec = BenchSpec(approach="pt2pt_part", total_bytes=64)
        assert not build_world(spec).cvars.part_force_am


class TestRetryRule:
    def test_no_retries_for_deterministic_run(self):
        result = run_benchmark(
            BenchSpec(approach="pt2pt_single", total_bytes=64,
                      iterations=4, max_retries=10)
        )
        assert result.retries == 0
