"""Tests for the approach implementations against Tables 1 and 2."""

import pytest

from repro.bench import APPROACHES, BenchSpec, run_benchmark
from repro.bench.approaches import ApproachConfig
from repro.figures.tables import TABLE1_SENDER, TABLE2_RECEIVER
from repro.net import PacketKind


class TestConfig:
    def test_partition_geometry(self):
        cfg = ApproachConfig(total_bytes=1024, n_threads=4, theta=2)
        assert cfg.n_parts == 8
        assert cfg.part_bytes == 128
        assert list(cfg.partitions_of(0)) == [0, 1]
        assert list(cfg.partitions_of(3)) == [6, 7]

    def test_indivisible_total_rejected(self):
        with pytest.raises(ValueError):
            ApproachConfig(total_bytes=1000, n_threads=3, theta=1)

    def test_too_small_total_rejected(self):
        with pytest.raises(ValueError):
            ApproachConfig(total_bytes=2, n_threads=4, theta=1)


class TestRegistry:
    def test_all_eight_paper_approaches_registered(self):
        assert set(APPROACHES) == {
            "pt2pt_single",
            "pt2pt_many",
            "pt2pt_part",
            "pt2pt_part_old",
            "rma_single_passive",
            "rma_many_passive",
            "rma_single_active",
            "rma_many_active",
        }

    def test_registry_matches_tables(self):
        """Every Table-1/2 approach exists (tables fold old into part)."""
        for name in TABLE1_SENDER:
            assert name in APPROACHES
        for name in TABLE2_RECEIVER:
            assert name in APPROACHES

    def test_labels_match_paper_legends(self):
        assert APPROACHES["pt2pt_part"].label == "Pt2Pt part"
        assert APPROACHES["pt2pt_part_old"].label == "Pt2Pt part - old"
        assert APPROACHES["rma_many_passive"].label == "RMA many - passive"


def _wire_counts(name, **kw):
    kw.setdefault("total_bytes", 2048)
    kw.setdefault("n_threads", 2)
    kw.setdefault("iterations", 2)
    spec = BenchSpec(approach=name, **kw)
    from repro.bench.harness import _single_run

    # Reach into a single run's world to inspect traffic.
    from repro.bench import build_world
    from repro.bench.approaches import ApproachConfig
    from repro.bench.harness import _Recorder, _receiver_thread, _sender_thread
    from repro.threads import ThreadTeam

    world = build_world(spec)
    cfg = ApproachConfig(spec.total_bytes, spec.n_threads, spec.theta)
    approach = APPROACHES[name](world, cfg)
    total = spec.iterations + spec.warmup
    rec = _Recorder(total, spec.n_threads)
    s_team = ThreadTeam(world.env, spec.n_threads)
    r_team = ThreadTeam(world.env, spec.n_threads)
    compute = spec.compute_model()
    for tid in range(spec.n_threads):
        world.launch(0, _sender_thread(world, approach, s_team, compute,
                                       rec, tid, total))
        world.launch(1, _receiver_thread(world, approach, r_team, rec, tid,
                                         total))
    world.run()
    return world


class TestWireBehaviour:
    def test_single_sends_one_message_per_iteration(self):
        world = _wire_counts("pt2pt_single", iterations=3)
        # 4 total iterations (1 warmup); barriers also use eager 0B msgs.
        eager = world.rank(0).tx_counters[PacketKind.EAGER]
        barrier_msgs = 4  # one per iteration from rank 0
        assert eager == 4 + barrier_msgs

    def test_many_sends_one_message_per_partition(self):
        world = _wire_counts("pt2pt_many", n_threads=2, iterations=2)
        eager = world.rank(0).tx_counters[PacketKind.EAGER]
        assert eager == 3 * 2 + 3  # (iters+warmup)*partitions + barriers

    def test_part_uses_tag_path_not_am(self):
        world = _wire_counts("pt2pt_part")
        assert world.rank(0).tx_counters.get(PacketKind.AM) is None

    def test_part_old_uses_am_path(self):
        world = _wire_counts("pt2pt_part_old")
        assert world.rank(0).tx_counters.get(PacketKind.AM, 0) > 0

    def test_rma_passive_puts_and_ctrl(self):
        world = _wire_counts("rma_single_passive", n_threads=2, iterations=2)
        rt0 = world.rank(0)
        # One put per partition per iteration.
        assert rt0.tx_counters[PacketKind.RMA_PUT] == 3 * 2
        # Flush requests travel as RMA_CTRL.
        assert rt0.tx_counters[PacketKind.RMA_CTRL] >= 3

    def test_rma_active_tokens(self):
        world = _wire_counts("rma_single_active", n_threads=2, iterations=2)
        rt1 = world.rank(1)
        # One post token per iteration from the receiver.
        assert rt1.tx_counters[PacketKind.RMA_CTRL] == 3

    def test_rma_many_creates_window_per_thread(self):
        world = _wire_counts("rma_many_passive", n_threads=2)
        assert len(world.rank(0).rma_windows) == 2
        assert len(world.rank(1).rma_windows) == 2

    def test_rma_single_creates_one_window(self):
        world = _wire_counts("rma_single_passive", n_threads=2)
        assert len(world.rank(1).rma_windows) == 1
