"""Pattern framework: topologies, determinism, speedup direction, and the
full approach × noise compatibility matrix."""

import pytest

from repro.apps import (
    PATTERNS,
    Link,
    PatternConfig,
    align_bytes,
    build_pattern,
    run_pattern,
)
from repro.bench import APPROACHES

#: Small-but-real geometry used by the matrix smoke tests.
SMALL = dict(n_ranks=4, n_threads=2, msg_bytes=1 << 14, iterations=2,
             compute_us_per_mb=100.0)


class TestFramework:
    def test_align_bytes(self):
        assert align_bytes(16, 4) == 16
        assert align_bytes(17, 4) == 20
        with pytest.raises(ValueError):
            align_bytes(0, 4)

    def test_link_validation(self):
        with pytest.raises(ValueError):
            Link(src=1, dst=1, nbytes=64, key="self")
        with pytest.raises(ValueError):
            Link(src=0, dst=1, nbytes=0, key="empty")

    def test_registry(self):
        assert set(PATTERNS) == {"halo3d", "sweep3d", "fft"}

    def test_unknown_pattern_rejected(self):
        with pytest.raises(KeyError):
            build_pattern(
                PatternConfig(pattern="ring", **SMALL)
            )

    def test_config_validation(self):
        with pytest.raises(KeyError):
            PatternConfig(pattern="halo3d", approach="carrier-pigeon")
        with pytest.raises(KeyError):
            PatternConfig(pattern="halo3d", noise="pink")
        with pytest.raises(ValueError):
            PatternConfig(pattern="halo3d", n_ranks=1)
        with pytest.raises(ValueError):
            PatternConfig(pattern="halo3d", iterations=0)
        with pytest.raises(ValueError):
            PatternConfig(pattern="halo3d", compute_us_per_mb=-1)


class TestTopologies:
    def test_halo3d_links(self):
        pattern = build_pattern(PatternConfig(pattern="halo3d", n_ranks=8,
                                              n_threads=2, msg_bytes=1 << 12))
        links = pattern.links()
        # 2x2x2 periodic: 6 outgoing faces per rank.
        assert len(links) == 48
        assert len({link.key for link in links}) == 48
        for rank in range(8):
            assert sum(1 for l in links if l.src == rank) == 6
            assert sum(1 for l in links if l.dst == rank) == 6

    def test_halo3d_no_self_links(self):
        # 2 ranks -> 2x1x1 grid: extent-1 dims contribute nothing.
        pattern = build_pattern(PatternConfig(pattern="halo3d", n_ranks=2,
                                              n_threads=2, msg_bytes=1 << 12))
        links = pattern.links()
        assert all(l.src != l.dst for l in links)
        assert len(links) == 4  # +0 and -0 faces, both directions

    def test_sweep3d_wavefront_is_acyclic(self):
        pattern = build_pattern(PatternConfig(pattern="sweep3d", n_ranks=8,
                                              n_threads=2, msg_bytes=1 << 12))
        links = pattern.links()
        # Edges only go "downstream": topological order by coords sum.
        coord_sum = {
            r: sum(pattern.topo.coords(r)) for r in range(8)
        }
        for link in links:
            assert coord_sum[link.dst] == coord_sum[link.src] + 1

    def test_sweep3d_blocking_matches_links(self):
        pattern = build_pattern(PatternConfig(pattern="sweep3d", n_ranks=8,
                                              n_threads=2, msg_bytes=1 << 12))
        keys = {l.key for l in pattern.links()}
        corner_blocking = pattern.blocking_recvs(0)
        assert corner_blocking == []  # the sweep origin never waits
        for rank in range(8):
            for key in pattern.blocking_recvs(rank):
                assert key in keys

    def test_fft_links(self):
        pattern = build_pattern(PatternConfig(pattern="fft", n_ranks=5,
                                              n_threads=2, msg_bytes=1 << 12))
        links = pattern.links()
        assert len(links) == 20  # R*(R-1)
        assert pattern.bytes_per_iteration() == sum(l.nbytes for l in links)


class TestDeterminism:
    @pytest.mark.parametrize("pattern", sorted(PATTERNS))
    def test_same_seed_identical_times(self, pattern):
        config = PatternConfig(pattern=pattern, approach="pt2pt_part",
                               noise="gaussian", noise_us=5.0,
                               noise_sigma_us=1.0, seed=11, **SMALL)
        a = run_pattern(config)
        b = run_pattern(config)
        assert a.times == b.times

    def test_different_seed_differs_under_noise(self):
        base = dict(pattern="halo3d", approach="pt2pt_part",
                    noise="gaussian", noise_us=5.0, noise_sigma_us=2.0,
                    **SMALL)
        a = run_pattern(PatternConfig(seed=1, **base))
        b = run_pattern(PatternConfig(seed=2, **base))
        assert a.times != b.times


class TestSpeedupDirection:
    def test_partitioned_beats_single_on_halo3d(self):
        """The acceptance criterion: overlap-friendly compute -> eta > 1."""
        base = dict(pattern="halo3d", n_ranks=8, n_threads=4,
                    msg_bytes=256 << 10, iterations=5,
                    compute_us_per_mb=200.0)
        part = run_pattern(PatternConfig(approach="pt2pt_part", **base))
        single = run_pattern(PatternConfig(approach="pt2pt_single", **base))
        assert part.mean > 0 and single.mean > 0
        eta = single.mean / part.mean
        assert eta > 1.0, f"expected eta > 1, got {eta:.3f}"


class TestCompatibilityMatrix:
    @pytest.mark.parametrize("pattern", sorted(PATTERNS))
    @pytest.mark.parametrize("approach", sorted(APPROACHES))
    def test_pattern_runs_under_approach(self, pattern, approach):
        result = run_pattern(
            PatternConfig(pattern=pattern, approach=approach, **SMALL)
        )
        assert result.mean_us > 0
        assert len(result.times) == SMALL["iterations"]
        assert result.bandwidth_gbs > 0

    @pytest.mark.parametrize("pattern", sorted(PATTERNS))
    @pytest.mark.parametrize("noise", ["single", "uniform", "gaussian"])
    def test_pattern_runs_under_noise(self, pattern, noise):
        result = run_pattern(
            PatternConfig(pattern=pattern, approach="pt2pt_part",
                          noise=noise, noise_us=5.0, noise_sigma_us=1.0,
                          **SMALL)
        )
        assert result.mean_us > 0
