"""PatternSweep collection, persistence round-trip, and the apps CLI."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.apps import PatternConfig, PatternSweep, sweep_patterns
from repro.mpi import Cvars

#: The package root, absolutized so CLI subprocesses work from any cwd.
_SRC = str(Path(repro.__file__).resolve().parents[1])


def small_config(**overrides):
    base = dict(pattern="halo3d", approach="pt2pt_part", n_ranks=4,
                n_threads=2, msg_bytes=1 << 14, iterations=2,
                compute_us_per_mb=100.0)
    base.update(overrides)
    return PatternConfig(**base)


class TestPatternSweep:
    def test_collect_and_query(self):
        config = small_config()
        sweep = sweep_patterns(
            [config, small_config(approach="pt2pt_single")]
        )
        assert len(sweep) == 2
        assert sweep.patterns() == ["halo3d"]
        assert sweep.approaches() == ["pt2pt_part", "pt2pt_single"]
        assert sweep.speedup(config, baseline="pt2pt_single") > 0
        assert sweep.get(config).config == config
        assert len(sweep.find(pattern="halo3d")) == 2
        assert sweep.find(approach="pt2pt_many") == []

    def test_rerun_overwrites(self):
        sweep = PatternSweep()
        sweep.run(small_config())
        sweep.run(small_config())
        assert len(sweep) == 1

    def test_full_config_is_identity(self):
        """Points differing only in noise amplitude stay distinct."""
        sweep = sweep_patterns(
            [
                small_config(noise="uniform", noise_us=1.0),
                small_config(noise="uniform", noise_us=10.0),
            ]
        )
        assert len(sweep) == 2
        assert len(sweep.find(noise="uniform")) == 2

    def test_json_roundtrip(self, tmp_path):
        sweep = sweep_patterns(
            [
                small_config(noise="uniform", noise_us=2.0,
                             cvars=Cvars(num_vcis=2)),
                small_config(pattern="fft", n_ranks=3),
            ]
        )
        path = sweep.save(tmp_path / "BENCH_apps.json")
        loaded = PatternSweep.load(path)
        assert len(loaded) == len(sweep)
        for before, after in zip(sweep.results(), loaded.results()):
            assert after.config == before.config
            assert after.times == before.times
            assert after.stats == before.stats
            assert after.bytes_per_iteration == before.bytes_per_iteration
            assert after.n_links == before.n_links

    def test_schema_guard(self):
        with pytest.raises(ValueError):
            PatternSweep.from_json({"schema": "something/else", "results": []})

    def test_json_is_plain(self, tmp_path):
        sweep = sweep_patterns([small_config()])
        path = sweep.save(tmp_path / "out.json")
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro.apps.sweep/v1"
        record = payload["results"][0]
        assert record["config"]["pattern"] == "halo3d"
        assert record["config"]["cvars"]["num_vcis"] == 1
        assert len(record["times"]) == 2


class TestAppsCli:
    def run_cli(self, *args, cwd=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True,
            text=True,
            timeout=240,
            cwd=cwd,
            env=env,
        )

    @pytest.mark.parametrize("pattern", ["halo3d", "sweep3d", "fft"])
    def test_patterns_run(self, pattern, tmp_path):
        proc = self.run_cli(
            "apps", "--pattern", pattern, "--ranks", "4", "--threads", "2",
            "--size", "16384", "--iters", "2", "--approach", "pt2pt_part",
            "--no-json", cwd=tmp_path,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert "mean time" in proc.stdout
        assert "perceived bw" in proc.stdout
        assert "pt2pt_part" in proc.stdout
        assert "pt2pt_single" in proc.stdout  # baseline always reported

    def test_json_written_and_loadable(self, tmp_path):
        proc = self.run_cli(
            "apps", "--pattern", "fft", "--ranks", "3", "--threads", "2",
            "--size", "16384", "--iters", "2", cwd=tmp_path,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        target = tmp_path / "BENCH_apps.json"
        assert target.exists()
        loaded = PatternSweep.load(target)
        assert loaded.patterns() == ["fft"]

    def test_noise_flags(self, tmp_path):
        proc = self.run_cli(
            "apps", "--pattern", "halo3d", "--ranks", "4", "--threads", "2",
            "--size", "16384", "--iters", "2", "--noise", "gaussian",
            "--noise-us", "5", "--noise-sigma-us", "1", "--no-json",
            cwd=tmp_path,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert "noise=gaussian" in proc.stdout
