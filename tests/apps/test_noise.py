"""Statistics and composition of the injected-noise models."""

import numpy as np
import pytest

from repro.apps import (
    NOISE_MODELS,
    GaussianNoise,
    NoisyComputeModel,
    NoNoise,
    SingleNoise,
    UniformNoise,
    make_noise,
)
from repro.threads import FixedDelayModel, NoDelayModel


def samples(noise, thread_id=0, n_threads=4, n=4000, seed=1):
    rng = np.random.default_rng(seed)
    return np.array(
        [noise.delay(thread_id, n_threads, rng) for _ in range(n)]
    )


class TestRegistry:
    def test_all_registered(self):
        assert set(NOISE_MODELS) == {"none", "single", "uniform", "gaussian"}

    def test_factory(self):
        for name in NOISE_MODELS:
            model = make_noise(name, 1e-6, 1e-7)
            assert model.name == name

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            make_noise("pink", 1e-6)


class TestNoNoise:
    def test_zero(self):
        assert (samples(NoNoise()) == 0).all()


class TestSingleNoise:
    def test_victim_only(self):
        noise = SingleNoise(5e-6)
        assert (samples(noise, thread_id=0) == 5e-6).all()
        for tid in (1, 2, 3):
            assert (samples(noise, thread_id=tid) == 0).all()

    def test_victim_wraps(self):
        noise = SingleNoise(5e-6, victim=4)
        assert noise.delay(0, 4, np.random.default_rng(0)) == 5e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            SingleNoise(-1.0)


class TestUniformNoise:
    def test_statistics(self):
        amp = 10e-6
        xs = samples(UniformNoise(amp))
        assert xs.min() >= 0.0
        assert xs.max() <= 2 * amp
        assert np.isclose(xs.mean(), amp, rtol=0.05)
        # U(0, 2a) std = 2a/sqrt(12)
        assert np.isclose(xs.std(), 2 * amp / np.sqrt(12), rtol=0.1)

    def test_zero_amplitude(self):
        assert (samples(UniformNoise(0.0)) == 0).all()


class TestGaussianNoise:
    def test_statistics(self):
        amp, sigma = 10e-6, 1e-6
        xs = samples(GaussianNoise(amp, sigma))
        assert np.isclose(xs.mean(), amp, rtol=0.05)
        assert np.isclose(xs.std(), sigma, rtol=0.1)

    def test_truncated_at_zero(self):
        xs = samples(GaussianNoise(1e-6, 5e-6))
        assert xs.min() >= 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianNoise(-1.0)
        with pytest.raises(ValueError):
            GaussianNoise(1.0, -1.0)


class TestNoisyComputeModel:
    def test_composes_with_base(self):
        base = FixedDelayModel(1e-10)  # delays only the last partition
        model = NoisyComputeModel(
            base, SingleNoise(3e-6), np.random.default_rng(0)
        )
        # Victim thread: base + noise on every partition.
        last = model.compute_time(0, 7, 1 << 20, 4, 2)
        assert last == pytest.approx(1e-10 * (1 << 20) + 3e-6)
        other = model.compute_time(1, 2, 1 << 20, 4, 2)
        assert other == pytest.approx(3e-6 * 0)  # non-victim, non-last

    def test_deterministic_given_rng(self):
        a = NoisyComputeModel(
            NoDelayModel(), UniformNoise(5e-6), np.random.default_rng(3)
        )
        b = NoisyComputeModel(
            NoDelayModel(), UniformNoise(5e-6), np.random.default_rng(3)
        )
        xs = [a.compute_time(0, 0, 64, 2, 1) for _ in range(50)]
        ys = [b.compute_time(0, 0, 64, 2, 1) for _ in range(50)]
        assert xs == ys
