"""Cross-validation: sim ↔ model agreement as an enforced invariant.

For every registered approach the analytic prediction must agree with
the simulation within its documented tolerance
(:data:`repro.backends.crossval.TOLERANCES`) at small and large sizes
under 1 and 32 threads — and the Fig. 4 η ratios (time relative to the
``pt2pt_single`` baseline) must agree in sign everywhere.
"""

import pytest

from repro.apps import PatternConfig
from repro.backends import (
    PATTERN_TOLERANCE,
    TOLERANCES,
    CrossValReport,
    compare_bench_sweeps,
    cross_validate,
    tolerance_for,
)
from repro.bench import APPROACHES, BenchSpec
from repro.model import predict_bench_time, predict_pattern_time
from repro.runner import scenario_for

#: (label, size) probes: one latency-dominated, one bandwidth-dominated.
SMALL_BYTES = 1 << 10
LARGE_BYTES = 1 << 20


def _sim_and_analytic(spec):
    from repro.apps.base import run_pattern
    from repro.bench.harness import run_benchmark

    if isinstance(spec, BenchSpec):
        sim = run_benchmark(spec).stats.mean
        ana = predict_bench_time(spec).time
    else:
        sim = run_pattern(spec).stats.mean
        ana = predict_pattern_time(spec).time
    return sim, ana


class TestToleranceTable:
    def test_every_approach_has_a_documented_tolerance(self):
        assert set(TOLERANCES) == set(APPROACHES)

    def test_tolerances_are_meaningful(self):
        # Documented, not vacuous: every bench tolerance is a real
        # constraint (< 50 % relative error).
        for name, tol in TOLERANCES.items():
            assert 0 < tol < 0.5, name

    def test_tolerance_for_dispatches_by_kind(self):
        bench = scenario_for(BenchSpec(approach="pt2pt_part", total_bytes=64))
        pattern = scenario_for(PatternConfig(pattern="halo3d"))
        assert tolerance_for(bench) == TOLERANCES["pt2pt_part"]
        assert tolerance_for(pattern) == PATTERN_TOLERANCE


class TestBenchAgreement:
    @pytest.mark.parametrize("approach", sorted(APPROACHES))
    @pytest.mark.parametrize("total_bytes", [SMALL_BYTES, LARGE_BYTES])
    @pytest.mark.parametrize("n_threads", [1, 32])
    def test_within_documented_tolerance(
        self, approach, total_bytes, n_threads
    ):
        spec = BenchSpec(
            approach=approach,
            total_bytes=total_bytes,
            n_threads=n_threads,
            theta=1,
            iterations=2,
        )
        sim, ana = _sim_and_analytic(spec)
        rel = abs(ana - sim) / sim
        assert rel <= TOLERANCES[approach], (
            f"{approach} at {total_bytes}B/{n_threads}T: "
            f"sim {sim * 1e6:.2f}us vs analytic {ana * 1e6:.2f}us "
            f"({rel:.1%} > {TOLERANCES[approach]:.0%})"
        )


class TestDegenerateParams:
    def test_zero_post_overhead_machine(self):
        from dataclasses import replace

        from repro.net import MELUXINA

        spec = BenchSpec(
            approach="pt2pt_many",
            total_bytes=1 << 20,
            n_threads=2,
            params=replace(MELUXINA, post_overhead=0.0),
        )
        assert predict_bench_time(spec).time > 0


class TestEtaSignAgreement:
    """The Fig. 4 η ratios must agree in sign everywhere (N=1, θ=1)."""

    SIZES = [64, 1 << 12, 1 << 16, 1 << 20, 16 << 20]

    def test_eta_signs_match(self):
        from repro.bench.harness import run_benchmark

        for size in self.SIZES:
            base = BenchSpec(
                approach="pt2pt_single", total_bytes=size, iterations=2
            )
            sim_base = run_benchmark(base).stats.mean
            ana_base = predict_bench_time(base).time
            for approach in sorted(APPROACHES):
                if approach == "pt2pt_single":
                    continue
                spec = BenchSpec(
                    approach=approach, total_bytes=size, iterations=2
                )
                sim, ana = _sim_and_analytic(spec)
                sim_eta = sim_base / sim
                ana_eta = ana_base / ana
                # Same side of 1 — or both within the band where the
                # approaches genuinely tie (|η - 1| <= 5 %).
                tied = abs(sim_eta - 1) <= 0.05 and abs(ana_eta - 1) <= 0.05
                assert tied or ((sim_eta > 1) == (ana_eta > 1)), (
                    f"{approach}/{size}B: sim eta {sim_eta:.3f} vs "
                    f"analytic eta {ana_eta:.3f} disagree in sign"
                )


class TestPatternAgreement:
    @pytest.mark.parametrize("pattern", ["halo3d", "sweep3d", "fft"])
    def test_within_pattern_tolerance(self, pattern):
        config = PatternConfig(
            pattern=pattern,
            approach="pt2pt_part",
            n_ranks=8,
            n_threads=4,
            msg_bytes=1 << 14,
            iterations=2,
            compute_us_per_mb=200.0,
        )
        sim, ana = _sim_and_analytic(config)
        rel = abs(ana - sim) / sim
        assert rel <= PATTERN_TOLERANCE, (
            f"{pattern}: sim {sim * 1e6:.2f}us vs analytic "
            f"{ana * 1e6:.2f}us ({rel:.1%})"
        )


class TestPatternNoiseAgreement:
    """The injected-noise mean-shift correction: noisy pattern points
    must sit inside the documented noise tolerance (before the
    correction they missed by up to ~6x)."""

    @pytest.mark.parametrize(
        "pattern,approach,noise,noise_us,sigma",
        [
            ("halo3d", "pt2pt_part", "single", 50.0, 0.0),
            ("halo3d", "pt2pt_many", "uniform", 50.0, 0.0),
            ("halo3d", "pt2pt_single", "gaussian", 50.0, 10.0),
            ("sweep3d", "pt2pt_single", "single", 50.0, 0.0),
            ("sweep3d", "pt2pt_part", "gaussian", 50.0, 10.0),
            ("fft", "pt2pt_many", "uniform", 50.0, 0.0),
        ],
    )
    def test_noise_within_tolerance(
        self, pattern, approach, noise, noise_us, sigma
    ):
        from repro.backends.crossval import PATTERN_NOISE_TOLERANCE

        config = PatternConfig(
            pattern=pattern,
            approach=approach,
            n_ranks=8,
            n_threads=4,
            msg_bytes=1 << 16,
            iterations=3,
            compute_us_per_mb=200.0,
            noise=noise,
            noise_us=noise_us,
            noise_sigma_us=sigma,
        )
        sim, ana = _sim_and_analytic(config)
        rel = abs(ana - sim) / sim
        assert rel <= PATTERN_NOISE_TOLERANCE, (
            f"{pattern}/{approach}/{noise}: sim {sim * 1e6:.2f}us vs "
            f"analytic {ana * 1e6:.2f}us ({rel:.1%})"
        )

    def test_noisy_scenarios_use_noise_tolerance(self):
        from repro.backends.crossval import PATTERN_NOISE_TOLERANCE

        noisy = scenario_for(
            PatternConfig(
                pattern="halo3d", noise="single", noise_us=10.0
            )
        )
        quiet = scenario_for(PatternConfig(pattern="halo3d"))
        assert tolerance_for(noisy) == PATTERN_NOISE_TOLERANCE
        assert tolerance_for(quiet) == PATTERN_TOLERANCE


class TestCrossValReport:
    def test_cross_validate_runs_both_backends(self):
        scenarios = [
            scenario_for(
                BenchSpec(
                    approach=a, total_bytes=4096, n_threads=2, iterations=2
                )
            )
            for a in ("pt2pt_single", "pt2pt_part")
        ]
        report = cross_validate(scenarios)
        assert len(report.points) == 2
        assert report.passed, report.to_text()
        assert report.worst is not None
        text = report.to_text()
        assert "max relative error" in text
        assert "PASS" in text

    def test_report_flags_failures(self):
        from repro.backends.crossval import CrossPoint

        report = CrossValReport(
            points=[
                CrossPoint(
                    label="x", kind="bench", approach="pt2pt_single",
                    sim_mean=1.0, analytic_mean=2.0, tolerance=0.05,
                )
            ]
        )
        assert not report.passed
        assert report.max_rel_error == pytest.approx(1.0)
        assert "FAIL" in report.to_text()
        payload = report.to_json()
        assert payload["passed"] is False

    def test_compare_bench_sweeps(self):
        from repro.bench import sweep_approaches

        base = BenchSpec(
            approach="pt2pt_single", total_bytes=1024, iterations=2
        )
        sizes = [1024, 65536]
        names = ["pt2pt_single", "pt2pt_part"]
        sim_sweep = sweep_approaches(base, names, sizes, backend="sim")
        ana_sweep = sweep_approaches(base, names, sizes, backend="analytic")
        report = compare_bench_sweeps(sim_sweep, ana_sweep)
        assert len(report.points) == 4
        assert report.passed, report.to_text()
