"""Backend protocol: registry, dispatch, identity, zero-sim guarantee."""

import pytest

from repro.apps import PatternConfig
from repro.backends import (
    BACKENDS,
    AnalyticBackend,
    SimBackend,
    backend_names,
    get_backend,
)
from repro.bench import BenchSpec
from repro.runner import (
    ResultStore,
    Scenario,
    ScenarioGrid,
    execute,
    run_scenarios,
    run_specs,
    scenario_for,
)
from repro.sim import Environment


class TestRegistry:
    def test_both_backends_registered(self):
        assert backend_names() == ["analytic", "sim"]
        assert isinstance(get_backend("sim"), SimBackend)
        assert isinstance(get_backend("analytic"), AnalyticBackend)

    def test_instances_are_shared(self):
        assert get_backend("analytic") is get_backend("analytic")

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError):
            get_backend("quantum")

    def test_inline_flags(self):
        assert get_backend("analytic").inline
        assert not get_backend("sim").inline

    def test_analytic_supports_all_registered_approaches(self):
        from repro.bench import APPROACHES

        backend = get_backend("analytic")
        for name in APPROACHES:
            scenario = scenario_for(
                BenchSpec(approach=name, total_bytes=1024),
                backend="analytic",
            )
            assert backend.supports(scenario)


class TestScenarioBackendIdentity:
    def test_backend_changes_the_content_hash(self):
        spec = BenchSpec(approach="pt2pt_part", total_bytes=4096)
        sim = scenario_for(spec)
        analytic = scenario_for(spec, backend="analytic")
        assert sim.backend == "sim"
        assert sim.content_hash() != analytic.content_hash()

    def test_backend_round_trips(self):
        spec = BenchSpec(approach="pt2pt_part", total_bytes=4096)
        scenario = scenario_for(spec, backend="analytic")
        rebuilt = Scenario.from_dict(scenario.to_dict())
        assert rebuilt == scenario
        assert rebuilt.backend == "analytic"

    def test_payload_without_backend_defaults_to_sim(self):
        payload = scenario_for(
            BenchSpec(approach="pt2pt_single", total_bytes=64)
        ).to_dict()
        del payload["backend"]
        assert Scenario.from_dict(payload).backend == "sim"

    def test_with_backend(self):
        scenario = scenario_for(
            BenchSpec(approach="pt2pt_single", total_bytes=64)
        )
        other = scenario.with_backend("analytic")
        assert other.spec == scenario.spec
        assert other.backend == "analytic"

    def test_grid_stamps_backend(self):
        grid = ScenarioGrid(
            "bench",
            base={"iterations": 1},
            axes={"approach": ["pt2pt_single"], "total_bytes": [64, 128]},
            backend="analytic",
        )
        assert all(s.backend == "analytic" for s in grid.expand())

    def test_store_keeps_backends_apart(self, tmp_path):
        spec = BenchSpec(approach="pt2pt_part", total_bytes=4096, iterations=2)
        store = ResultStore(tmp_path)
        for backend in ("sim", "analytic"):
            scenario = scenario_for(spec, backend=backend)
            store.put(scenario, execute(scenario))
        assert len(store) == 2
        sim_r = store.get(scenario_for(spec))
        ana_r = store.get(scenario_for(spec, backend="analytic"))
        assert sim_r.times != ana_r.times


class TestAnalyticExecution:
    def test_zero_environment_instantiations(self):
        spec = BenchSpec(
            approach="pt2pt_part", total_bytes=1 << 20, n_threads=4
        )
        before = Environment.instances_created
        result = run_specs([spec], backend="analytic")[0]
        assert Environment.instances_created == before
        assert result.mean > 0
        assert len(result.times) == spec.iterations

    def test_analytic_pattern_result_shape(self):
        config = PatternConfig(
            pattern="halo3d", n_ranks=4, n_threads=2, msg_bytes=8192,
            iterations=3,
        )
        before = Environment.instances_created
        result = run_specs([config], backend="analytic")[0]
        assert Environment.instances_created == before
        assert result.n_links > 0
        assert result.bytes_per_iteration > 0
        assert len(result.times) == 3

    def test_mixed_batch_preserves_order_and_backends(self):
        spec = BenchSpec(approach="pt2pt_single", total_bytes=1024,
                         iterations=2)
        batch = [
            scenario_for(spec, backend="analytic"),
            scenario_for(spec, backend="sim"),
            scenario_for(spec, backend="analytic"),
        ]
        report = run_scenarios(batch, jobs=1)
        assert report.executed == 3
        assert report.results[0].times == report.results[2].times
        # All three measure the same point, so sim and analytic agree
        # closely — but the analytic samples are exactly uniform.
        assert len(set(report.results[0].times)) == 1

    def test_analytic_deterministic_across_calls(self):
        spec = BenchSpec(approach="rma_many_active", total_bytes=65536,
                         n_threads=4)
        a = run_specs([spec], backend="analytic")[0]
        b = run_specs([spec], backend="analytic")[0]
        assert a.times == b.times


class TestFigureGridsAnalytic:
    """Acceptance: every figure grid regenerates with zero simulations."""

    @pytest.mark.parametrize(
        "driver_name",
        ["fig4_improvement", "fig5_congestion", "fig6_vcis",
         "fig7_aggregation", "fig8_earlybird"],
    )
    def test_quick_grid_zero_environments(self, driver_name):
        import importlib

        driver = importlib.import_module(f"repro.figures.{driver_name}")
        before = Environment.instances_created
        data = driver.run(iterations=3, quick=True, backend="analytic")
        assert Environment.instances_created == before
        assert driver.report(data)  # report renders


class TestStoreMaintenance:
    def test_stats_counts_per_kind_and_backend(self, tmp_path):
        store = ResultStore(tmp_path)
        bench = BenchSpec(approach="pt2pt_single", total_bytes=64,
                          iterations=1)
        pattern = PatternConfig(pattern="halo3d", n_ranks=4, n_threads=1,
                                msg_bytes=256, iterations=1)
        for spec in (bench, pattern):
            for backend in ("sim", "analytic"):
                scenario = scenario_for(spec, backend=backend)
                store.put(scenario, execute(scenario))
        stats = store.stats()
        assert stats["records"] == 4
        assert stats["per_kind_backend"] == {
            "bench/analytic": 1,
            "bench/sim": 1,
            "pattern/analytic": 1,
            "pattern/sim": 1,
        }
        assert stats["total_bytes"] > 0
        assert stats["broken"] == []

    def test_pattern_sweep_filters_by_backend(self, tmp_path):
        store = ResultStore(tmp_path)
        config = PatternConfig(
            pattern="halo3d", n_ranks=4, n_threads=1, msg_bytes=256,
            iterations=1,
        )
        for backend in ("sim", "analytic"):
            scenario = scenario_for(config, backend=backend)
            store.put(scenario, execute(scenario))
        sim_sweep = store.pattern_sweep()
        ana_sweep = store.pattern_sweep(backend="analytic")
        assert len(sim_sweep) == 1
        assert len(ana_sweep) == 1
        assert sim_sweep.get(config).times != ana_sweep.get(config).times

    def test_records_skips_stale_schema_versions(self, tmp_path):
        import json

        store = ResultStore(tmp_path)
        scenario = scenario_for(
            BenchSpec(approach="pt2pt_single", total_bytes=64, iterations=1)
        )
        good = store.put(scenario, execute(scenario))
        # A record from a previous scenario-schema generation: valid
        # store schema, unparseable scenario — must be skipped, not
        # abort the iteration.
        stale = json.loads(good.read_text())
        stale["scenario"]["schema"] = "repro.runner/v1"
        old = tmp_path / "bench" / "aa" / "stale.json"
        old.parent.mkdir(parents=True, exist_ok=True)
        old.write_text(json.dumps(stale))
        records = list(store.records())
        assert len(records) == 1
        assert records[0][0] == scenario

    def test_prune_removes_unparseable_records(self, tmp_path):
        store = ResultStore(tmp_path)
        scenario = scenario_for(
            BenchSpec(approach="pt2pt_single", total_bytes=64, iterations=1)
        )
        good = store.put(scenario, execute(scenario))
        torn = tmp_path / "bench" / "00" / "torn.json"
        torn.parent.mkdir(parents=True, exist_ok=True)
        torn.write_text('{"schema": "repro.runner.store/v1", "scen')
        foreign = tmp_path / "bench" / "01" / "foreign.json"
        foreign.parent.mkdir(parents=True, exist_ok=True)
        foreign.write_text('{"schema": "other/v9"}')
        assert len(store.stats()["broken"]) == 2
        removed = store.prune()
        assert len(removed) == 2
        assert good.is_file()
        assert store.stats()["broken"] == []


class TestAppsJsonBackendTag:
    def test_pattern_sweep_save_tags_backend(self, tmp_path):
        import json

        from repro.apps.sweep import sweep_patterns

        config = PatternConfig(
            pattern="halo3d", n_ranks=4, n_threads=1, msg_bytes=256,
            iterations=1,
        )
        sweep = sweep_patterns([config], backend="analytic")
        target = sweep.save(tmp_path / "s.json", backend="analytic")
        payload = json.loads(target.read_text())
        assert payload["backend"] == "analytic"
        # Round trip still works with the tag present.
        from repro.apps.sweep import PatternSweep

        assert len(PatternSweep.from_json(payload)) == 1

    def test_apps_cli_analytic_does_not_touch_default_feed(
        self, tmp_path, monkeypatch
    ):
        import json

        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        rc = main([
            "apps", "--pattern", "halo3d", "--ranks", "4", "--threads", "1",
            "--iters", "1", "--backend", "analytic",
        ])
        assert rc == 0
        assert not (tmp_path / "BENCH_apps.json").exists()
        payload = json.loads(
            (tmp_path / "BENCH_apps_analytic.json").read_text()
        )
        assert payload["backend"] == "analytic"
