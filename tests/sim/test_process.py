"""Unit tests for generator-based processes."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError


def test_process_return_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        return 99

    p = env.process(proc(env))
    env.run()
    assert p.value == 99


def test_process_is_alive_flag():
    env = Environment()

    def proc(env):
        yield env.timeout(5.0)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_process_join_by_yield():
    env = Environment()

    def child(env):
        yield env.timeout(2.0)
        return "child-result"

    def parent(env):
        result = yield env.process(child(env))
        return f"got {result}"

    p = env.process(parent(env))
    env.run()
    assert p.value == "got child-result"


def test_nested_process_chain():
    env = Environment()

    def leaf(env):
        yield env.timeout(1.0)
        return 1

    def mid(env):
        v = yield env.process(leaf(env))
        return v + 1

    def root(env):
        v = yield env.process(mid(env))
        return v + 1

    p = env.process(root(env))
    env.run()
    assert p.value == 3


def test_yield_already_processed_event_continues_immediately():
    env = Environment()
    ev = env.event()
    ev.succeed("old")
    env.run()

    def proc(env):
        v = yield ev
        return v

    p = env.process(proc(env))
    env.run()
    assert p.value == "old"
    assert env.now == 0.0


def test_yield_non_event_fails_process():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_process_exception_propagates():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise KeyError("oops")

    env.process(bad(env))
    with pytest.raises(KeyError):
        env.run()


def test_process_exception_caught_by_waiter():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise KeyError("oops")

    def parent(env):
        try:
            yield env.process(bad(env))
        except KeyError:
            return "handled"

    p = env.process(parent(env))
    env.run()
    assert p.value == "handled"


def test_interrupt_wakes_sleeping_process():
    env = Environment()

    def sleeper(env):
        try:
            yield env.timeout(100.0)
            return ("overslept", env.now)
        except Interrupt as i:
            return (f"interrupted:{i.cause}", env.now)

    def interrupter(env, victim):
        yield env.timeout(1.0)
        victim.interrupt("wakeup")

    p = env.process(sleeper(env))
    env.process(interrupter(env, p))
    env.run()
    # The process resumed at t=1.0 even though its timeout was at t=100.
    assert p.value == ("interrupted:wakeup", 1.0)


def test_interrupt_completed_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_self_interrupt_rejected():
    env = Environment()

    def proc(env):
        me = env.active_process
        with pytest.raises(SimulationError):
            me.interrupt()
        yield env.timeout(0.0)

    env.process(proc(env))
    env.run()


def test_interrupted_process_can_rewait_original_event():
    env = Environment()
    done = []

    def sleeper(env):
        to = env.timeout(10.0)
        try:
            yield to
        except Interrupt:
            pass
        yield to  # wait for the original timeout anyway
        done.append(env.now)

    def interrupter(env, victim):
        yield env.timeout(1.0)
        victim.interrupt()

    p = env.process(sleeper(env))
    env.process(interrupter(env, p))
    env.run()
    assert done == [10.0]


def test_process_name_default_and_custom():
    env = Environment()

    def named(env):
        yield env.timeout(0.0)

    p = env.process(named(env))
    assert "process" in repr(p) or "named" in repr(p)


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)
