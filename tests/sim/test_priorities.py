"""Event-priority semantics of the engine."""

from repro.sim import Environment, Event, NORMAL, URGENT


def test_urgent_processed_before_normal_at_same_time():
    env = Environment()
    order = []

    normal = Event(env)
    normal.callbacks.append(lambda e: order.append("normal"))
    normal._ok = True
    normal._value = None
    env.schedule(normal, priority=NORMAL)

    urgent = Event(env)
    urgent.callbacks.append(lambda e: order.append("urgent"))
    urgent._ok = True
    urgent._value = None
    env.schedule(urgent, priority=URGENT)

    env.run()
    assert order == ["urgent", "normal"]


def test_insertion_order_breaks_priority_ties():
    env = Environment()
    order = []
    for tag in ("a", "b", "c"):
        ev = Event(env)
        ev._ok = True
        ev._value = None
        ev.callbacks.append(lambda e, t=tag: order.append(t))
        env.schedule(ev, priority=NORMAL)
    env.run()
    assert order == ["a", "b", "c"]


def test_earlier_time_beats_priority():
    env = Environment()
    order = []

    late_urgent = Event(env)
    late_urgent._ok = True
    late_urgent._value = None
    late_urgent.callbacks.append(lambda e: order.append("late-urgent"))
    env.schedule(late_urgent, priority=URGENT, delay=2.0)

    early_normal = Event(env)
    early_normal._ok = True
    early_normal._value = None
    early_normal.callbacks.append(lambda e: order.append("early-normal"))
    env.schedule(early_normal, priority=NORMAL, delay=1.0)

    env.run()
    assert order == ["early-normal", "late-urgent"]


def test_process_kickstart_is_urgent():
    """New processes begin before same-time NORMAL events."""
    env = Environment()
    order = []

    ev = Event(env)
    ev._ok = True
    ev._value = None
    ev.callbacks.append(lambda e: order.append("event"))
    env.schedule(ev, priority=NORMAL)

    def proc(env):
        order.append("process")
        yield env.timeout(0.0)

    env.process(proc(env))
    env.run()
    assert order == ["process", "event"]
