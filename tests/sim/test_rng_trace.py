"""Unit tests for RNG streams and the tracer."""

from repro.sim import Environment, NullTracer, RngRegistry, Tracer


def test_rng_streams_are_reproducible():
    a = RngRegistry(seed=42).stream("x").random(5)
    b = RngRegistry(seed=42).stream("x").random(5)
    assert (a == b).all()


def test_rng_streams_differ_by_name():
    reg = RngRegistry(seed=42)
    a = reg.stream("x").random(5)
    b = reg.stream("y").random(5)
    assert not (a == b).all()


def test_rng_streams_differ_by_seed():
    a = RngRegistry(seed=1).stream("x").random(5)
    b = RngRegistry(seed=2).stream("x").random(5)
    assert not (a == b).all()


def test_rng_stream_is_cached():
    reg = RngRegistry(seed=0)
    assert reg.stream("s") is reg.stream("s")


def test_rng_order_independence():
    """Creating streams in different orders yields the same sequences."""
    r1 = RngRegistry(seed=9)
    r1.stream("a")
    seq_b1 = r1.stream("b").random(3)
    r2 = RngRegistry(seed=9)
    seq_b2 = r2.stream("b").random(3)
    assert (seq_b1 == seq_b2).all()


def test_rng_reset_rederives():
    reg = RngRegistry(seed=3)
    first = reg.stream("s").random(4)
    reg.reset()
    second = reg.stream("s").random(4)
    assert (first == second).all()


def test_tracer_records_time_and_fields():
    env = Environment()
    tracer = Tracer(env)

    def proc(env):
        yield env.timeout(1.5)
        tracer.log("net", "send", nbytes=100)

    env.process(proc(env))
    env.run()
    assert len(tracer) == 1
    rec = tracer.records[0]
    assert rec.time == 1.5
    assert rec.category == "net"
    assert rec.event == "send"
    assert rec.fields == {"nbytes": 100}


def test_tracer_select_and_count():
    env = Environment()
    tracer = Tracer(env)
    tracer.log("net", "send", n=1)
    tracer.log("net", "recv", n=2)
    tracer.log("mpi", "send", n=3)
    assert tracer.count(category="net") == 2
    assert tracer.count(event="send") == 2
    assert tracer.count(category="mpi", event="send") == 1
    assert tracer.select(predicate=lambda r: r.fields["n"] > 1)[0].event == "recv"


def test_tracer_category_filter():
    env = Environment()
    tracer = Tracer(env)
    tracer.limit_to("mpi")
    tracer.log("net", "send")
    tracer.log("mpi", "send")
    assert tracer.count() == 1


def test_tracer_disabled_drops_records():
    env = Environment()
    tracer = Tracer(env, enabled=False)
    tracer.log("net", "send")
    assert len(tracer) == 0


def test_null_tracer_drops_everything():
    env = Environment()
    tracer = NullTracer(env)
    tracer.log("net", "send")
    assert len(tracer) == 0


def test_tracer_clear():
    env = Environment()
    tracer = Tracer(env)
    tracer.log("a", "b")
    tracer.clear()
    assert len(tracer) == 0


def test_trace_record_str():
    env = Environment()
    tracer = Tracer(env)
    tracer.log("net", "send", nbytes=8)
    s = str(tracer.records[0])
    assert "net:send" in s and "nbytes=8" in s
