"""Unit tests for composite condition events."""

import pytest

from repro.sim import Environment, SimulationError


def test_all_of_waits_for_every_event():
    env = Environment()
    t1 = env.timeout(1.0, value="a")
    t2 = env.timeout(3.0, value="b")

    def proc(env):
        results = yield env.all_of([t1, t2])
        return (env.now, sorted(results.values()))

    p = env.process(proc(env))
    env.run()
    assert p.value == (3.0, ["a", "b"])


def test_any_of_fires_on_first():
    env = Environment()
    t1 = env.timeout(1.0, value="fast")
    t2 = env.timeout(10.0, value="slow")

    def proc(env):
        results = yield env.any_of([t1, t2])
        return (env.now, list(results.values()))

    p = env.process(proc(env))
    env.run(until=p)
    assert p.value == (1.0, ["fast"])


def test_all_of_empty_fires_immediately():
    env = Environment()

    def proc(env):
        results = yield env.all_of([])
        return results

    p = env.process(proc(env))
    env.run()
    assert p.value == {}


def test_any_of_empty_fires_immediately():
    env = Environment()

    def proc(env):
        results = yield env.any_of([])
        return results

    p = env.process(proc(env))
    env.run()
    assert p.value == {}


def test_all_of_with_already_processed_events():
    env = Environment()
    ev = env.event()
    ev.succeed("done")
    env.run()
    t = env.timeout(1.0, value="late")

    def proc(env):
        results = yield env.all_of([ev, t])
        return sorted(str(v) for v in results.values())

    p = env.process(proc(env))
    env.run()
    assert p.value == ["done", "late"]


def test_all_of_failure_propagates():
    env = Environment()
    good = env.timeout(1.0)
    bad = env.event()
    bad.fail(ValueError("broken"))

    def proc(env):
        try:
            yield env.all_of([good, bad])
        except ValueError:
            return "failed"

    p = env.process(proc(env))
    env.run()
    assert p.value == "failed"


def test_mixed_environment_events_rejected():
    env1 = Environment()
    env2 = Environment()
    t1 = env1.timeout(1.0)
    t2 = env2.timeout(1.0)
    with pytest.raises(SimulationError):
        env1.all_of([t1, t2])
