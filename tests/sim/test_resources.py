"""Unit tests for resources, locks, and stores."""

import pytest

from repro.sim import Environment, Lock, Resource, SimulationError, Store


def test_lock_mutual_exclusion_and_fifo():
    env = Environment()
    lock = Lock(env, name="L")
    order = []

    def proc(env, tag):
        req = lock.request()
        yield req
        order.append((tag, "in", env.now))
        yield env.timeout(1.0)
        order.append((tag, "out", env.now))
        lock.release(req)

    for i in range(3):
        env.process(proc(env, i))
    env.run()
    # Strictly serialized, FIFO grant order.
    assert order == [
        (0, "in", 0.0),
        (0, "out", 1.0),
        (1, "in", 1.0),
        (1, "out", 2.0),
        (2, "in", 2.0),
        (2, "out", 3.0),
    ]


def test_resource_capacity_allows_concurrency():
    env = Environment()
    res = Resource(env, capacity=2)
    finish_times = []

    def proc(env):
        req = res.request()
        yield req
        yield env.timeout(1.0)
        res.release(req)
        finish_times.append(env.now)

    for _ in range(4):
        env.process(proc(env))
    env.run()
    # Two batches of two.
    assert finish_times == [1.0, 1.0, 2.0, 2.0]


def test_release_without_hold_raises():
    env = Environment()
    lock = Lock(env)

    def proc(env):
        req = lock.request()
        yield req
        lock.release(req)
        with pytest.raises(SimulationError):
            lock.release(req)

    env.process(proc(env))
    env.run()


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_lock_stats_record_waiting():
    env = Environment()
    lock = Lock(env)

    def proc(env, hold):
        req = lock.request()
        yield req
        yield env.timeout(hold)
        lock.release(req)

    env.process(proc(env, 2.0))
    env.process(proc(env, 2.0))
    env.process(proc(env, 2.0))
    env.run()
    assert lock.stats.acquisitions == 3
    # Second waiter waits 2, third waits 4.
    assert lock.stats.total_wait == pytest.approx(6.0)
    assert lock.stats.max_queue == 2
    assert lock.stats.mean_wait == pytest.approx(2.0)


def test_stats_reset():
    env = Environment()
    lock = Lock(env)

    def proc(env):
        req = lock.request()
        yield req
        lock.release(req)

    env.process(proc(env))
    env.run()
    lock.stats.reset()
    assert lock.stats.acquisitions == 0
    assert lock.stats.mean_wait == 0.0


def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    store.put("a")
    store.put("b")

    def getter(env):
        x = yield store.get()
        y = yield store.get()
        return (x, y)

    p = env.process(getter(env))
    env.run()
    assert p.value == ("a", "b")


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)

    def getter(env):
        item = yield store.get()
        return (item, env.now)

    def putter(env):
        yield env.timeout(3.0)
        store.put("late")

    p = env.process(getter(env))
    env.process(putter(env))
    env.run()
    assert p.value == ("late", 3.0)


def test_store_fifo_getters():
    env = Environment()
    store = Store(env)
    results = {}

    def getter(env, tag):
        item = yield store.get()
        results[tag] = item

    env.process(getter(env, "first"))
    env.process(getter(env, "second"))

    def putter(env):
        yield env.timeout(1.0)
        store.put(1)
        store.put(2)

    env.process(putter(env))
    env.run()
    assert results == {"first": 1, "second": 2}


def test_store_size_and_peek():
    env = Environment()
    store = Store(env)
    assert store.size == 0
    store.put("x")
    assert store.size == 1
    assert store.peek_all() == ["x"]


def test_queue_length_visible_during_contention():
    env = Environment()
    lock = Lock(env)
    observed = []

    def holder(env):
        req = lock.request()
        yield req
        yield env.timeout(5.0)
        lock.release(req)

    def waiter(env):
        req = lock.request()
        yield req
        lock.release(req)

    def observer(env):
        yield env.timeout(1.0)
        observed.append(lock.queue_length)
        observed.append(lock.count)

    env.process(holder(env))
    env.process(waiter(env))
    env.process(observer(env))
    env.run()
    assert observed == [1, 1]
