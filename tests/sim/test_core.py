"""Unit tests for the discrete-event engine core."""

import pytest

from repro.sim import (
    Environment,
    Event,
    SimulationError,
    Timeout,
)


def test_initial_time_defaults_to_zero():
    assert Environment().now == 0.0


def test_initial_time_can_be_set():
    assert Environment(5.0).now == 5.0


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(2.5)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 2.5
    assert env.now == 2.5


def test_timeout_value_is_delivered():
    env = Environment()

    def proc(env):
        got = yield env.timeout(1.0, value="payload")
        return got

    p = env.process(proc(env))
    env.run()
    assert p.value == "payload"


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_zero_timeout_allowed():
    env = Environment()

    def proc(env):
        yield env.timeout(0.0)
        return "done"

    p = env.process(proc(env))
    env.run()
    assert p.value == "done"
    assert env.now == 0.0


def test_events_at_same_time_fifo_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for i in range(5):
        env.process(proc(env, i))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_event_succeed_delivers_value():
    env = Environment()
    ev = env.event()

    def waiter(env):
        val = yield ev
        return val

    def firer(env):
        yield env.timeout(1.0)
        ev.succeed(42)

    p = env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert p.value == 42


def test_event_double_trigger_raises():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_raises_in_waiter():
    env = Environment()
    ev = env.event()

    def waiter(env):
        try:
            yield ev
        except ValueError as exc:
            return f"caught {exc}"

    p = env.process(waiter(env))
    ev.fail(ValueError("boom"))
    env.run()
    assert p.value == "caught boom"


def test_unhandled_failure_propagates_to_run():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("unhandled"))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_event_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_run_until_time_stops_clock():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run(until=10.0)
    assert env.now == 10.0


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(3.0)
        return "finished"

    p = env.process(proc(env))
    result = env.run(until=p)
    assert result == "finished"


def test_run_until_past_time_raises():
    env = Environment(10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_run_until_event_deadlock_detected():
    env = Environment()
    ev = env.event()  # never triggered
    with pytest.raises(SimulationError, match="deadlock"):
        env.run(until=ev)


def test_run_until_already_processed_event():
    env = Environment()
    ev = env.event()
    ev.succeed("early")
    env.run()
    assert env.run(until=ev) == "early"


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(4.0)
    assert env.peek() == 4.0


def test_peek_empty_is_inf():
    assert Environment().peek() == float("inf")


def test_step_on_empty_raises():
    with pytest.raises(SimulationError):
        Environment().step()


def test_triggered_and_processed_lifecycle():
    env = Environment()
    ev = env.event()
    assert not ev.triggered and not ev.processed
    ev.succeed(7)
    assert ev.triggered and not ev.processed
    env.run()
    assert ev.triggered and ev.processed
    assert ev.value == 7


def test_timeout_is_event_subclass():
    env = Environment()
    assert isinstance(env.timeout(1.0), Event)
    assert isinstance(env.timeout(1.0), Timeout)
