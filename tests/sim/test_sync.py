"""Unit tests for barriers, semaphores, latches, and signals."""

import pytest

from repro.sim import (
    CountdownLatch,
    Environment,
    Semaphore,
    Signal,
    SimBarrier,
    SimulationError,
)


def test_barrier_releases_all_when_last_arrives():
    env = Environment()
    barrier = SimBarrier(env, 3)
    times = []

    def proc(env, delay):
        yield env.timeout(delay)
        yield barrier.wait()
        times.append(env.now)

    for d in (1.0, 2.0, 5.0):
        env.process(proc(env, d))
    env.run()
    assert times == [5.0, 5.0, 5.0]


def test_barrier_is_cyclic():
    env = Environment()
    barrier = SimBarrier(env, 2)
    generations = []

    def proc(env):
        for _ in range(3):
            gen = yield barrier.wait()
            generations.append(gen)
            yield env.timeout(1.0)

    env.process(proc(env))
    env.process(proc(env))
    env.run()
    assert generations == [0, 0, 1, 1, 2, 2]
    assert barrier.generation == 3


def test_single_party_barrier_is_noop():
    env = Environment()
    barrier = SimBarrier(env, 1)

    def proc(env):
        yield barrier.wait()
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 0.0


def test_barrier_invalid_parties():
    with pytest.raises(ValueError):
        SimBarrier(Environment(), 0)


def test_semaphore_limits_concurrency():
    env = Environment()
    sem = Semaphore(env, value=2)
    active = []
    peak = []

    def proc(env):
        yield sem.acquire()
        active.append(1)
        peak.append(len(active))
        yield env.timeout(1.0)
        active.pop()
        sem.release()

    for _ in range(5):
        env.process(proc(env))
    env.run()
    assert max(peak) == 2


def test_semaphore_initial_value_validation():
    with pytest.raises(ValueError):
        Semaphore(Environment(), value=-1)


def test_semaphore_release_without_waiters_increments():
    env = Environment()
    sem = Semaphore(env, value=0)
    sem.release()
    assert sem.value == 1


def test_latch_fires_at_zero():
    env = Environment()
    latch = CountdownLatch(env, 3)
    fired_at = []

    def waiter(env):
        yield latch.done
        fired_at.append(env.now)

    def worker(env, delay):
        yield env.timeout(delay)
        latch.count_down()

    env.process(waiter(env))
    for d in (1.0, 2.0, 3.0):
        env.process(worker(env, d))
    env.run()
    assert fired_at == [3.0]


def test_latch_count_down_returns_true_once():
    env = Environment()
    latch = CountdownLatch(env, 2)
    assert latch.count_down() is False
    assert latch.count_down() is True


def test_latch_zero_initial_count_fires_immediately():
    env = Environment()
    latch = CountdownLatch(env, 0)
    assert latch.done.triggered


def test_latch_overdecrement_raises():
    env = Environment()
    latch = CountdownLatch(env, 1)
    latch.count_down()
    with pytest.raises(SimulationError):
        latch.count_down()


def test_latch_bulk_decrement():
    env = Environment()
    latch = CountdownLatch(env, 5)
    assert latch.count_down(4) is False
    assert latch.count == 1
    assert latch.count_down() is True


def test_latch_bulk_overdecrement_raises():
    env = Environment()
    latch = CountdownLatch(env, 2)
    with pytest.raises(SimulationError):
        latch.count_down(3)


def test_signal_broadcast():
    env = Environment()
    sig = Signal(env)
    got = []

    def waiter(env, tag):
        val = yield sig.wait()
        got.append((tag, val))

    env.process(waiter(env, "a"))
    env.process(waiter(env, "b"))

    def firer(env):
        yield env.timeout(1.0)
        sig.fire("go")

    env.process(firer(env))
    env.run()
    assert sorted(got) == [("a", "go"), ("b", "go")]


def test_signal_resets_after_fire():
    env = Environment()
    sig = Signal(env)
    rounds = []

    def waiter(env):
        yield sig.wait()
        rounds.append(1)
        yield sig.wait()
        rounds.append(2)

    def firer(env):
        yield env.timeout(1.0)
        sig.fire()
        yield env.timeout(1.0)
        sig.fire()

    env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert rounds == [1, 2]
