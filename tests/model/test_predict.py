"""Tests for the end-to-end message-time and gain predictions."""

import pytest

from repro.model import predict_eta, predict_message_time
from repro.model.pipeline import gamma_from_us_per_mb
from repro.net import MELUXINA, Protocol


class TestMessagePrediction:
    def test_protocol_selection_matches_params(self):
        assert predict_message_time(MELUXINA, 100).protocol is Protocol.SHORT
        assert predict_message_time(MELUXINA, 4096).protocol is Protocol.BCOPY
        assert predict_message_time(MELUXINA, 65536).protocol is Protocol.ZCOPY

    def test_short_has_no_copies_or_handshake(self):
        pred = predict_message_time(MELUXINA, 64)
        assert pred.copies == 0.0
        assert pred.handshake == 0.0

    def test_bcopy_pays_two_copies(self):
        pred = predict_message_time(MELUXINA, 4096)
        assert pred.copies == pytest.approx(2 * MELUXINA.copy_time(4096))

    def test_zcopy_pays_handshake_not_copies(self):
        pred = predict_message_time(MELUXINA, 1 << 20)
        assert pred.copies == 0.0
        assert pred.handshake > 2 * MELUXINA.latency

    def test_total_is_sum_of_parts(self):
        pred = predict_message_time(MELUXINA, 4096)
        assert pred.total == pytest.approx(
            pred.post + pred.copies + pred.wire + pred.latency
            + pred.handshake + pred.recv
        )

    def test_monotone_in_size_within_protocol(self):
        t1 = predict_message_time(MELUXINA, 2048).total
        t2 = predict_message_time(MELUXINA, 8192).total
        assert t2 > t1

    def test_prediction_matches_simulator_for_small_message(self):
        """The Fig. 4 single-thread point: model vs simulation."""
        from repro.bench import BenchSpec, run_benchmark

        pred = predict_message_time(MELUXINA, 64).total
        # The simulated metric adds the recv-post overhead.
        pred += MELUXINA.recv_post_overhead
        measured = run_benchmark(
            BenchSpec(approach="pt2pt_single", total_bytes=64, iterations=3)
        ).mean
        assert measured == pytest.approx(pred, rel=0.05)


class TestPredictEta:
    def test_asymptotic_matches_eq4(self):
        g = gamma_from_us_per_mb(100.0)
        assert predict_eta(4, 1, g, MELUXINA) == pytest.approx(8 / 3, rel=1e-6)

    def test_finite_size_below_asymptote(self):
        g = gamma_from_us_per_mb(100.0)
        finite = predict_eta(4, 1, g, MELUXINA, part_bytes=4 << 20)
        asymptote = predict_eta(4, 1, g, MELUXINA)
        assert finite == pytest.approx(asymptote, rel=1e-6)

    def test_zero_delay_parity(self):
        assert predict_eta(4, 1, 0.0, MELUXINA, part_bytes=1 << 20) == (
            pytest.approx(1.0)
        )
