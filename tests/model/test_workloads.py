"""Tests pinning Appendix A.2's published numbers."""

import pytest

from repro.model import FFT, PAPER_FFT_TABLE, PAPER_STENCIL_GAMMAS, STENCIL
from repro.model.workloads import PAPER_STENCIL_ETAS


class TestFFT:
    """A.2.1 — the self-consistent example: γ and η both reproduce."""

    @pytest.mark.parametrize("theta", [1, 2, 8])
    def test_published_gammas(self, theta):
        published, _ = PAPER_FFT_TABLE[theta]
        assert FFT.gamma_us_per_mb(theta) == pytest.approx(published, rel=1e-4)

    @pytest.mark.parametrize("theta", [1, 2, 8])
    def test_published_etas(self, theta):
        _, published = PAPER_FFT_TABLE[theta]
        assert FFT.eta(8, theta) == pytest.approx(published, abs=1e-3)

    def test_parameters_from_paper(self):
        assert FFT.ai == 5.0
        assert FFT.ci == 1.0
        assert FFT.delta == 0.0
        assert FFT.epsilon == 0.04


class TestStencil:
    """A.2.2 — γ values reproduce from Eq. (9); the published η values
    require the doubled γ·β term (paper inconsistency, see DESIGN.md)."""

    @pytest.mark.parametrize("theta", [1, 2, 8])
    def test_published_gammas(self, theta):
        published = PAPER_STENCIL_GAMMAS[theta]
        assert STENCIL.gamma_us_per_mb(theta) == pytest.approx(
            published, rel=2e-3
        )

    @pytest.mark.parametrize("theta", [1, 2, 8])
    def test_published_etas_with_doubled_term(self, theta):
        published = PAPER_STENCIL_ETAS[theta]
        assert STENCIL.eta_as_published_stencil(8, theta) == pytest.approx(
            published, abs=2e-3
        )

    @pytest.mark.parametrize("theta", [1, 2, 8])
    def test_eq4_etas_differ_from_published(self, theta):
        """Documents the inconsistency: strict Eq. (4) does NOT give the
        published stencil gains."""
        strict = STENCIL.eta(8, theta)
        published = PAPER_STENCIL_ETAS[theta]
        assert abs(strict - published) > 0.01

    def test_ci_formula(self):
        assert STENCIL.ci == pytest.approx((66 / 64) ** 3 - 1)

    def test_stencil_more_imbalanced_than_fft(self):
        assert STENCIL.delta > FFT.delta


class TestWorkloadGeneric:
    def test_gamma_unit_conversion(self):
        # γ in µs/MB = γ_SI × 1e12.
        assert FFT.gamma_us_per_mb(1) == pytest.approx(FFT.gamma(1) * 1e12)

    def test_eta_monotone_in_theta(self):
        etas = [FFT.eta(8, t) for t in (1, 2, 4, 8)]
        assert etas == sorted(etas)

    def test_mu_positive(self):
        assert FFT.mu > 0 and STENCIL.mu > 0

    def test_stencil_slower_compute_rate_than_fft(self):
        """AI/CI is lower for the stencil... actually the stencil's
        AI/CI = (1/13)/0.0967 ≈ 0.80 < FFT's 5.0, so its µ is smaller."""
        assert STENCIL.mu < FFT.mu
