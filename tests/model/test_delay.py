"""Tests for Eqs. (6)-(9): the delay-rate model."""

import math

import pytest

from repro.model import delay_time, gamma_theta, mu_rate, sigma_noise


class TestMu:
    def test_eq6(self):
        # AI=5, CI=1, F=3.5 GHz, 8 flops/cycle.
        mu = mu_rate(5.0, 1.0, 3.5e9)
        assert mu == pytest.approx(5.0 / (8 * 3.5e9))

    def test_higher_ai_means_slower(self):
        assert mu_rate(10, 1, 1e9) > mu_rate(5, 1, 1e9)

    def test_higher_ci_means_faster(self):
        assert mu_rate(5, 2, 1e9) < mu_rate(5, 1, 1e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            mu_rate(0, 1, 1e9)
        with pytest.raises(ValueError):
            mu_rate(1, 1, 0)


class TestSigma:
    def test_eq7(self):
        assert sigma_noise(0.04, 0.5) == pytest.approx(0.27)
        assert sigma_noise(0.0, 0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            sigma_noise(-0.1, 0.0)


class TestGammaTheta:
    def test_theta1_reduces_to_two_sigma(self):
        """γ₁ = µ·2σ: first partition at µS(1−σ), last at µS(1+σ)."""
        mu = 1e-9
        g = gamma_theta(mu, 1, 0.04, 0.0)
        assert g == pytest.approx(mu * 2 * 0.02)

    def test_grows_with_theta(self):
        mu = 1e-9
        gs = [gamma_theta(mu, t, 0.04, 0.0) for t in (1, 2, 4, 8)]
        assert gs == sorted(gs)
        # Dominated by the θ term for large θ.
        assert gs[-1] == pytest.approx(mu * (8 + 0.02 * (math.sqrt(8) + 1) - 1))

    def test_zero_noise_zero_delay_at_theta1(self):
        assert gamma_theta(1e-9, 1, 0.0, 0.0) == 0.0

    def test_zero_noise_theta_only(self):
        mu = 1e-9
        assert gamma_theta(mu, 4, 0.0, 0.0) == pytest.approx(mu * 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            gamma_theta(-1.0, 1, 0, 0)
        with pytest.raises(ValueError):
            gamma_theta(1.0, 0, 0, 0)


class TestDelayTime:
    def test_eq8(self):
        assert delay_time(1e-10, 1e6) == pytest.approx(1e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            delay_time(-1, 10)
