"""Tests for Eqs. (1)-(5): the pipelined-communication gain model."""

import pytest

from repro.model import (
    crossover_bytes,
    eta_large,
    eta_small,
    gamma_from_us_per_mb,
    gamma_to_us_per_mb,
    t_bulk,
    t_pipelined,
)

BETA = 25e9  # the paper's 25 GB/s


class TestUnits:
    def test_gamma_conversion_round_trip(self):
        g = gamma_from_us_per_mb(100.0)
        assert g == pytest.approx(1e-10)
        assert gamma_to_us_per_mb(g) == pytest.approx(100.0)


class TestBulkTime:
    def test_eq2(self):
        # 8 partitions of 1 MB at 25 GB/s.
        assert t_bulk(8, 1, 1e6, BETA) == pytest.approx(8e6 / 25e9)

    def test_scales_with_theta(self):
        assert t_bulk(4, 2, 1e6, BETA) == t_bulk(8, 1, 1e6, BETA)

    def test_validation(self):
        with pytest.raises(ValueError):
            t_bulk(0, 1, 1e6, BETA)
        with pytest.raises(ValueError):
            t_bulk(1, 1, 1e6, 0)


class TestPipelinedTime:
    def test_no_delay_equals_bulk(self):
        assert t_pipelined(8, 1, 1e6, BETA, 0.0) == pytest.approx(
            t_bulk(8, 1, 1e6, BETA)
        )

    def test_full_overlap_floor(self):
        """With a huge delay the pipeline hides all but one transfer."""
        huge_gamma = 1.0  # s/B, absurdly large
        tp = t_pipelined(8, 1, 1e6, BETA, huge_gamma)
        assert tp == pytest.approx(1e6 / BETA)

    def test_partial_overlap(self):
        gamma = gamma_from_us_per_mb(100.0)
        tp = t_pipelined(4, 1, 1e6, BETA, gamma)
        expected = max(3e6 / BETA - gamma * 1e6, 0) + 1e6 / BETA
        assert tp == pytest.approx(expected)


class TestEtaLarge:
    def test_paper_section22_examples(self):
        """The §2.2 worked examples: γ = 1, 10 µs/MB at θ=1, N=8."""
        assert eta_large(8, 1, BETA, gamma_from_us_per_mb(1.0)) == pytest.approx(
            1.003, abs=5e-4
        )
        assert eta_large(8, 1, BETA, gamma_from_us_per_mb(10.0)) == pytest.approx(
            1.032, abs=5e-4
        )

    def test_paper_theta8_example(self):
        """γ = 1000 µs/MB at θ=8 gives η = 1.641."""
        assert eta_large(
            8, 8, BETA, gamma_from_us_per_mb(1000.0)
        ) == pytest.approx(1.641, abs=5e-4)

    def test_fig8_configuration(self):
        """N=4, γ=100 µs/MB → 2.67 (the Fig. 8 theory line)."""
        assert eta_large(
            4, 1, BETA, gamma_from_us_per_mb(100.0)
        ) == pytest.approx(8.0 / 3.0, rel=1e-6)

    def test_gain_never_below_parity_floor(self):
        """The max(..., 1) clamp bounds the gain at N·θ."""
        eta = eta_large(4, 1, BETA, 1.0)
        assert eta == pytest.approx(4.0)

    def test_no_delay_no_gain(self):
        assert eta_large(8, 1, BETA, 0.0) == pytest.approx(1.0)

    def test_monotone_in_gamma(self):
        gammas = [gamma_from_us_per_mb(g) for g in (0, 10, 50, 100, 200)]
        etas = [eta_large(4, 1, BETA, g) for g in gammas]
        assert etas == sorted(etas)


class TestEtaSmall:
    def test_eq5(self):
        assert eta_small(8, 1) == pytest.approx(1 / 8)
        assert eta_small(4, 32) == pytest.approx(1 / 128)

    def test_single_message_parity(self):
        assert eta_small(1, 1) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            eta_small(0, 1)


class TestCrossover:
    def test_fig8_crossover_order_of_magnitude(self):
        """The paper observes ~100 kB for the Fig. 8 setup."""
        x = crossover_bytes(
            4, 1, BETA, gamma_from_us_per_mb(100.0), latency=1.22e-6
        )
        assert 10e3 < x < 1e6

    def test_no_delay_never_crosses(self):
        assert crossover_bytes(4, 1, BETA, 0.0, 1.22e-6) == float("inf")

    def test_single_partition_crosses_immediately(self):
        assert crossover_bytes(1, 1, BETA, 1.0, 1.22e-6) == 0.0

    def test_more_latency_pushes_crossover_up(self):
        g = gamma_from_us_per_mb(100.0)
        assert crossover_bytes(4, 1, BETA, g, 2e-6) > crossover_bytes(
            4, 1, BETA, g, 1e-6
        )
