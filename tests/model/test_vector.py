"""Batch/scalar equivalence: the vectorized kernel vs the scalar model.

The scalar predictors are the single source of truth; the numpy kernel
(:mod:`repro.model.vector`) must be **bitwise identical** per point —
not merely close.  These property-style sweeps cross every registered
approach and pattern with sizes spanning all three wire protocols,
thread/partition geometries, VCI configurations, and compute models,
and assert exact float equality (``==``, no tolerance).
"""

import itertools

import numpy as np
import pytest

from repro.apps.base import PatternConfig
from repro.bench.harness import BenchSpec
from repro.mpi import Cvars
from repro.model.approaches import (
    APPROACH_PREDICTORS,
    predict_bench_time,
    predict_bench_times,
)
from repro.model.patterns import predict_pattern_time, predict_pattern_times
from repro.model.vector import BENCH_COLUMN_FIELDS, bench_times_from_columns
from repro.net import MELUXINA

ALL_APPROACHES = sorted(APPROACH_PREDICTORS)

#: Sizes straddling the short/bcopy/zcopy protocol thresholds plus the
#: large-message regime where the zcopy queue-feedback branches fire.
SIZES = [64, 1024, 2048, 8192, 16384, 262144, 1 << 20, 1 << 24]


def bench_sweep_specs():
    """The full cross-product equivalence fixture (~4k points)."""
    specs = []
    for approach, size, (nt, th), vcis, method in itertools.product(
        ALL_APPROACHES,
        SIZES,
        [(1, 1), (2, 4), (4, 1), (32, 1)],
        [1, 4],
        ["comm", "tag_rr"],
    ):
        specs.append(
            BenchSpec(
                approach=approach,
                total_bytes=size,
                n_threads=nt,
                theta=th,
                iterations=1,
                cvars=Cvars(num_vcis=vcis, vci_method=method),
            )
        )
    return specs


class TestBenchEquivalence:
    def test_full_sweep_bitwise_equal(self):
        specs = bench_sweep_specs()
        scalar = np.array([predict_bench_time(s).time for s in specs])
        vector = predict_bench_times(specs)
        mismatch = np.nonzero(scalar != vector)[0]
        assert mismatch.size == 0, (
            f"{mismatch.size} of {len(specs)} points diverge; first: "
            f"{specs[mismatch[0]]}"
        )

    @pytest.mark.parametrize("approach", ALL_APPROACHES)
    def test_compute_models_per_approach(self, approach):
        """Fixed-delay and Gaussian compute paths, per approach."""
        specs = [
            BenchSpec(
                approach=approach,
                total_bytes=size,
                n_threads=4,
                theta=2,
                iterations=1,
                gamma_us_per_mb=gamma,
                gaussian_mu_us_per_mb=mu,
            )
            for size in SIZES
            for gamma, mu in [(0.0, 0.0), (200.0, 0.0), (0.0, 150.0),
                              (400.0, 150.0)]
        ]
        scalar = [predict_bench_time(s).time for s in specs]
        vector = predict_bench_times(specs)
        assert scalar == list(vector)

    def test_mixed_params_grouping(self):
        """Batches mixing machine models group correctly."""
        fast = MELUXINA.with_updates(bandwidth=100e9)
        specs = []
        for params in (MELUXINA, fast):
            for approach in ("pt2pt_part", "rma_many_active"):
                specs.append(
                    BenchSpec(
                        approach=approach,
                        total_bytes=1 << 20,
                        n_threads=8,
                        iterations=1,
                        params=params,
                    )
                )
        scalar = [predict_bench_time(s).time for s in specs]
        assert scalar == list(predict_bench_times(specs))

    def test_columns_api_matches_spec_api(self):
        """The campaign fast path (bare columns, no spec objects)."""
        specs = [
            BenchSpec(
                approach=approach,
                total_bytes=size,
                n_threads=nt,
                theta=2,
                iterations=1,
                gamma_us_per_mb=gamma,
            )
            for approach in ALL_APPROACHES
            for size in (2048, 1 << 20)
            for nt in (1, 16)
            for gamma in (0.0, 100.0)
        ]
        columns = {
            name: np.array([getattr(s, name) for s in specs])
            for name in BENCH_COLUMN_FIELDS
            if name != "approach"
        }
        columns["approach"] = np.array(
            [s.approach for s in specs], dtype=object
        )
        cvars = Cvars()
        from_columns = bench_times_from_columns(
            MELUXINA, cvars.num_vcis, cvars.vci_method,
            cvars.part_aggr_size, columns, len(specs),
        )
        assert list(predict_bench_times(specs)) == list(from_columns)

    def test_unknown_approach_rejected(self):
        spec = BenchSpec(
            approach="pt2pt_single", total_bytes=1024, iterations=1
        )
        with pytest.raises(KeyError):
            bench_times_from_columns(
                MELUXINA, 1, "comm", 0,
                {"approach": "no_such_approach", "total_bytes": 1024}, 1,
            )
        assert predict_bench_times([spec]).shape == (1,)


class TestPatternEquivalence:
    @pytest.mark.parametrize("pattern", ["halo3d", "sweep3d", "fft"])
    def test_all_approaches_bitwise_equal(self, pattern):
        configs = [
            PatternConfig(
                pattern=pattern,
                approach=approach,
                n_ranks=ranks,
                n_threads=nt,
                msg_bytes=size,
                iterations=1,
                compute_us_per_mb=comp,
                cvars=Cvars(num_vcis=vcis),
            )
            for approach in ALL_APPROACHES
            for ranks in (4, 8)
            for nt in (1, 4)
            for size in (1024, 65536, 1 << 20)
            for vcis in (1, 4)
            for comp in (0.0, 200.0)
        ]
        scalar = [predict_pattern_time(c).time for c in configs]
        batch = predict_pattern_times(configs)
        assert scalar == list(batch.times)

    @pytest.mark.parametrize("pattern", ["halo3d", "sweep3d", "fft"])
    def test_noise_modes_bitwise_equal(self, pattern):
        """The injected-noise mean shift, all shapes x all approaches."""
        configs = [
            PatternConfig(
                pattern=pattern,
                approach=approach,
                n_ranks=8,
                n_threads=nt,
                msg_bytes=size,
                iterations=1,
                compute_us_per_mb=200.0,
                noise=noise,
                noise_us=noise_us,
                noise_sigma_us=sigma,
            )
            for approach in ALL_APPROACHES
            for nt in (2, 8)
            for size in (16384, 1 << 20)
            for noise, noise_us, sigma in [
                ("none", 0.0, 0.0),
                ("single", 25.0, 0.0),
                ("uniform", 80.0, 0.0),
                ("gaussian", 50.0, 15.0),
                ("gaussian", 50.0, 0.0),
            ]
        ]
        scalar = [predict_pattern_time(c).time for c in configs]
        batch = predict_pattern_times(configs)
        assert scalar == list(batch.times)

    @pytest.mark.parametrize("pattern", ["halo3d", "sweep3d", "fft"])
    def test_columns_api_matches_scalar(self, pattern):
        """The campaign fast path (bare columns, no config objects):
        all 8 approaches x noise modes, bitwise-equal to the scalar
        predictor — the tentpole invariant."""
        from repro.model.vector import pattern_times_from_columns

        configs = [
            PatternConfig(
                pattern=pattern,
                approach=approach,
                n_ranks=ranks,
                n_threads=nt,
                msg_bytes=size,
                iterations=1,
                compute_us_per_mb=comp,
                noise=noise,
                noise_us=noise_us,
            )
            for approach in ALL_APPROACHES
            for ranks in (4, 8)
            for nt in (2, 4)
            for size in (16384, 1 << 20)
            for comp in (0.0, 200.0)
            for noise, noise_us in [
                ("none", 0.0), ("single", 30.0),
                ("uniform", 30.0), ("gaussian", 30.0),
            ]
        ]
        columns = {
            name: np.array([getattr(c, name) for c in configs])
            for name in (
                "n_ranks", "n_threads", "msg_bytes",
                "compute_us_per_mb", "noise_us", "noise_sigma_us",
            )
        }
        for name in ("pattern", "approach", "noise"):
            columns[name] = np.array(
                [getattr(c, name) for c in configs], dtype=object
            )
        cvars = Cvars()
        batch = pattern_times_from_columns(
            MELUXINA, cvars.num_vcis, cvars.part_aggr_size,
            columns, len(configs),
        )
        scalar = [predict_pattern_time(c).time for c in configs]
        assert scalar == list(batch.times)
        native = predict_pattern_times(configs)
        assert list(batch.bytes_per_iteration) == list(
            native.bytes_per_iteration
        )
        assert list(batch.n_links) == list(native.n_links)

    def test_columns_api_defaults_and_scalars(self):
        """Scalar/broadcast columns and spec-default fallbacks."""
        from repro.model.vector import pattern_times_from_columns

        config = PatternConfig(pattern="halo3d")  # all defaults
        batch = pattern_times_from_columns(
            MELUXINA, 1, Cvars().part_aggr_size,
            {"pattern": "halo3d"}, 3,
        )
        expected = predict_pattern_time(config).time
        assert list(batch.times) == [expected] * 3

    def test_columns_api_requires_pattern(self):
        from repro.model.vector import pattern_times_from_columns

        with pytest.raises(KeyError):
            pattern_times_from_columns(
                MELUXINA, 1, 512, {"msg_bytes": 1024}, 1
            )

    def test_columns_api_rejects_unknown_approach(self):
        from repro.model.vector import pattern_times_from_columns

        with pytest.raises(KeyError, match="no analytic predictor"):
            pattern_times_from_columns(
                MELUXINA, 1, 512,
                {"pattern": "halo3d", "approach": "pt2pt_partt"}, 1,
            )

    def test_noise_mean_quantum_shapes(self):
        from repro.model.patterns import noise_mean_quantum

        assert noise_mean_quantum("none", 100.0, 0.0) == 0.0
        assert noise_mean_quantum("single", 50.0, 0.0) == 50.0 * 1e-6
        assert noise_mean_quantum("uniform", 50.0, 0.0) == 50.0 * 1e-6
        # sigma=0 degenerates to the amplitude
        assert noise_mean_quantum("gaussian", 50.0, 0.0) == 50.0 * 1e-6
        # truncation at zero pulls the mean above the raw mean
        truncated = noise_mean_quantum("gaussian", 10.0, 30.0)
        assert truncated > 10.0e-6
        with pytest.raises(KeyError):
            noise_mean_quantum("no_such_noise", 1.0, 0.0)

    def test_noise_free_predictions_unchanged_by_correction(self):
        """noise="none" must flow through the exact pre-correction
        arithmetic: the shift terms all collapse to + 0.0."""
        config = PatternConfig(
            pattern="halo3d", approach="pt2pt_part", n_ranks=8,
            n_threads=4, msg_bytes=1 << 16, compute_us_per_mb=200.0,
        )
        prediction = predict_pattern_time(config)
        assert prediction.breakdown["noise_shift"] == 0.0
        noisy = PatternConfig(
            pattern="halo3d", approach="pt2pt_part", n_ranks=8,
            n_threads=4, msg_bytes=1 << 16, compute_us_per_mb=200.0,
            noise="single", noise_us=50.0,
        )
        assert predict_pattern_time(noisy).time != prediction.time

    def test_topology_metadata_matches_pattern(self):
        from repro.apps.base import build_pattern

        configs = [
            PatternConfig(
                pattern=pattern,
                approach="pt2pt_part",
                n_ranks=8,
                n_threads=2,
                msg_bytes=16384,
                iterations=1,
            )
            for pattern in ("halo3d", "sweep3d", "fft")
        ]
        batch = predict_pattern_times(configs)
        for j, config in enumerate(configs):
            built = build_pattern(config)
            assert batch.bytes_per_iteration[j] == built.bytes_per_iteration()
            assert batch.n_links[j] == len(built.links())


class TestRunBatchEquivalence:
    """`Backend.run_batch` must be indistinguishable from per-point
    `run` — asserted on the serialized result form, which is exactly
    what stores and reports consume."""

    def _assert_batch_equals_run(self, scenarios):
        from repro.backends import get_backend
        from repro.runner.scenario import result_to_dict

        backend = get_backend("analytic")
        batched = backend.run_batch(scenarios)
        for scenario, batch_result in zip(scenarios, batched):
            single = backend.run(scenario)
            assert result_to_dict(scenario, batch_result) == result_to_dict(
                scenario, single
            )

    def test_bench_all_approaches(self):
        from repro.runner.scenario import scenario_for

        self._assert_batch_equals_run([
            scenario_for(
                BenchSpec(
                    approach=approach,
                    total_bytes=size,
                    n_threads=4,
                    theta=2,
                    iterations=3,
                ),
                backend="analytic",
            )
            for approach in ALL_APPROACHES
            for size in (1024, 16384, 1 << 20)
        ])

    def test_large_batch_takes_vector_path(self):
        """Above VECTOR_MIN_BATCH the kernel path runs — same bits."""
        from repro.backends.analytic import AnalyticBackend
        from repro.runner.scenario import scenario_for

        scenarios = [
            scenario_for(
                BenchSpec(
                    approach=approach,
                    total_bytes=1024 * (j + 1),
                    n_threads=2,
                    iterations=1,
                ),
                backend="analytic",
            )
            for approach in ALL_APPROACHES
            for j in range(10)
        ]
        assert len(scenarios) >= AnalyticBackend.VECTOR_MIN_BATCH
        self._assert_batch_equals_run(scenarios)

    def test_patterns_all_three(self):
        from repro.runner.scenario import scenario_for

        self._assert_batch_equals_run([
            scenario_for(
                PatternConfig(
                    pattern=pattern,
                    approach=approach,
                    n_ranks=4,
                    n_threads=2,
                    msg_bytes=size,
                    iterations=2,
                ),
                backend="analytic",
            )
            for pattern in ("halo3d", "sweep3d", "fft")
            for approach in ("pt2pt_single", "pt2pt_part", "rma_many_active")
            for size in (4096, 1 << 20)
        ])

    def test_mixed_kind_batch_preserves_order(self):
        from repro.runner.scenario import scenario_for

        scenarios = [
            scenario_for(
                BenchSpec(
                    approach="pt2pt_part", total_bytes=65536, iterations=1
                ),
                backend="analytic",
            ),
            scenario_for(
                PatternConfig(
                    pattern="halo3d", n_ranks=4, n_threads=1,
                    msg_bytes=4096, iterations=1,
                ),
                backend="analytic",
            ),
            scenario_for(
                BenchSpec(
                    approach="pt2pt_single", total_bytes=1024, iterations=1
                ),
                backend="analytic",
            ),
        ]
        from repro.backends import get_backend

        results = get_backend("analytic").run_batch(scenarios)
        assert results[0].spec.approach == "pt2pt_part"
        assert results[1].config.pattern == "halo3d"
        assert results[2].spec.approach == "pt2pt_single"

    def test_default_run_batch_is_run_loop(self):
        """The base-class default (the simulator path) loops run()."""
        from repro.backends import get_backend
        from repro.runner.scenario import result_to_dict, scenario_for

        scenarios = [
            scenario_for(
                BenchSpec(
                    approach="pt2pt_single",
                    total_bytes=size,
                    iterations=1,
                    n_threads=2,
                ),
            )
            for size in (1024, 65536)
        ]
        backend = get_backend("sim")
        batched = backend.run_batch(scenarios)
        for scenario, result in zip(scenarios, batched):
            assert result_to_dict(scenario, result) == result_to_dict(
                scenario, backend.run(scenario)
            )
