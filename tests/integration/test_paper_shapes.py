"""Integration tests: the paper's headline findings must hold.

These pin the *shape* of every figure — who wins, by roughly what
factor, where crossovers fall — with generous tolerance bands so the
suite stays robust to cost-model retuning while still catching any
regression that would invalidate the reproduction.
"""

import pytest

from repro.bench import BenchSpec, run_benchmark
from repro.mpi import Cvars, VCI_METHOD_TAG_RR

ITERS = 5


def mean_us(name, size, **kw):
    kw.setdefault("iterations", ITERS)
    return run_benchmark(
        BenchSpec(approach=name, total_bytes=size, **kw)
    ).mean_us


class TestFig4Shapes:
    """N = 1, θ = 1, no delay."""

    def test_improved_part_matches_single(self):
        for size in (64, 4096, 1 << 20):
            part = mean_us("pt2pt_part", size)
            single = mean_us("pt2pt_single", size)
            assert part == pytest.approx(single, rel=0.25)

    def test_old_am_slower_at_every_size(self):
        for size in (16, 1024, 8192, 1 << 18, 1 << 24):
            assert mean_us("pt2pt_part_old", size) > mean_us("pt2pt_part", size)

    def test_old_am_factor_at_large_sizes(self):
        """Paper annotation: ÷3.18."""
        ratio = mean_us("pt2pt_part_old", 1 << 24) / mean_us("pt2pt_part", 1 << 24)
        assert 2.3 < ratio < 4.2

    def test_protocol_jump_short_to_bcopy(self):
        """Fig. 4: a time step between 1024 and 2048 B."""
        t1k = mean_us("pt2pt_single", 1024)
        t2k = mean_us("pt2pt_single", 2048)
        assert t2k / t1k > 1.10

    def test_protocol_jump_bcopy_to_rendezvous(self):
        """Fig. 4: a time step between 8192 and 16384 B."""
        t8k = mean_us("pt2pt_single", 8192)
        t16k = mean_us("pt2pt_single", 16384)
        assert t16k / t8k > 1.3

    def test_rma_overhead_at_small_sizes(self):
        for name in ("rma_single_passive", "rma_single_active"):
            ratio = mean_us(name, 64) / mean_us("pt2pt_single", 64)
            assert ratio > 1.5, name

    def test_rma_converges_at_large_sizes(self):
        ratio = mean_us("rma_single_passive", 1 << 24) / mean_us(
            "pt2pt_single", 1 << 24
        )
        assert ratio == pytest.approx(1.0, rel=0.05)

    def test_large_messages_hit_wire_bandwidth(self):
        """At 16 MiB the time approaches S/β = 671 µs."""
        t = mean_us("pt2pt_single", 1 << 24)
        assert 650 < t < 750


class TestFig5Shapes:
    """32 threads, θ = 1, one VCI."""

    KW = dict(n_threads=32)

    def test_single_wins_at_small_sizes(self):
        single = mean_us("pt2pt_single", 1024, **self.KW)
        for name in ("pt2pt_part", "pt2pt_many", "rma_single_passive"):
            assert mean_us(name, 1024, **self.KW) > single

    def test_congestion_penalty_magnitude(self):
        """Paper: ×29.76; accept the 15-45 band."""
        ratio = mean_us("pt2pt_part", 1024, **self.KW) / mean_us(
            "pt2pt_single", 1024, **self.KW
        )
        assert 15 < ratio < 45

    def test_part_and_many_comparable(self):
        """Paper: 'little difference between the achieved overheads'."""
        part = mean_us("pt2pt_part", 1024, **self.KW)
        many = mean_us("pt2pt_many", 1024, **self.KW)
        assert 0.4 < part / many < 2.5

    def test_rma_many_above_rma_single(self):
        """The window-scan overhead shifts many-passive upward."""
        assert mean_us("rma_many_passive", 1024, **self.KW) > mean_us(
            "rma_single_passive", 1024, **self.KW
        )

    def test_penalty_vanishes_at_large_sizes(self):
        ratio = mean_us("pt2pt_part", 1 << 24, **self.KW) / mean_us(
            "pt2pt_single", 1 << 24, **self.KW
        )
        assert ratio < 1.2


class TestFig6Shapes:
    """32 threads, 32 VCIs, tag-encoded round robin."""

    KW = dict(
        n_threads=32,
        cvars=Cvars(num_vcis=32, vci_method=VCI_METHOD_TAG_RR),
    )
    KW1 = dict(n_threads=32)  # the 1-VCI reference

    def test_many_matches_single(self):
        ratio = mean_us("pt2pt_many", 1024, **self.KW) / mean_us(
            "pt2pt_single", 1024, **self.KW
        )
        assert ratio == pytest.approx(1.0, rel=0.25)

    def test_part_residual_penalty(self):
        """Paper: ×4.04; accept 2-7."""
        ratio = mean_us("pt2pt_part", 1024, **self.KW) / mean_us(
            "pt2pt_single", 1024, **self.KW
        )
        assert 2.0 < ratio < 7.0

    def test_vcis_cut_congestion_by_large_factor(self):
        """Paper: penalty drops from ~30 to ~4 (factor ~7-10)."""
        with_vcis = mean_us("pt2pt_part", 1024, **self.KW)
        without = mean_us("pt2pt_part", 1024, **self.KW1)
        assert without / with_vcis > 4.0

    def test_rma_ordering_flips(self):
        """Paper: many-passive becomes faster than single-passive."""
        assert mean_us("rma_many_passive", 1024, **self.KW) < mean_us(
            "rma_single_passive", 1024, **self.KW
        )


class TestFig7Shapes:
    """4 threads, θ = 32 (128 partitions)."""

    KW = dict(n_threads=4, theta=32)

    def test_no_aggregation_matches_many(self):
        part = mean_us("pt2pt_part", 2048, **self.KW)
        many = mean_us("pt2pt_many", 2048, **self.KW)
        assert part == pytest.approx(many, rel=0.3)

    def test_aggregation_floor(self):
        """Paper: ×3.13 over single with aggregation; accept 2-5."""
        ratio = mean_us(
            "pt2pt_part", 2048, cvars=Cvars(part_aggr_size=512), **self.KW
        ) / mean_us("pt2pt_single", 2048, **self.KW)
        assert 2.0 < ratio < 5.0

    def test_aggregation_beats_no_aggregation(self):
        aggr = mean_us(
            "pt2pt_part", 2048, cvars=Cvars(part_aggr_size=4096), **self.KW
        )
        noaggr = mean_us("pt2pt_part", 2048, **self.KW)
        assert noaggr / aggr > 2.5

    def test_aggregation_benefit_ends_at_npart_times_bound(self):
        """Above N_part x aggr the curves rejoin (message count saturates)."""
        big = 1 << 20  # 128 x 512 B = 64 KiB << 1 MiB
        aggr = mean_us(
            "pt2pt_part", big, cvars=Cvars(part_aggr_size=512), **self.KW
        )
        noaggr = mean_us("pt2pt_part", big, **self.KW)
        assert aggr == pytest.approx(noaggr, rel=0.05)

    def test_larger_bound_helps_longer(self):
        size = 1 << 17  # 128 KiB: beyond 128x512, within 128x4096
        small_bound = mean_us(
            "pt2pt_part", size, cvars=Cvars(part_aggr_size=512), **self.KW
        )
        large_bound = mean_us(
            "pt2pt_part", size, cvars=Cvars(part_aggr_size=4096), **self.KW
        )
        assert large_bound < small_bound


class TestFig8Shapes:
    """4 threads, θ = 1, γ = 100 µs/MB on the last partition."""

    KW = dict(n_threads=4, gamma_us_per_mb=100.0)

    def test_gain_at_large_sizes(self):
        """Paper: ×2.54 measured, 2.67 theoretical."""
        gain = mean_us("pt2pt_single", 1 << 24, **self.KW) / mean_us(
            "pt2pt_part", 1 << 24, **self.KW
        )
        assert 2.3 < gain < 2.67

    def test_gain_is_approach_agnostic(self):
        single = mean_us("pt2pt_single", 1 << 24, **self.KW)
        gains = [
            single / mean_us(name, 1 << 24, **self.KW)
            for name in ("pt2pt_part", "pt2pt_many", "rma_single_passive")
        ]
        assert max(gains) / min(gains) < 1.1

    def test_pipelining_loses_at_small_sizes(self):
        gain = mean_us("pt2pt_single", 512, **self.KW) / mean_us(
            "pt2pt_part", 512, **self.KW
        )
        assert gain < 1.0

    def test_crossover_in_expected_decade(self):
        """Paper: ~100 kB; assert the sign flips between 4 kB and 1 MB."""
        small_gain = mean_us("pt2pt_single", 4096, **self.KW) / mean_us(
            "pt2pt_part", 4096, **self.KW
        )
        large_gain = mean_us("pt2pt_single", 1 << 20, **self.KW) / mean_us(
            "pt2pt_part", 1 << 20, **self.KW
        )
        assert small_gain < 1.1
        assert large_gain > 1.5
