"""Property-based tests (hypothesis) on core invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.stats import summarize
from repro.model import eta_large, gamma_theta, t_bulk, t_pipelined
from repro.mpi import ANY_SOURCE, ANY_TAG, MatchKey, MatchingEngine
from repro.mpi.partitioned import negotiate_message_count
from repro.mpi.matching import PostedRecv, UnexpectedMsg
from repro.net import MELUXINA
from repro.sim import Environment


# ---------------------------------------------------------------------------
# message-count negotiation (§3.2.1)
# ---------------------------------------------------------------------------
@given(
    n_send=st.integers(1, 512),
    n_recv=st.integers(1, 512),
    scale=st.integers(1, 1 << 14),
    aggr=st.integers(0, 1 << 20),
)
def test_negotiation_invariants(n_send, n_recv, scale, aggr):
    total = n_send * n_recv * scale  # divisible by both counts
    n_msgs = negotiate_message_count(n_send, n_recv, total, aggr)
    g = math.gcd(n_send, n_recv)
    # 1. at least one message, never more than the gcd
    assert 1 <= n_msgs <= g
    # 2. the count divides the gcd: messages stay uniform and every
    #    partition of either side maps to exactly one message
    assert g % n_msgs == 0
    assert n_send % n_msgs == 0 and n_recv % n_msgs == 0
    # 3. aggregation never yields messages above the bound unless a
    #    single gcd-message already exceeds it
    if aggr > 0 and total // g <= aggr:
        assert total // n_msgs <= aggr


@given(
    n_send=st.integers(1, 256),
    n_recv=st.integers(1, 256),
    scale=st.integers(1, 1024),
)
def test_negotiation_no_aggregation_is_gcd(n_send, n_recv, scale):
    total = n_send * n_recv * scale
    assert negotiate_message_count(n_send, n_recv, total, 0) == math.gcd(
        n_send, n_recv
    )


@given(
    n_parts=st.integers(1, 256),
    scale=st.integers(1, 1024),
    aggr_a=st.integers(1, 1 << 16),
    aggr_b=st.integers(1, 1 << 16),
)
def test_negotiation_monotone_in_bound(n_parts, scale, aggr_a, aggr_b):
    """A larger aggregation bound never increases the message count."""
    total = n_parts * scale
    lo, hi = sorted((aggr_a, aggr_b))
    assert negotiate_message_count(
        n_parts, n_parts, total, hi
    ) <= negotiate_message_count(n_parts, n_parts, total, lo)


# ---------------------------------------------------------------------------
# analytic model (§2.2)
# ---------------------------------------------------------------------------
@given(
    n=st.integers(1, 64),
    theta=st.integers(1, 64),
    gamma_us=st.floats(0, 1e5, allow_nan=False),
)
def test_eta_bounds(n, theta, gamma_us):
    """1 <= η <= N·θ for any delay rate."""
    eta = eta_large(n, theta, 25e9, gamma_us * 1e-12)
    assert 1.0 - 1e-12 <= eta <= n * theta + 1e-9


@given(
    n=st.integers(1, 32),
    theta=st.integers(1, 32),
    part_kb=st.integers(1, 1 << 14),
    gamma_us=st.floats(0, 1e4, allow_nan=False),
)
def test_pipelined_never_slower_than_bulk(n, theta, part_kb, gamma_us):
    beta = 25e9
    part = part_kb * 1024.0
    tb = t_bulk(n, theta, part, beta)
    tp = t_pipelined(n, theta, part, beta, gamma_us * 1e-12)
    assert tp <= tb + 1e-15
    # and never faster than a single partition transfer
    assert tp >= part / beta - 1e-15


@given(
    mu=st.floats(0, 1e-6, allow_nan=False),
    theta=st.integers(1, 128),
    eps=st.floats(0, 1.0, allow_nan=False),
    delta=st.floats(0, 1.0, allow_nan=False),
)
def test_gamma_theta_nonnegative_and_monotone(mu, theta, eps, delta):
    g1 = gamma_theta(mu, theta, eps, delta)
    g2 = gamma_theta(mu, theta + 1, eps, delta)
    assert g1 >= 0
    assert g2 >= g1


# ---------------------------------------------------------------------------
# protocol ladder
# ---------------------------------------------------------------------------
@given(nbytes=st.integers(0, 1 << 28))
def test_wire_time_monotone(nbytes):
    assert MELUXINA.wire_time(nbytes + 1) >= MELUXINA.wire_time(nbytes)


@given(a=st.integers(1, 1 << 26), b=st.integers(1, 1 << 26))
def test_protocol_ladder_ordered(a, b):
    """A larger payload never selects an 'earlier' protocol."""
    order = {"short": 0, "bcopy": 1, "zcopy": 2}
    lo, hi = sorted((a, b))
    assert (
        order[MELUXINA.protocol_for(lo).value]
        <= order[MELUXINA.protocol_for(hi).value]
    )


# ---------------------------------------------------------------------------
# matching engine
# ---------------------------------------------------------------------------
_key = st.tuples(
    st.integers(0, 3),  # ctx
    st.integers(0, 3),  # src
    st.integers(0, 7),  # tag
)


@given(arrivals=st.lists(_key, max_size=40), recv=_key)
@settings(max_examples=200)
def test_matching_takes_earliest_matching_unexpected(arrivals, recv):
    eng = MatchingEngine()
    for i, (ctx, src, tag) in enumerate(arrivals):
        eng.add_unexpected(
            UnexpectedMsg(key=MatchKey(ctx, src, tag), packet=i)
        )
    ctx, src, tag = recv
    got = eng.post_recv(PostedRecv(key=MatchKey(ctx, src, tag), request="r"))
    matching = [i for i, k in enumerate(arrivals) if k == recv]
    if matching:
        assert got is not None and got.packet == matching[0]
    else:
        assert got is None


@given(recvs=st.lists(_key, max_size=40), arrival=_key)
@settings(max_examples=200)
def test_matching_takes_earliest_matching_posted(recvs, arrival):
    eng = MatchingEngine()
    for i, (ctx, src, tag) in enumerate(recvs):
        eng.post_recv(PostedRecv(key=MatchKey(ctx, src, tag), request=i))
    ctx, src, tag = arrival
    got = eng.match_arrival(MatchKey(ctx, src, tag))
    matching = [i for i, k in enumerate(recvs) if k == arrival]
    if matching:
        assert got is not None and got.request == matching[0]
    else:
        assert got is None


@given(
    n_msgs=st.integers(1, 30),
    wildcard_src=st.booleans(),
    wildcard_tag=st.booleans(),
)
def test_wildcards_preserve_fifo(n_msgs, wildcard_src, wildcard_tag):
    eng = MatchingEngine()
    for i in range(n_msgs):
        eng.add_unexpected(
            UnexpectedMsg(key=MatchKey(0, i % 3, i % 5), packet=i)
        )
    src = ANY_SOURCE if wildcard_src else 0
    tag = ANY_TAG if wildcard_tag else 0
    got = eng.post_recv(PostedRecv(key=MatchKey(0, src, tag), request="r"))
    expect = [
        i
        for i in range(n_msgs)
        if (wildcard_src or i % 3 == 0) and (wildcard_tag or i % 5 == 0)
    ]
    if expect:
        assert got.packet == expect[0]
    else:
        assert got is None


# ---------------------------------------------------------------------------
# statistics
# ---------------------------------------------------------------------------
@given(
    samples=st.lists(
        st.floats(1e-9, 1e3, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=100,
    )
)
def test_summary_bounds(samples):
    s = summarize(samples)
    # Tolerate float summation rounding at the boundaries.
    assert s.minimum * (1 - 1e-12) <= s.mean <= s.maximum * (1 + 1e-12)
    assert s.ci_half >= 0
    assert s.n == len(samples)


# ---------------------------------------------------------------------------
# simulation engine
# ---------------------------------------------------------------------------
@given(delays=st.lists(st.floats(0, 1e3, allow_nan=False), max_size=30))
def test_clock_monotone_through_arbitrary_timeouts(delays):
    env = Environment()
    seen = []

    def proc(env):
        for d in delays:
            yield env.timeout(d)
            seen.append(env.now)

    env.process(proc(env))
    env.run()
    assert seen == sorted(seen)
    if delays:
        assert seen[-1] <= sum(delays) * (1 + 1e-9) + 1e-12
