"""Model-validation tests: the simulator must track the analytic model.

§4.3 of the paper validates Eq. (4) against measurement (2.54 vs 2.67);
these tests do the same across a grid of configurations: the measured
gain must sit within a bracket *below* the theoretical gain (the model
omits latency and contention, so theory is an upper bound at large
sizes).
"""

import pytest

from repro.bench import BenchSpec, run_benchmark
from repro.model import eta_large, gamma_from_us_per_mb, t_bulk
from repro.net import MELUXINA


def measured_gain(n_threads, theta, gamma_us, part_mib=4):
    common = dict(
        total_bytes=n_threads * theta * part_mib * (1 << 20),
        n_threads=n_threads,
        theta=theta,
        iterations=4,
        gamma_us_per_mb=gamma_us,
    )
    bulk = run_benchmark(BenchSpec(approach="pt2pt_single", **common)).mean
    pipe = run_benchmark(BenchSpec(approach="pt2pt_part", **common)).mean
    return bulk / pipe


@pytest.mark.parametrize(
    "n_threads,theta,gamma_us",
    [
        (2, 1, 50.0),
        (4, 1, 100.0),
        (8, 1, 100.0),
        (4, 2, 150.0),
        (8, 1, 300.0),
    ],
)
def test_measured_gain_brackets_theory(n_threads, theta, gamma_us):
    theory = eta_large(
        n_threads, theta, MELUXINA.bandwidth, gamma_from_us_per_mb(gamma_us)
    )
    measured = measured_gain(n_threads, theta, gamma_us)
    assert measured <= theory * 1.02, "measured gain exceeds the model bound"
    assert measured >= theory * 0.80, "measured gain far below the model"


def test_gain_saturates_at_partition_count():
    """With overwhelming delay the gain caps at N·θ (the max(...,1)
    clamp of Eq. 4): only one transfer remains exposed."""
    measured = measured_gain(4, 1, 5000.0)
    assert measured == pytest.approx(4.0, rel=0.15)


def test_bulk_time_tracks_eq2():
    """The measured bulk time approaches N_part·S_part/β at large sizes."""
    n, part = 4, 4 << 20
    spec = BenchSpec(
        approach="pt2pt_single",
        total_bytes=n * part,
        n_threads=n,
        iterations=3,
    )
    measured = run_benchmark(spec).mean
    model = t_bulk(n, 1, part, MELUXINA.bandwidth)
    assert measured == pytest.approx(model, rel=0.05)


def test_gain_grows_with_gamma_in_simulation():
    gains = [measured_gain(4, 1, g) for g in (25.0, 100.0, 400.0)]
    assert gains == sorted(gains)
