"""End-to-end payload integrity across every approach and configuration."""

import pytest

from repro.bench import APPROACHES, BenchSpec, run_benchmark
from repro.mpi import Cvars, VCI_METHOD_TAG_RR, VCI_METHOD_THREAD


@pytest.mark.parametrize("name", sorted(APPROACHES))
@pytest.mark.parametrize("nbytes", [256, 16384, 1 << 18])
def test_payload_integrity_sizes(name, nbytes):
    result = run_benchmark(
        BenchSpec(
            approach=name,
            total_bytes=nbytes,
            n_threads=4,
            theta=1,
            iterations=2,
            verify=True,
        )
    )
    assert result.verified, f"{name} corrupted a {nbytes}-byte transfer"


@pytest.mark.parametrize("name", sorted(APPROACHES))
def test_payload_integrity_theta(name):
    result = run_benchmark(
        BenchSpec(
            approach=name,
            total_bytes=8192,
            n_threads=2,
            theta=4,
            iterations=2,
            verify=True,
        )
    )
    assert result.verified


@pytest.mark.parametrize(
    "cvars",
    [
        Cvars(num_vcis=4, vci_method=VCI_METHOD_TAG_RR),
        Cvars(num_vcis=4, vci_method=VCI_METHOD_THREAD),
        Cvars(part_aggr_size=512),
        Cvars(part_aggr_size=1 << 20),
        Cvars(num_vcis=8, vci_method=VCI_METHOD_TAG_RR, part_aggr_size=1024),
    ],
    ids=["tag_rr", "thread", "aggr_small", "aggr_huge", "vci+aggr"],
)
def test_partitioned_integrity_under_cvars(cvars):
    result = run_benchmark(
        BenchSpec(
            approach="pt2pt_part",
            total_bytes=16384,
            n_threads=4,
            theta=4,
            iterations=3,
            cvars=cvars,
            verify=True,
        )
    )
    assert result.verified


def test_integrity_with_delay_model():
    """The early-bird pipeline must not reorder or corrupt data."""
    for name in ("pt2pt_part", "pt2pt_many", "rma_single_passive"):
        result = run_benchmark(
            BenchSpec(
                approach=name,
                total_bytes=1 << 18,
                n_threads=4,
                iterations=2,
                gamma_us_per_mb=100.0,
                verify=True,
            )
        )
        assert result.verified, name


def test_integrity_many_threads():
    for name in ("pt2pt_part", "pt2pt_many"):
        result = run_benchmark(
            BenchSpec(
                approach=name,
                total_bytes=1 << 15,
                n_threads=32,
                iterations=2,
                verify=True,
            )
        )
        assert result.verified, name
