"""Smoke tests: every example script must run green (they assert
their own invariants internally)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, timeout=240):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "data intact:        True" in out


def test_fft_pipeline():
    out = run_example("fft_pipeline.py")
    assert "1.0228" in out  # paper's theta=1 eta
    assert "eta measured" in out


def test_streaming_consumer():
    out = run_example("streaming_consumer.py")
    assert "receive-side overlap gain" in out


def test_aggregation_tuning():
    out = run_example("aggregation_tuning.py")
    assert "best" in out and "no aggr" in out


@pytest.mark.slow
def test_halo_exchange():
    out = run_example("halo_exchange.py")
    assert "Eq. (4) predicted comm gain" in out


@pytest.mark.slow
def test_vci_scaling():
    out = run_example("vci_scaling.py")
    assert "pt2pt_part" in out and "pt2pt_many" in out


def test_cli_tables():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "--only", "tables"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode == 0
    assert "MPI_Pready" in proc.stdout


def test_cli_single_figure():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "--only", "fig8", "--iters", "3"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0
    assert "early-bird" in proc.stdout
