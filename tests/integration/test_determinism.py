"""Whole-system determinism: identical seeds produce identical runs."""

import numpy as np
import pytest

from repro.bench import BenchSpec, run_benchmark
from repro.mpi import Cvars, MPIWorld, VCI_METHOD_TAG_RR


def test_benchmark_bitwise_reproducible():
    spec = BenchSpec(
        approach="pt2pt_part",
        total_bytes=1 << 16,
        n_threads=8,
        theta=2,
        iterations=5,
        cvars=Cvars(num_vcis=4, vci_method=VCI_METHOD_TAG_RR,
                    part_aggr_size=4096),
        gamma_us_per_mb=50.0,
        seed=11,
    )
    a = run_benchmark(spec)
    b = run_benchmark(spec)
    assert a.times == b.times
    assert a.mean == b.mean


def test_all_approaches_reproducible():
    from repro.bench import APPROACHES

    for name in APPROACHES:
        spec = BenchSpec(approach=name, total_bytes=4096, n_threads=2,
                         iterations=3, seed=5)
        assert run_benchmark(spec).times == run_benchmark(spec).times, name


def test_trace_is_reproducible():
    def run_world():
        world = MPIWorld(n_ranks=2, trace=True, seed=9)

        def sender(world):
            comm = world.comm_world(0)
            for tag in range(5):
                yield from comm.send(dest=1, tag=tag, nbytes=512 << tag)

        def receiver(world):
            comm = world.comm_world(1)
            for tag in range(5):
                yield from comm.recv(source=0, tag=tag, nbytes=512 << tag)

        world.launch(0, sender(world))
        world.launch(1, receiver(world))
        world.run()
        return [(r.time, r.category, r.event) for r in world.tracer]

    assert run_world() == run_world()


def test_event_count_reproducible():
    def packets():
        world = MPIWorld(n_ranks=2, seed=1)

        def sender(world):
            comm = world.comm_world(0)
            req = yield from comm.psend_init(dest=1, tag=1, partitions=8,
                                             nbytes=1 << 16)
            yield from req.start()
            for p in range(8):
                yield from req.pready(p)
            yield from req.wait()

        def receiver(world):
            comm = world.comm_world(1)
            req = yield from comm.precv_init(source=0, tag=1, partitions=8,
                                             nbytes=1 << 16)
            yield from req.start()
            yield from req.wait()

        world.launch(0, sender(world))
        world.launch(1, receiver(world))
        world.run()
        return world.fabric.packets_sent, world.fabric.bytes_sent

    assert packets() == packets()


def test_final_clock_reproducible_under_noise():
    """Even with Gaussian noise the seeded streams make time exact."""
    def final_time(seed):
        spec = BenchSpec(
            approach="pt2pt_many",
            total_bytes=1 << 18,
            n_threads=4,
            iterations=4,
            gaussian_mu_us_per_mb=100.0,
            gaussian_epsilon=0.5,
            seed=seed,
        )
        return run_benchmark(spec).mean

    assert final_time(2) == final_time(2)
    assert final_time(2) != final_time(3)
