"""Unit tests for NIC/VCI posting, wire serialization, and delivery."""

import numpy as np
import pytest

from repro.net import MELUXINA, Fabric, Nic, Packet, PacketKind
from repro.sim import Environment, Tracer


def make_pair(n_vcis=1, params=MELUXINA):
    env = Environment()
    tracer = Tracer(env)
    fabric = Fabric(env, params, tracer)
    nics = [Nic(env, r, params, tracer, n_vcis=n_vcis) for r in (0, 1)]
    for nic in nics:
        fabric.register(nic)
    return env, fabric, nics


def test_packet_validation():
    with pytest.raises(ValueError):
        Packet(kind="bogus", src=0, dst=1)
    with pytest.raises(ValueError):
        Packet(kind=PacketKind.EAGER, src=0, dst=1, nbytes=-1)
    data = np.zeros(4, dtype=np.uint8)
    with pytest.raises(ValueError):
        Packet(kind=PacketKind.EAGER, src=0, dst=1, nbytes=8, payload=data)


def test_single_packet_arrival_time():
    env, fabric, (n0, n1) = make_pair()
    got = []
    n1.set_handler(lambda pkt: got.append((pkt, env.now)))
    p = MELUXINA

    def sender(env):
        pkt = Packet(kind=PacketKind.EAGER, src=0, dst=1, nbytes=8)
        yield from n0.post(0, pkt, base_cost=p.post_overhead)

    env.process(sender(env))
    env.run()
    assert len(got) == 1
    pkt, t = got[0]
    expected = (
        p.post_overhead + p.wire_time(8) + p.latency + p.recv_overhead
    )
    assert t == pytest.approx(expected, rel=1e-9)


def test_delivery_carries_payload():
    env, fabric, (n0, n1) = make_pair()
    got = []
    n1.set_handler(lambda pkt: got.append(pkt))
    data = np.arange(16, dtype=np.uint8)

    def sender(env):
        pkt = Packet(
            kind=PacketKind.EAGER, src=0, dst=1, nbytes=16, payload=data.copy()
        )
        yield from n0.post(0, pkt, base_cost=1e-7)

    env.process(sender(env))
    env.run()
    assert (got[0].payload == data).all()


def test_wire_serializes_concurrent_messages():
    """Two large messages posted simultaneously share the wire serially."""
    params = MELUXINA
    env, fabric, (n0, n1) = make_pair(n_vcis=2, params=params)
    arrivals = []
    n1.set_handler(lambda pkt: arrivals.append(env.now))
    nbytes = 10**6

    def sender(env, vci):
        pkt = Packet(
            kind=PacketKind.RDMA_DATA, src=0, dst=1, nbytes=nbytes, dst_vci=vci
        )
        yield from n0.post(vci, pkt, base_cost=1e-7)

    env.process(sender(env, 0))
    env.process(sender(env, 1))
    env.run()
    assert len(arrivals) == 2
    gap = arrivals[1] - arrivals[0]
    # Second message waits a full wire occupancy behind the first.
    assert gap == pytest.approx(params.wire_time(nbytes), rel=1e-6)


def test_vci_lock_serializes_posts_with_contention_penalty():
    params = MELUXINA
    env, fabric, (n0, n1) = make_pair(n_vcis=1, params=params)
    n1.set_handler(lambda pkt: None)
    done = []

    def sender(env):
        pkt = Packet(kind=PacketKind.EAGER, src=0, dst=1, nbytes=8)
        yield from n0.post(0, pkt, base_cost=params.post_overhead)
        done.append(env.now)

    for _ in range(4):
        env.process(sender(env))
    env.run()
    # All four posts serialized; later posts pay contention inflation, so
    # the total exceeds 4 uncontended posts.
    assert done[-1] > 4 * params.post_overhead


def test_multiple_vcis_remove_lock_contention():
    params = MELUXINA
    env1, _, (a0, a1) = make_pair(n_vcis=1, params=params)
    a1.set_handler(lambda pkt: None)
    done_single = []

    def sender1(env, nic):
        pkt = Packet(kind=PacketKind.EAGER, src=0, dst=1, nbytes=8)
        yield from nic.post(0, pkt, base_cost=params.post_overhead)
        done_single.append(env.now)

    for _ in range(8):
        env1.process(sender1(env1, a0))
    env1.run()

    env2, _, (b0, b1) = make_pair(n_vcis=8, params=params)
    b1.set_handler(lambda pkt: None)
    done_multi = []

    def sender2(env, nic, vci):
        pkt = Packet(kind=PacketKind.EAGER, src=0, dst=1, nbytes=8, dst_vci=vci)
        yield from nic.post(vci, pkt, base_cost=params.post_overhead)
        done_multi.append(env.now)

    for i in range(8):
        env2.process(sender2(env2, b0, i))
    env2.run()
    # Posting completes much faster when every sender has its own VCI.
    assert max(done_multi) < max(done_single) / 3


def test_self_send_bypasses_wire():
    env = Environment()
    tracer = Tracer(env)
    fabric = Fabric(env, MELUXINA, tracer)
    nic = Nic(env, 0, MELUXINA, tracer)
    fabric.register(nic)
    got = []
    nic.set_handler(lambda pkt: got.append(env.now))

    def sender(env):
        pkt = Packet(kind=PacketKind.CTRL, src=0, dst=0)
        yield from nic.post(0, pkt, base_cost=1e-8)

    env.process(sender(env))
    env.run()
    assert len(got) == 1
    assert got[0] < MELUXINA.latency  # loopback is faster than the wire


def test_unregistered_destination_raises():
    env = Environment()
    tracer = Tracer(env)
    fabric = Fabric(env, MELUXINA, tracer)
    nic = Nic(env, 0, MELUXINA, tracer)
    fabric.register(nic)
    nic.set_handler(lambda pkt: None)

    def sender(env):
        pkt = Packet(kind=PacketKind.CTRL, src=0, dst=9)
        yield from nic.post(0, pkt, base_cost=1e-8)

    env.process(sender(env))
    with pytest.raises(ValueError, match="unregistered"):
        env.run()


def test_duplicate_rank_registration_rejected():
    env = Environment()
    tracer = Tracer(env)
    fabric = Fabric(env, MELUXINA, tracer)
    fabric.register(Nic(env, 0, MELUXINA, tracer))
    with pytest.raises(ValueError):
        fabric.register(Nic(env, 0, MELUXINA, tracer))


def test_vci_wraps_modulo():
    env = Environment()
    tracer = Tracer(env)
    nic = Nic(env, 0, MELUXINA, tracer, n_vcis=4)
    assert nic.vci(5) is nic.vcis[1]
    assert nic.vci(4) is nic.vcis[0]


def test_invalid_vci_count():
    env = Environment()
    with pytest.raises(ValueError):
        Nic(env, 0, MELUXINA, Tracer(env), n_vcis=0)


def test_fabric_counters():
    env, fabric, (n0, n1) = make_pair()
    n1.set_handler(lambda pkt: None)

    def sender(env):
        pkt = Packet(kind=PacketKind.EAGER, src=0, dst=1, nbytes=100)
        yield from n0.post(0, pkt, base_cost=1e-8)

    env.process(sender(env))
    env.run()
    assert fabric.packets_sent == 1
    assert fabric.bytes_sent == 100


def test_rx_cost_orders_protocols():
    """bcopy receive (with unpack copy) costs more than short receive."""
    env = Environment()
    tracer = Tracer(env)
    nic = Nic(env, 0, MELUXINA, tracer)
    vci = nic.vcis[0]
    short_cost = vci._rx_cost(Packet(kind=PacketKind.EAGER, src=0, dst=0, nbytes=512))
    bcopy_cost = vci._rx_cost(Packet(kind=PacketKind.EAGER, src=0, dst=0, nbytes=4096))
    ctrl_cost = vci._rx_cost(Packet(kind=PacketKind.CTS, src=0, dst=0))
    assert bcopy_cost > short_cost > ctrl_cost
