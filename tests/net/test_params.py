"""Unit tests for the system parameter model."""

import pytest

from repro.net import MELUXINA, Protocol, SystemParams


def test_meluxina_headline_numbers():
    assert MELUXINA.bandwidth == 25e9
    assert MELUXINA.latency == pytest.approx(1.22e-6)


def test_protocol_ladder_thresholds():
    p = MELUXINA
    assert p.protocol_for(1) is Protocol.SHORT
    assert p.protocol_for(1024) is Protocol.SHORT
    assert p.protocol_for(1025) is Protocol.BCOPY
    assert p.protocol_for(2048) is Protocol.BCOPY
    assert p.protocol_for(8192) is Protocol.BCOPY
    assert p.protocol_for(8193) is Protocol.ZCOPY
    assert p.protocol_for(16384) is Protocol.ZCOPY
    assert p.protocol_for(1 << 24) is Protocol.ZCOPY


def test_paper_protocol_jumps_land_in_reported_windows():
    """The paper observes short->bcopy between 1024 and 2048 B and
    bcopy->zcopy between 8192 and 16384 B (Fig. 4)."""
    p = MELUXINA
    assert p.protocol_for(1024) != p.protocol_for(2048)
    assert p.protocol_for(8192) != p.protocol_for(16384)


def test_wire_time_scales_with_bytes():
    p = MELUXINA
    small = p.wire_time(0)
    big = p.wire_time(10**6)
    assert big > small
    assert big - small == pytest.approx((10**6) / p.bandwidth)


def test_wire_time_includes_gap_and_header():
    p = MELUXINA
    assert p.wire_time(0) == pytest.approx(p.wire_gap + p.header_bytes / p.bandwidth)


def test_copy_time():
    p = MELUXINA
    assert p.copy_time(p.copy_bandwidth) == pytest.approx(1.0)
    assert p.copy_time(0) == 0.0


def test_barrier_time_log_growth():
    p = MELUXINA
    assert p.barrier_time(1) == 0.0
    assert p.barrier_time(2) == pytest.approx(p.thread_barrier_base)
    assert p.barrier_time(32) == pytest.approx(5 * p.thread_barrier_base)
    assert p.barrier_time(33) == pytest.approx(6 * p.thread_barrier_base)


def test_atomic_time_contention():
    p = MELUXINA
    assert p.atomic_time(1) == pytest.approx(p.atomic_overhead)
    assert p.atomic_time(4) == pytest.approx(
        p.atomic_overhead + 3 * p.atomic_bounce_coeff
    )


def test_with_updates_returns_new_instance():
    p = MELUXINA.with_updates(bandwidth=1e9)
    assert p.bandwidth == 1e9
    assert MELUXINA.bandwidth == 25e9


def test_params_validation():
    with pytest.raises(ValueError):
        SystemParams(bandwidth=0)
    with pytest.raises(ValueError):
        SystemParams(latency=-1)
    with pytest.raises(ValueError):
        SystemParams(short_max=4096, eager_max=1024)


def test_describe_contains_all_fields():
    d = MELUXINA.describe()
    assert d["bandwidth"] == 25e9
    assert "vci_contention_coeff" in d


def test_min_message_time_positive():
    assert MELUXINA.min_message_time() > 1e-6  # latency floor
