"""Wire statistics, per-protocol timing predictions, and NIC counters."""

import pytest

from repro.bench import BenchSpec, run_benchmark
from repro.model import predict_message_time
from repro.mpi import MPIWorld
from repro.net import MELUXINA


class TestWireStats:
    def test_wire_queueing_recorded_under_load(self):
        """Concurrent senders on distinct VCIs collide on the shared wire."""
        from repro.mpi import Cvars

        world = MPIWorld(n_ranks=2, cvars=Cvars(num_vcis=4))

        def sender(world, tid):
            comm = world.comm_world(0)
            mine = yield from comm.dup(key=tid)
            yield from mine.send(dest=1, tag=tid, nbytes=8192)

        def receiver(world, tid):
            comm = world.comm_world(1)
            mine = yield from comm.dup(key=tid)
            yield from mine.recv(source=0, tag=tid, nbytes=8192)

        for tid in range(4):
            world.launch(0, sender(world, tid))
            world.launch(1, receiver(world, tid))
        world.run()
        stats = world.fabric.wire_stats(0, 1)
        assert stats.acquisitions == 4
        # Simultaneous injections queue behind each other on the wire.
        assert stats.total_wait > 0

    def test_vci_counters(self):
        world = MPIWorld(n_ranks=2)

        def sender(world):
            comm = world.comm_world(0)
            yield from comm.send(dest=1, tag=0, nbytes=64)

        def receiver(world):
            yield from world.comm_world(1).recv(source=0, tag=0, nbytes=64)

        world.launch(0, sender(world))
        world.launch(1, receiver(world))
        world.run()
        assert world.rank(0).nic.vcis[0].tx_count == 1
        assert world.rank(1).nic.vcis[0].rx_count == 1


class TestPredictionAgainstSimulator:
    """`predict_message_time` must track the simulator per protocol."""

    @pytest.mark.parametrize("nbytes", [64, 512, 1024])
    def test_short_protocol(self, nbytes):
        self._check(nbytes)

    @pytest.mark.parametrize("nbytes", [2048, 4096, 8192])
    def test_bcopy_protocol(self, nbytes):
        self._check(nbytes)

    @pytest.mark.parametrize("nbytes", [16384, 1 << 17, 1 << 21])
    def test_zcopy_protocol(self, nbytes):
        self._check(nbytes, rel=0.10)

    @staticmethod
    def _check(nbytes, rel=0.05):
        predicted = (
            predict_message_time(MELUXINA, nbytes).total
            + MELUXINA.recv_post_overhead
        )
        measured = run_benchmark(
            BenchSpec(approach="pt2pt_single", total_bytes=nbytes,
                      iterations=3)
        ).mean
        assert measured == pytest.approx(predicted, rel=rel), (
            f"{nbytes} B: predicted {predicted * 1e6:.3f} us, "
            f"measured {measured * 1e6:.3f} us"
        )
