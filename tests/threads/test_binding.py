"""Tests for thread->core binding policies."""

import pytest

from repro.threads import BindingPolicy, close_binding, spread_binding


def test_close_binding_consecutive_cores():
    b = close_binding(4)
    assert [b.core_of(t) for t in range(4)] == [0, 1, 2, 3]
    assert b.name == "close"


def test_close_binding_with_offset():
    b = close_binding(4, first_core=8)
    assert [b.core_of(t) for t in range(4)] == [8, 9, 10, 11]


def test_close_binding_not_oversubscribed_within_node():
    b = close_binding(32, cores_per_node=64)
    assert not b.oversubscribed


def test_close_binding_wraps_when_oversubscribed():
    b = close_binding(96, cores_per_node=64)
    assert b.oversubscribed
    assert b.core_of(64) == 0


def test_spread_binding_spacing():
    b = spread_binding(4, cores_per_node=64)
    cores = [b.core_of(t) for t in range(4)]
    assert cores == [0, 16, 32, 48]


def test_placement_listing():
    b = close_binding(2)
    assert b.placement(2) == [(0, 0), (1, 1)]


def test_validation():
    with pytest.raises(ValueError):
        close_binding(0)
    with pytest.raises(ValueError):
        spread_binding(0)
    with pytest.raises(ValueError):
        BindingPolicy([])
