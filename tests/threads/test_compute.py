"""Tests for the Appendix-A compute-delay models."""

import numpy as np
import pytest

from repro.threads import FixedDelayModel, GaussianComputeModel, NoDelayModel


class TestNoDelay:
    def test_always_zero(self):
        m = NoDelayModel()
        for p in range(8):
            assert m.compute_time(0, p, 1 << 20, 4, 2) == 0.0


class TestFixedDelay:
    def test_only_last_partition_delayed(self):
        m = FixedDelayModel(gamma=1e-10)  # 100 us/MB
        n, theta = 4, 1
        times = [m.compute_time(t, p, 1 << 20, n, theta)
                 for t, p in zip(range(4), range(4))]
        assert times[:3] == [0.0, 0.0, 0.0]
        assert times[3] == pytest.approx(1e-10 * (1 << 20))

    def test_delay_scales_with_partition_size(self):
        m = FixedDelayModel(gamma=1e-10)
        small = m.compute_time(0, 3, 1024, 4, 1)
        big = m.compute_time(0, 3, 1 << 20, 4, 1)
        assert big == pytest.approx(small * (1 << 20) / 1024)

    def test_from_us_per_mb_conversion(self):
        m = FixedDelayModel.from_us_per_mb(100.0)
        assert m.gamma == pytest.approx(1e-10)
        # 100 us/MB on a 1 MB partition = 100 us.
        assert m.compute_time(0, 3, 10**6, 4, 1) == pytest.approx(100e-6)

    def test_theta_moves_last_partition(self):
        m = FixedDelayModel(gamma=1e-10)
        # 2 threads x 4 theta -> last partition index 7.
        assert m.compute_time(1, 7, 1024, 2, 4) > 0
        assert m.compute_time(1, 6, 1024, 2, 4) == 0.0

    def test_negative_gamma_rejected(self):
        with pytest.raises(ValueError):
            FixedDelayModel(gamma=-1.0)


class TestGaussian:
    def test_mean_time_matches_mu(self):
        rng = np.random.default_rng(1)
        m = GaussianComputeModel(mu=1e-9, epsilon=0.04, delta=0.0, rng=rng)
        times = [m.compute_time(0, 0, 10**6, 8, 1) for _ in range(4000)]
        assert np.mean(times) == pytest.approx(1e-9 * 10**6, rel=0.01)

    def test_sigma_definition(self):
        m = GaussianComputeModel(mu=1.0, epsilon=0.04, delta=0.5)
        assert m.sigma == pytest.approx(0.27)

    def test_zero_noise_is_deterministic(self):
        m = GaussianComputeModel(mu=2e-9, epsilon=0.0, delta=0.0)
        assert m.compute_time(0, 0, 1000, 1, 1) == pytest.approx(2e-6)

    def test_never_negative(self):
        rng = np.random.default_rng(2)
        m = GaussianComputeModel(mu=1e-9, epsilon=2.0, delta=2.0, rng=rng)
        times = [m.compute_time(0, 0, 10**6, 1, 1) for _ in range(2000)]
        assert min(times) >= 0.0

    def test_reproducible_with_seeded_stream(self):
        a = GaussianComputeModel(1e-9, 0.1, 0.0, np.random.default_rng(7))
        b = GaussianComputeModel(1e-9, 0.1, 0.0, np.random.default_rng(7))
        ta = [a.compute_time(0, p, 1000, 1, 1) for p in range(10)]
        tb = [b.compute_time(0, p, 1000, 1, 1) for p in range(10)]
        assert ta == tb

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianComputeModel(mu=-1.0)
        with pytest.raises(ValueError):
            GaussianComputeModel(mu=1.0, epsilon=-0.1)
