"""Tests for simulated thread teams."""

import pytest

from repro.sim import Environment
from repro.threads import ThreadTeam


def test_fork_join_returns_results():
    env = Environment()
    team = ThreadTeam(env, 4)

    def body(tid):
        yield env.timeout(tid * 1.0)
        return tid * 10

    def master(env):
        results = yield from team.run_parallel(body)
        return results

    p = env.process(master(env))
    env.run()
    assert p.value == [0, 10, 20, 30]


def test_barrier_synchronizes_team():
    env = Environment()
    team = ThreadTeam(env, 3)
    exits = []

    def body(tid):
        yield env.timeout(tid * 5.0)
        yield from team.barrier()
        exits.append(env.now)

    team.fork(body)
    env.run()
    assert exits == [10.0, 10.0, 10.0]


def test_barrier_cost_is_charged():
    env = Environment()
    team = ThreadTeam(env, 2, barrier_cost=1.5)

    def body(tid):
        yield from team.barrier()
        return env.now

    procs = team.fork(body)
    env.run()
    assert all(p.value == 1.5 for p in procs)


def test_repeated_barriers_across_iterations():
    env = Environment()
    team = ThreadTeam(env, 2)
    log = []

    def body(tid):
        for it in range(3):
            yield from team.barrier()
            if tid == 0:
                log.append(it)
            yield from team.barrier()

    team.fork(body)
    env.run()
    assert log == [0, 1, 2]
    assert team.barrier_count == 12  # 2 threads x 3 iters x 2 barriers


def test_single_thread_team():
    env = Environment()
    team = ThreadTeam(env, 1)

    def body(tid):
        yield from team.barrier()
        return "done"

    procs = team.fork(body)
    env.run()
    assert procs[0].value == "done"


def test_invalid_team_size():
    with pytest.raises(ValueError):
        ThreadTeam(Environment(), 0)


def test_join_waits_for_slowest():
    env = Environment()
    team = ThreadTeam(env, 3)

    def body(tid):
        yield env.timeout(tid * 2.0)
        return tid

    def master(env):
        procs = team.fork(body)
        yield from team.join(procs)
        return env.now

    p = env.process(master(env))
    env.run()
    assert p.value == 4.0
