"""Campaign store: grid addressing, segments, resume, compaction,
migration, provenance — the schema-v2 streaming pipeline."""

import json

import pytest

from repro.runner import (
    CampaignStore,
    ResultStore,
    ScenarioGrid,
    parse_grid_spec,
    run_campaign,
    run_scenarios,
)
from repro.runner.campaign import (
    CAMPAIGN_SCHEMA,
    SEGMENT_SCHEMA,
)
from repro.runner.scenario import execute


def analytic_spec():
    return {
        "kind": "bench",
        "backend": "analytic",
        "base": {"n_threads": 2, "theta": 2, "iterations": 3},
        "axes": {
            "approach": ["pt2pt_single", "pt2pt_part", "rma_many_active"],
            "total_bytes": {"pow2": [10, 17]},
            "gamma_us_per_mb": [0.0, 200.0],
        },
    }


class TestGridAddressing:
    def test_to_dict_round_trip_preserves_hash(self):
        grid = parse_grid_spec(analytic_spec())
        clone = ScenarioGrid.from_dict(grid.to_dict())
        assert clone.content_hash() == grid.content_hash()
        assert len(clone) == len(grid)

    def test_assignment_at_matches_expand_order(self):
        grid = parse_grid_spec(analytic_spec())
        for index, (assignment, scenario) in enumerate(grid.points()):
            assert grid.assignment_at(index) == assignment
            assert grid.scenario_at(index) == scenario

    def test_axis_columns_decode(self):
        import numpy as np

        grid = parse_grid_spec(analytic_spec())
        indices = np.array([0, 5, 17, len(grid) - 1])
        columns = grid.axis_columns(indices)
        for j, i in enumerate(indices):
            assignment = grid.assignment_at(int(i))
            for name, values in columns.items():
                assert values[j] == assignment[name]

    def test_out_of_range_rejected(self):
        grid = parse_grid_spec(analytic_spec())
        with pytest.raises(IndexError):
            grid.assignment_at(len(grid))

    def test_shorthand_axes(self):
        grid = parse_grid_spec(
            {
                "kind": "bench",
                "backend": "analytic",
                "base": {"iterations": 1},
                "axes": {
                    "approach": {"values": ["pt2pt_single"]},
                    "total_bytes": {"pow2": [10, 12]},
                    "n_threads": {"range": [1, 8, 2]},
                },
            }
        )
        assert grid.axes["total_bytes"] == [1024, 2048, 4096]
        assert grid.axes["n_threads"] == [1, 3, 5, 7]

    def test_non_scalar_axis_rejected(self):
        grid = ScenarioGrid(
            "bench",
            base={"iterations": 1},
            axes={"approach": ["pt2pt_single"], "total_bytes": [(1,)]},
        )
        with pytest.raises(TypeError):
            grid.to_dict()


class TestCampaignLifecycle:
    def test_run_resume_and_equivalence(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        first = run_campaign(store, chunk_points=7, limit=10)
        assert first["executed"] == 10
        assert store.missing_ranges() == [(10, len(grid))]
        second = run_campaign(store, chunk_points=7)
        assert second["executed"] == len(grid) - 10
        assert store.n_completed == len(grid)
        rows = dict(store.iter_rows())
        assert len(rows) == len(grid)
        # Campaign rows are bitwise-identical to per-point execution.
        for index in (0, 9, 10, len(grid) - 1):
            native = execute(store.scenario_at(index))
            assert rows[index]["times"] == [float(t) for t in native.times]

    def test_resume_from_segments_without_index(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        run_campaign(store, chunk_points=11)
        (tmp_path / "camp" / "index.json").unlink()
        reopened = CampaignStore.open(tmp_path / "camp")
        assert reopened.n_completed == len(grid)
        assert run_campaign(reopened)["executed"] == 0

    def test_create_validates_grid_before_io(self, tmp_path):
        bad = ScenarioGrid(
            "bench",
            base={"iterations": 1},
            axes={"approach": ["pt2pt_single", "no_such_approach"],
                  "total_bytes": [1024]},
            backend="analytic",
        )
        with pytest.raises(KeyError):
            CampaignStore.create(tmp_path / "camp", bad)
        assert not (tmp_path / "camp").exists()
        good = ScenarioGrid(
            "bench",
            base={"iterations": 1},
            axes={"approach": ["pt2pt_single"], "total_bytes": [1024]},
            backend="no_such_backend",
        )
        with pytest.raises(KeyError):
            CampaignStore.create(tmp_path / "camp2", good)

    def test_create_refuses_foreign_grid(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        CampaignStore.create(tmp_path / "camp", grid)
        other = parse_grid_spec(
            {**analytic_spec(), "base": {"n_threads": 4, "iterations": 3}}
        )
        with pytest.raises(ValueError):
            CampaignStore.create(tmp_path / "camp", other)

    def test_compact_preserves_rows(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        run_campaign(store, chunk_points=5)
        before = dict(store.iter_rows())
        n_before = store.stats()["segments"]
        summary = store.compact()
        assert summary["segments_before"] == n_before
        assert summary["segments_after"] < n_before
        assert dict(store.iter_rows()) == before
        assert store.n_completed == len(grid)

    def test_export_and_query(self, tmp_path):
        import io

        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        run_campaign(store)
        buffer = io.StringIO()
        count = store.export_jsonl(buffer)
        lines = buffer.getvalue().splitlines()
        assert count == len(grid) == len(lines)
        record = json.loads(lines[0])
        assert set(record) == {"index", "assignment", "result"}
        matches = list(store.query(approach="pt2pt_part"))
        assert len(matches) == len(grid) // 3
        assert all(a["approach"] == "pt2pt_part" for _, a, _ in matches)
        # base-field filters work too
        assert len(list(store.query(n_threads=2))) == len(grid)
        assert list(store.query(n_threads=64)) == []

    def test_iterations_axis_reconstructs_times_length(self, tmp_path):
        spec = {
            "kind": "bench",
            "backend": "analytic",
            "base": {"n_threads": 1},
            "axes": {
                "approach": ["pt2pt_single"],
                "total_bytes": [1024, 4096],
                "iterations": [1, 4],
            },
        }
        grid = parse_grid_spec(spec)
        store = CampaignStore.create(tmp_path / "camp", grid)
        run_campaign(store)
        for index, result in store.iter_rows():
            assert len(result["times"]) == grid.assignment_at(index)[
                "iterations"
            ]


class TestProvenance:
    def test_header_and_segments_tagged(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        run_campaign(store, chunk_points=50)
        header = json.loads((tmp_path / "camp" / "campaign.json").read_text())
        assert header["schema"] == CAMPAIGN_SCHEMA
        assert header["producer"]["backend"] == "analytic"
        assert header["grid_hash"] == grid.content_hash()
        segments = sorted((tmp_path / "camp" / "segments").glob("*.jsonl"))
        assert segments
        for path in segments:
            seg_header = json.loads(path.read_text().splitlines()[0])
            assert seg_header["schema"] == SEGMENT_SCHEMA
            assert seg_header["backend"] == "analytic"
            assert seg_header["campaign"] == grid.content_hash()

    def test_compact_writes_replacements_before_deleting(self, tmp_path):
        """A crash mid-compact must never lose completed results: the
        replacement segments land on disk before any old file goes."""
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        run_campaign(store, chunk_points=5)
        original = object.__getattribute__(store, "_write_index")

        seen = {}

        def spy(segments, loose, ignored=()):
            # At index-switch time every new segment file must exist.
            seen["files_present"] = all(
                (store.root / e["file"]).is_file() for e in segments
            )
            return original(segments, loose, ignored)

        store._write_index = spy
        store.compact()
        assert seen["files_present"]
        assert store.n_completed == len(grid)

    def test_index_converges_with_foreign_file_present(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        run_campaign(store, chunk_points=20)
        stray = tmp_path / "camp" / "segments" / "seg-zzz.jsonl"
        stray.write_text("not a segment\n")
        reopened = CampaignStore.open(tmp_path / "camp")
        assert reopened.n_completed == len(grid)
        # One rebuild recorded the stray as ignored; subsequent reads
        # must be served by the fresh index, not a rescan.
        index_path = tmp_path / "camp" / "index.json"
        payload = json.loads(index_path.read_text())
        assert payload["ignored"] == ["segments/seg-zzz.jsonl"]
        mtime = index_path.stat().st_mtime_ns
        assert reopened.n_completed == len(grid)
        list(reopened.iter_rows())
        assert index_path.stat().st_mtime_ns == mtime

    def test_export_with_where_filter(self, tmp_path):
        import io

        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        run_campaign(store)
        buffer = io.StringIO()
        count = store.export_jsonl(
            buffer, where={"approach": "pt2pt_part"}
        )
        assert count == len(grid) // 3
        for line in buffer.getvalue().splitlines():
            assert json.loads(line)["assignment"]["approach"] == "pt2pt_part"

    def test_foreign_segment_ignored(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        run_campaign(store, limit=5, chunk_points=5)
        alien = tmp_path / "camp" / "segments" / "seg-999999.jsonl"
        alien.write_text(
            json.dumps({"schema": SEGMENT_SCHEMA, "campaign": "deadbeef",
                        "encoding": "bench-mean", "ranges": [[5, 10]],
                        "count": 0, "backend": "analytic",
                        "kind": "bench"}) + "\n"
        )
        reopened = CampaignStore.open(tmp_path / "camp")
        # the alien segment's claimed coverage must not count
        assert reopened.n_completed == 5


class TestSimCampaignAndMigration:
    def sim_grid(self):
        return parse_grid_spec(
            {
                "kind": "bench",
                "backend": "sim",
                "base": {"n_threads": 2, "theta": 1, "iterations": 2},
                "axes": {
                    "approach": ["pt2pt_single", "pt2pt_part"],
                    "total_bytes": [1024, 65536],
                },
            }
        )

    def test_sim_campaign_matches_runner(self, tmp_path):
        grid = self.sim_grid()
        store = CampaignStore.create(tmp_path / "camp", grid)
        summary = run_campaign(store, chunk_points=3)
        assert summary["executed"] == len(grid)
        rows = dict(store.iter_rows())
        report = run_scenarios(grid.expand(), jobs=1)
        for index in range(len(grid)):
            assert rows[index] == report.result_dicts[index]

    def test_migration_is_idempotent(self, tmp_path):
        grid = self.sim_grid()
        v1 = ResultStore(tmp_path / "v1")
        run_scenarios(grid.expand()[:2], jobs=1, store=v1)
        store = CampaignStore.create(tmp_path / "camp", grid)
        assert store.migrate_from_v1(v1) == 2
        assert store.migrate_from_v1(v1) == 0  # re-run copies nothing
        assert store.stats()["loose_rows"] == 2

    def test_migration_and_read_through(self, tmp_path):
        grid = self.sim_grid()
        scenarios = grid.expand()
        v1 = ResultStore(tmp_path / "v1")
        run_scenarios(scenarios[:2], jobs=1, store=v1)
        store = CampaignStore.create(tmp_path / "camp", grid)
        assert store.migrate_from_v1(v1) == 2
        summary = run_campaign(store, chunk_points=10)
        assert summary["cached"] == 2
        assert summary["executed"] == len(grid) - 2
        assert store.n_completed == len(grid)

    def test_fallback_store_read_through(self, tmp_path):
        grid = self.sim_grid()
        scenarios = grid.expand()
        v1 = ResultStore(tmp_path / "v1")
        run_scenarios(scenarios, jobs=1, store=v1)
        store = CampaignStore.create(tmp_path / "camp", grid, fallback=v1)
        summary = run_campaign(store)
        assert summary["executed"] == 0
        assert summary["cached"] == len(grid)
        assert store.n_completed == len(grid)

    def test_v1_export_jsonl(self, tmp_path):
        grid = self.sim_grid()
        v1 = ResultStore(tmp_path / "v1")
        run_scenarios(grid.expand()[:2], jobs=1, store=v1)
        target = tmp_path / "dump.jsonl"
        assert v1.export_jsonl(target) == 2
        records = [
            json.loads(line) for line in target.read_text().splitlines()
        ]
        assert all(
            set(r) == {"hash", "scenario", "result"} for r in records
        )
