"""Campaign store: grid addressing, segments, resume, compaction,
migration, provenance — the schema-v2 streaming pipeline."""

import json

import pytest

from repro.runner import (
    CampaignStore,
    ResultStore,
    ScenarioGrid,
    parse_grid_spec,
    run_campaign,
    run_scenarios,
)
from repro.runner.campaign import (
    CAMPAIGN_SCHEMA,
    SEGMENT_SCHEMA,
)
from repro.runner.scenario import execute


def analytic_spec():
    return {
        "kind": "bench",
        "backend": "analytic",
        "base": {"n_threads": 2, "theta": 2, "iterations": 3},
        "axes": {
            "approach": ["pt2pt_single", "pt2pt_part", "rma_many_active"],
            "total_bytes": {"pow2": [10, 17]},
            "gamma_us_per_mb": [0.0, 200.0],
        },
    }


class TestGridAddressing:
    def test_to_dict_round_trip_preserves_hash(self):
        grid = parse_grid_spec(analytic_spec())
        clone = ScenarioGrid.from_dict(grid.to_dict())
        assert clone.content_hash() == grid.content_hash()
        assert len(clone) == len(grid)

    def test_assignment_at_matches_expand_order(self):
        grid = parse_grid_spec(analytic_spec())
        for index, (assignment, scenario) in enumerate(grid.points()):
            assert grid.assignment_at(index) == assignment
            assert grid.scenario_at(index) == scenario

    def test_axis_columns_decode(self):
        import numpy as np

        grid = parse_grid_spec(analytic_spec())
        indices = np.array([0, 5, 17, len(grid) - 1])
        columns = grid.axis_columns(indices)
        for j, i in enumerate(indices):
            assignment = grid.assignment_at(int(i))
            for name, values in columns.items():
                assert values[j] == assignment[name]

    def test_out_of_range_rejected(self):
        grid = parse_grid_spec(analytic_spec())
        with pytest.raises(IndexError):
            grid.assignment_at(len(grid))

    def test_axis_order_survives_key_sorted_serialization(self):
        """Axis declaration order IS the row-major index mapping; it
        must survive a sort_keys round trip (the campaign header is
        written that way — losing it silently remaps every index)."""
        spec = {
            "kind": "bench",
            "backend": "analytic",
            "base": {"iterations": 1},
            # deliberately non-alphabetical axis order
            "axes": {
                "total_bytes": [1024, 2048],
                "approach": ["pt2pt_single", "pt2pt_part"],
                "n_threads": [1, 2, 4],
            },
        }
        grid = parse_grid_spec(spec)
        sorted_json = json.dumps(grid.to_dict(), sort_keys=True)
        clone = ScenarioGrid.from_dict(json.loads(sorted_json))
        assert list(clone.axes) == ["total_bytes", "approach", "n_threads"]
        assert clone.content_hash() == grid.content_hash()
        for index in range(len(grid)):
            assert clone.assignment_at(index) == grid.assignment_at(index)

    def test_axis_order_mismatch_rejected(self):
        payload = parse_grid_spec(analytic_spec()).to_dict()
        payload["axis_order"] = payload["axis_order"][:-1]
        with pytest.raises(ValueError):
            ScenarioGrid.from_dict(payload)

    def test_campaign_reopened_from_disk_keeps_index_mapping(self, tmp_path):
        """The end-to-end regression: a campaign written by one
        process and reopened cold from campaign.json must decode every
        stored row to the same scenario the writer executed."""
        grid = parse_grid_spec(
            {
                "kind": "pattern",
                "backend": "analytic",
                "base": {"n_ranks": 4, "iterations": 2},
                # pattern deliberately NOT alphabetically last-fastest
                "axes": {
                    "pattern": ["halo3d", "fft"],
                    "msg_bytes": [16384, 65536],
                    "approach": ["pt2pt_single", "pt2pt_part"],
                },
            }
        )
        store = CampaignStore.create(tmp_path / "camp", grid)
        run_campaign(store)
        reopened = CampaignStore.open(tmp_path / "camp")  # cold header
        assert list(reopened.grid.axes) == ["pattern", "msg_bytes",
                                            "approach"]
        for index, result in reopened.iter_rows():
            native = execute(reopened.scenario_at(index))
            assert result["times"] == [float(t) for t in native.times]
            assert result["n_links"] == native.n_links

    def test_shorthand_axes(self):
        grid = parse_grid_spec(
            {
                "kind": "bench",
                "backend": "analytic",
                "base": {"iterations": 1},
                "axes": {
                    "approach": {"values": ["pt2pt_single"]},
                    "total_bytes": {"pow2": [10, 12]},
                    "n_threads": {"range": [1, 8, 2]},
                },
            }
        )
        assert grid.axes["total_bytes"] == [1024, 2048, 4096]
        assert grid.axes["n_threads"] == [1, 3, 5, 7]

    def test_non_scalar_axis_rejected(self):
        grid = ScenarioGrid(
            "bench",
            base={"iterations": 1},
            axes={"approach": ["pt2pt_single"], "total_bytes": [(1,)]},
        )
        with pytest.raises(TypeError):
            grid.to_dict()


class TestCampaignLifecycle:
    def test_run_resume_and_equivalence(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        first = run_campaign(store, chunk_points=7, limit=10)
        assert first["executed"] == 10
        assert store.missing_ranges() == [(10, len(grid))]
        second = run_campaign(store, chunk_points=7)
        assert second["executed"] == len(grid) - 10
        assert store.n_completed == len(grid)
        rows = dict(store.iter_rows())
        assert len(rows) == len(grid)
        # Campaign rows are bitwise-identical to per-point execution.
        for index in (0, 9, 10, len(grid) - 1):
            native = execute(store.scenario_at(index))
            assert rows[index]["times"] == [float(t) for t in native.times]

    def test_resume_from_segments_without_index(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        run_campaign(store, chunk_points=11)
        (tmp_path / "camp" / "index.json").unlink()
        reopened = CampaignStore.open(tmp_path / "camp")
        assert reopened.n_completed == len(grid)
        assert run_campaign(reopened)["executed"] == 0

    def test_create_validates_grid_before_io(self, tmp_path):
        bad = ScenarioGrid(
            "bench",
            base={"iterations": 1},
            axes={"approach": ["pt2pt_single", "no_such_approach"],
                  "total_bytes": [1024]},
            backend="analytic",
        )
        with pytest.raises(KeyError):
            CampaignStore.create(tmp_path / "camp", bad)
        assert not (tmp_path / "camp").exists()
        good = ScenarioGrid(
            "bench",
            base={"iterations": 1},
            axes={"approach": ["pt2pt_single"], "total_bytes": [1024]},
            backend="no_such_backend",
        )
        with pytest.raises(KeyError):
            CampaignStore.create(tmp_path / "camp2", good)

    def test_resume_accepts_v1_header_with_recoverable_order(self, tmp_path):
        """A root whose header predates the axis_order field resumes
        when the stored grid re-hashes to the requested identity (the
        only case where the old index mapping is unambiguous)."""
        # axes declared in alphabetical order == the order a v1
        # sort_keys header preserved, so the identity is recoverable
        spec = {
            "kind": "bench",
            "backend": "analytic",
            "base": {"iterations": 2},
            "axes": {
                "approach": ["pt2pt_single", "pt2pt_part"],
                "n_threads": [1, 2],
                "total_bytes": [1024, 4096],
            },
        }
        grid = parse_grid_spec(spec)
        store = CampaignStore.create(tmp_path / "camp", grid)
        run_campaign(store, limit=3)
        # Rewrite the header as a v1 producer would have left it.
        header_path = tmp_path / "camp" / "campaign.json"
        header = json.loads(header_path.read_text())
        header["grid"]["schema"] = "repro.runner.grid/v1"
        del header["grid"]["axis_order"]
        v1_like = dict(header)
        v1_like["grid_hash"] = "0" * 64  # a v1 hash never matches v2
        header_path.write_text(json.dumps(v1_like, sort_keys=True))
        # Segments are tagged with the old hash; retag to match.
        for seg in (tmp_path / "camp" / "segments").glob("*.jsonl"):
            lines = seg.read_text().splitlines()
            seg_header = json.loads(lines[0])
            seg_header["campaign"] = "0" * 64
            seg.write_text(
                "\n".join([json.dumps(seg_header, sort_keys=True)]
                          + lines[1:]) + "\n"
            )
        (tmp_path / "camp" / "index.json").unlink()
        resumed = CampaignStore.create(tmp_path / "camp", grid)
        assert resumed.n_completed == 3
        assert run_campaign(resumed)["executed"] == len(grid) - 3

    def test_create_refuses_foreign_grid(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        CampaignStore.create(tmp_path / "camp", grid)
        other = parse_grid_spec(
            {**analytic_spec(), "base": {"n_threads": 4, "iterations": 3}}
        )
        with pytest.raises(ValueError):
            CampaignStore.create(tmp_path / "camp", other)

    def test_compact_preserves_rows(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        run_campaign(store, chunk_points=5)
        before = dict(store.iter_rows())
        n_before = store.stats()["segments"]
        summary = store.compact()
        assert summary["segments_before"] == n_before
        assert summary["segments_after"] < n_before
        assert dict(store.iter_rows()) == before
        assert store.n_completed == len(grid)

    def test_export_and_query(self, tmp_path):
        import io

        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        run_campaign(store)
        buffer = io.StringIO()
        count = store.export_jsonl(buffer)
        lines = buffer.getvalue().splitlines()
        assert count == len(grid) == len(lines)
        record = json.loads(lines[0])
        assert set(record) == {"index", "assignment", "result"}
        matches = list(store.query(approach="pt2pt_part"))
        assert len(matches) == len(grid) // 3
        assert all(a["approach"] == "pt2pt_part" for _, a, _ in matches)
        # base-field filters work too
        assert len(list(store.query(n_threads=2))) == len(grid)
        assert list(store.query(n_threads=64)) == []

    def test_iterations_axis_reconstructs_times_length(self, tmp_path):
        spec = {
            "kind": "bench",
            "backend": "analytic",
            "base": {"n_threads": 1},
            "axes": {
                "approach": ["pt2pt_single"],
                "total_bytes": [1024, 4096],
                "iterations": [1, 4],
            },
        }
        grid = parse_grid_spec(spec)
        store = CampaignStore.create(tmp_path / "camp", grid)
        run_campaign(store)
        for index, result in store.iter_rows():
            assert len(result["times"]) == grid.assignment_at(index)[
                "iterations"
            ]


class TestProvenance:
    def test_header_and_segments_tagged(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        run_campaign(store, chunk_points=50)
        header = json.loads((tmp_path / "camp" / "campaign.json").read_text())
        assert header["schema"] == CAMPAIGN_SCHEMA
        assert header["producer"]["backend"] == "analytic"
        assert header["grid_hash"] == grid.content_hash()
        segments = sorted((tmp_path / "camp" / "segments").glob("*.jsonl"))
        assert segments
        for path in segments:
            seg_header = json.loads(path.read_text().splitlines()[0])
            assert seg_header["schema"] == SEGMENT_SCHEMA
            assert seg_header["backend"] == "analytic"
            assert seg_header["campaign"] == grid.content_hash()

    def test_compact_writes_replacements_before_deleting(self, tmp_path):
        """A crash mid-compact must never lose completed results: the
        replacement segments land on disk before any old file goes."""
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        run_campaign(store, chunk_points=5)
        original = object.__getattribute__(store, "_write_index")

        seen = {}

        def spy(segments, loose, ignored=()):
            # At index-switch time every new segment file must exist.
            seen["files_present"] = all(
                (store.root / e["file"]).is_file() for e in segments
            )
            return original(segments, loose, ignored)

        store._write_index = spy
        store.compact()
        assert seen["files_present"]
        assert store.n_completed == len(grid)

    def test_index_converges_with_foreign_file_present(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        run_campaign(store, chunk_points=20)
        stray = tmp_path / "camp" / "segments" / "seg-zzz.jsonl"
        stray.write_text("not a segment\n")
        reopened = CampaignStore.open(tmp_path / "camp")
        assert reopened.n_completed == len(grid)
        # One rebuild recorded the stray as ignored; subsequent reads
        # must be served by the fresh index, not a rescan.
        index_path = tmp_path / "camp" / "index.json"
        payload = json.loads(index_path.read_text())
        assert payload["ignored"] == ["segments/seg-zzz.jsonl"]
        mtime = index_path.stat().st_mtime_ns
        assert reopened.n_completed == len(grid)
        list(reopened.iter_rows())
        assert index_path.stat().st_mtime_ns == mtime

    def test_export_with_where_filter(self, tmp_path):
        import io

        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        run_campaign(store)
        buffer = io.StringIO()
        count = store.export_jsonl(
            buffer, where={"approach": "pt2pt_part"}
        )
        assert count == len(grid) // 3
        for line in buffer.getvalue().splitlines():
            assert json.loads(line)["assignment"]["approach"] == "pt2pt_part"

    def test_foreign_segment_ignored(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        run_campaign(store, limit=5, chunk_points=5)
        alien = tmp_path / "camp" / "segments" / "seg-999999.jsonl"
        alien.write_text(
            json.dumps({"schema": SEGMENT_SCHEMA, "campaign": "deadbeef",
                        "encoding": "bench-mean", "ranges": [[5, 10]],
                        "count": 0, "backend": "analytic",
                        "kind": "bench"}) + "\n"
        )
        reopened = CampaignStore.open(tmp_path / "camp")
        # the alien segment's claimed coverage must not count
        assert reopened.n_completed == 5


def pattern_spec():
    return {
        "kind": "pattern",
        "backend": "analytic",
        "base": {"n_ranks": 8, "iterations": 2},
        "axes": {
            "pattern": ["halo3d", "sweep3d", "fft"],
            "approach": ["pt2pt_single", "pt2pt_part", "rma_many_active"],
            "msg_bytes": [16384, 1 << 20],
            "n_threads": [2, 4],
            "noise": ["none", "single", "gaussian"],
            "noise_us": [0.0, 40.0],
            "compute_us_per_mb": [0.0, 200.0],
        },
    }


class TestPatternCampaignFastPath:
    def test_fast_path_engages_and_matches_per_point(self, tmp_path):
        """The columns-first pattern campaign must be bit-identical to
        per-point execution — the tentpole invariant, through the
        whole store round-trip."""
        from repro.runner.campaign import _fast_axes_ok

        grid = parse_grid_spec(pattern_spec())
        assert _fast_axes_ok(grid)
        store = CampaignStore.create(tmp_path / "camp", grid)
        summary = run_campaign(store, chunk_points=100)
        assert summary["executed"] == len(grid)
        rows = dict(store.iter_rows())
        assert len(rows) == len(grid)
        stride = max(1, len(grid) // 23)
        for index in range(0, len(grid), stride):
            native = execute(store.scenario_at(index))
            assert rows[index]["times"] == [float(t) for t in native.times]
            assert rows[index]["n_links"] == native.n_links
            assert (
                rows[index]["bytes_per_iteration"]
                == native.bytes_per_iteration
            )

    def test_fast_and_config_paths_identical(self):
        """Both analytic pattern chunk builders produce the same
        columns, so the fast-path gate is purely a speed choice."""
        import numpy as np

        from repro.runner.campaign import (
            _pattern_columns,
            _pattern_fast_columns,
        )

        grid = parse_grid_spec(pattern_spec())
        for start, stop in ((0, 97), (len(grid) - 50, len(grid))):
            fast = _pattern_fast_columns(grid, start, stop)
            slow = _pattern_columns(grid, start, stop)
            assert len(fast) == len(slow) == 3
            for fast_col, slow_col in zip(fast, slow):
                assert np.array_equal(
                    np.asarray(fast_col), np.asarray(slow_col)
                )

    def test_fast_gate_covers_every_scalar_pattern_field(self):
        """Every PatternConfig field a grid axis can legally carry is
        either a kernel column or provably ignorable, so the fast path
        engages for any valid pattern grid (the config-path fallback
        stays as a safety net only)."""
        import dataclasses

        from repro.apps.base import PatternConfig
        from repro.model.vector import PATTERN_COLUMN_FIELDS
        from repro.runner.campaign import _IGNORABLE_AXES

        scalar_fields = {
            f.name
            for f in dataclasses.fields(PatternConfig)
            if f.name not in ("params", "cvars")  # never JSON-scalar axes
        }
        covered = set(PATTERN_COLUMN_FIELDS) | _IGNORABLE_AXES["pattern"]
        assert scalar_fields <= covered

    def test_kernel_columns_decode(self):
        import numpy as np

        grid = parse_grid_spec(pattern_spec())
        indices = np.array([0, 11, 101, len(grid) - 1])
        columns = grid.kernel_columns(
            indices,
            ("pattern", "approach", "msg_bytes", "n_ranks", "noise"),
            categorical=("pattern", "approach", "noise"),
        )
        assert columns["n_ranks"] == 8  # base scalar passthrough
        for j, i in enumerate(indices):
            assignment = grid.assignment_at(int(i))
            for name in ("pattern", "approach", "noise"):
                values, codes = columns[name]
                assert values[codes[j]] == assignment[name]
            assert columns["msg_bytes"][j] == assignment["msg_bytes"]

    def test_kernel_columns_out_of_range(self):
        grid = parse_grid_spec(pattern_spec())
        with pytest.raises(IndexError):
            grid.kernel_columns([len(grid)], ("pattern",))


class TestGzipSegments:
    def test_gzip_campaign_round_trips(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        plain = CampaignStore.create(tmp_path / "plain", grid)
        run_campaign(plain, chunk_points=40)
        gz = CampaignStore.create(
            tmp_path / "gz", grid, compression="gzip"
        )
        run_campaign(gz, chunk_points=40)
        assert gz.compression == "gzip"
        seg_files = list((tmp_path / "gz" / "segments").glob("*"))
        assert seg_files
        assert all(p.name.endswith(".jsonl.gz") for p in seg_files)
        assert dict(gz.iter_rows()) == dict(plain.iter_rows())
        plain_bytes = sum(
            p.stat().st_size
            for p in (tmp_path / "plain" / "segments").glob("*")
        )
        gz_bytes = sum(p.stat().st_size for p in seg_files)
        assert gz_bytes < plain_bytes

    def test_gzip_resume_from_segments(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(
            tmp_path / "camp", grid, compression="gzip"
        )
        run_campaign(store, chunk_points=64)
        (tmp_path / "camp" / "index.json").unlink()
        reopened = CampaignStore.open(tmp_path / "camp")
        assert reopened.n_completed == len(grid)
        assert run_campaign(reopened)["executed"] == 0

    def test_compact_compress_migrates_in_place(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        run_campaign(store, chunk_points=40)
        before = dict(store.iter_rows())
        summary = store.compact(compress=True)
        assert summary["points"] == len(grid)
        assert store.compression == "gzip"  # future appends inherit
        assert all(
            p.name.endswith(".jsonl.gz")
            for p in (tmp_path / "camp" / "segments").glob("*")
        )
        assert dict(store.iter_rows()) == before
        # and the header survives a fresh open
        assert CampaignStore.open(tmp_path / "camp").compression == "gzip"

    def test_unknown_compression_rejected(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        with pytest.raises(ValueError):
            CampaignStore.create(
                tmp_path / "camp", grid, compression="zstd"
            )

    def test_truncated_gzip_segment_is_ignored_not_fatal(self, tmp_path):
        """rebuild_index is the repair tool for damaged roots: a
        truncated .jsonl.gz (gzip raises EOFError, not OSError) must
        land in 'ignored' like any unreadable file, never crash."""
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(
            tmp_path / "camp", grid, compression="gzip"
        )
        run_campaign(store, chunk_points=40)
        victim = sorted((tmp_path / "camp" / "segments").glob("*.gz"))[0]
        victim.write_bytes(victim.read_bytes()[:20])  # mid-stream cut
        (tmp_path / "camp" / "index.json").unlink()
        reopened = CampaignStore.open(tmp_path / "camp")
        index = json.loads(
            (tmp_path / "camp" / "index.json").read_text()
        )
        assert str(victim.relative_to(tmp_path / "camp")) in index["ignored"]
        # the rest of the store stays usable; the lost range reruns
        assert reopened.n_completed == len(grid) - 40
        assert run_campaign(reopened)["executed"] == 40

    def test_resume_keeps_existing_compression(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        CampaignStore.create(tmp_path / "camp", grid, compression="gzip")
        again = CampaignStore.create(
            tmp_path / "camp", grid, compression="none"
        )
        assert again.compression == "gzip"


class TestSubmitAheadPipeline:
    def sim_grid(self):
        return parse_grid_spec(
            {
                "kind": "bench",
                "backend": "sim",
                "base": {"n_threads": 2, "theta": 1, "iterations": 2},
                "axes": {
                    "approach": ["pt2pt_single", "pt2pt_part"],
                    "total_bytes": [1024, 16384, 65536],
                },
            }
        )

    @staticmethod
    def store_bytes(root):
        """(name, bytes) of every segment plus the index, the
        byte-identity fingerprint."""
        segments = [
            (p.name, p.read_bytes())
            for p in sorted((root / "segments").glob("*"))
        ]
        index = json.loads((root / "index.json").read_text())
        return segments, index

    def test_pipelined_store_byte_identical_to_sequential(self, tmp_path):
        """The acceptance invariant: same segments, same index, byte
        for byte, whether chunks run sequentially in-process or
        through the submit-ahead pool pipeline."""
        grid = self.sim_grid()
        serial = CampaignStore.create(tmp_path / "serial", grid)
        run_campaign(serial, jobs=1, chunk_points=2)
        piped = CampaignStore.create(tmp_path / "piped", grid)
        summary = run_campaign(
            piped, jobs=2, chunk_points=2, pool="always", submit_ahead=3
        )
        assert summary["executed"] == len(grid)
        assert self.store_bytes(tmp_path / "serial") == self.store_bytes(
            tmp_path / "piped"
        )

    def test_submit_ahead_serial_fallback_matches(self, tmp_path):
        """On a single-CPU box the auto policy pipelines serially —
        still the same bytes."""
        grid = self.sim_grid()
        a = CampaignStore.create(tmp_path / "a", grid)
        run_campaign(a, jobs=1, chunk_points=4)
        b = CampaignStore.create(tmp_path / "b", grid)
        run_campaign(b, jobs=4, chunk_points=4, pool="auto", submit_ahead=8)
        assert self.store_bytes(tmp_path / "a") == self.store_bytes(
            tmp_path / "b"
        )

    def test_pipelined_read_through_cache(self, tmp_path):
        """Warm points are served from loose rows at submission time;
        the pipelined consumer still writes full ordered chunks."""
        grid = self.sim_grid()
        v1 = ResultStore(tmp_path / "v1")
        run_scenarios(grid.expand()[:3], jobs=1, store=v1)
        store = CampaignStore.create(tmp_path / "camp", grid, fallback=v1)
        summary = run_campaign(
            store, jobs=2, chunk_points=2, pool="always", submit_ahead=2
        )
        assert summary["cached"] == 3
        assert summary["executed"] == len(grid) - 3
        assert store.n_completed == len(grid)

    def test_pipelined_respects_limit(self, tmp_path):
        grid = self.sim_grid()
        store = CampaignStore.create(tmp_path / "camp", grid)
        summary = run_campaign(
            store, jobs=2, chunk_points=2, pool="always",
            submit_ahead=4, limit=3,
        )
        assert summary["executed"] == 3
        assert store.n_completed == 3

    def test_default_chunking_feeds_every_worker(self, tmp_path):
        """A chunk is one pool task, so the default sizing must
        produce several chunks per worker (not one giant chunk that
        would idle the rest of the pool)."""
        grid = self.sim_grid()  # 6 points
        store = CampaignStore.create(tmp_path / "camp", grid)
        summary = run_campaign(store, jobs=2, pool="always")
        # auto_chunk_size(6, 2) == 1 -> one chunk per point
        assert summary["chunks"] == len(grid)
        assert store.n_completed == len(grid)

    def test_fully_warm_campaign_forks_no_pool(self, tmp_path, monkeypatch):
        """A resume where every point is served read-through must not
        pay for worker processes."""
        from repro.runner import executor as executor_module

        grid = self.sim_grid()
        v1 = ResultStore(tmp_path / "v1")
        run_scenarios(grid.expand(), jobs=1, store=v1)

        def forbidden_pool(*args, **kwargs):
            raise AssertionError("pool forked for an all-warm campaign")

        monkeypatch.setattr(
            executor_module.multiprocessing, "Pool", forbidden_pool
        )
        store = CampaignStore.create(tmp_path / "camp", grid, fallback=v1)
        summary = run_campaign(
            store, jobs=2, chunk_points=2, pool="always", submit_ahead=4
        )
        assert summary["cached"] == len(grid)
        assert summary["executed"] == 0
        assert store.n_completed == len(grid)


class TestSimCampaignAndMigration:
    def sim_grid(self):
        return parse_grid_spec(
            {
                "kind": "bench",
                "backend": "sim",
                "base": {"n_threads": 2, "theta": 1, "iterations": 2},
                "axes": {
                    "approach": ["pt2pt_single", "pt2pt_part"],
                    "total_bytes": [1024, 65536],
                },
            }
        )

    def test_sim_campaign_matches_runner(self, tmp_path):
        grid = self.sim_grid()
        store = CampaignStore.create(tmp_path / "camp", grid)
        summary = run_campaign(store, chunk_points=3)
        assert summary["executed"] == len(grid)
        rows = dict(store.iter_rows())
        report = run_scenarios(grid.expand(), jobs=1)
        for index in range(len(grid)):
            assert rows[index] == report.result_dicts[index]

    def test_migration_is_idempotent(self, tmp_path):
        grid = self.sim_grid()
        v1 = ResultStore(tmp_path / "v1")
        run_scenarios(grid.expand()[:2], jobs=1, store=v1)
        store = CampaignStore.create(tmp_path / "camp", grid)
        assert store.migrate_from_v1(v1) == 2
        assert store.migrate_from_v1(v1) == 0  # re-run copies nothing
        assert store.stats()["loose_rows"] == 2

    def test_migration_and_read_through(self, tmp_path):
        grid = self.sim_grid()
        scenarios = grid.expand()
        v1 = ResultStore(tmp_path / "v1")
        run_scenarios(scenarios[:2], jobs=1, store=v1)
        store = CampaignStore.create(tmp_path / "camp", grid)
        assert store.migrate_from_v1(v1) == 2
        summary = run_campaign(store, chunk_points=10)
        assert summary["cached"] == 2
        assert summary["executed"] == len(grid) - 2
        assert store.n_completed == len(grid)

    def test_fallback_store_read_through(self, tmp_path):
        grid = self.sim_grid()
        scenarios = grid.expand()
        v1 = ResultStore(tmp_path / "v1")
        run_scenarios(scenarios, jobs=1, store=v1)
        store = CampaignStore.create(tmp_path / "camp", grid, fallback=v1)
        summary = run_campaign(store)
        assert summary["executed"] == 0
        assert summary["cached"] == len(grid)
        assert store.n_completed == len(grid)

    def test_v1_export_jsonl(self, tmp_path):
        grid = self.sim_grid()
        v1 = ResultStore(tmp_path / "v1")
        run_scenarios(grid.expand()[:2], jobs=1, store=v1)
        target = tmp_path / "dump.jsonl"
        assert v1.export_jsonl(target) == 2
        records = [
            json.loads(line) for line in target.read_text().splitlines()
        ]
        assert all(
            set(r) == {"hash", "scenario", "result"} for r in records
        )
