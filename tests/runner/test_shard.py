"""Sharded campaign execution: shard planning, collision-free segment
namespaces, shard runs, and the verified merge/adopt step."""

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.runner import (
    CampaignStore,
    merge_shards,
    parse_grid_spec,
    run_campaign,
    run_shard,
    run_sharded,
    shard_plan,
    shard_token,
)
from repro.runner.campaign import (
    _indices_to_ranges,
    _intersect_ranges,
    _merge_ranges,
    _subtract_ranges,
)
from repro.runner.shard import format_ranges, parse_ranges, parse_shard


def analytic_spec(sizes=(10, 16)):
    return {
        "kind": "bench",
        "backend": "analytic",
        "base": {"n_threads": 2, "theta": 2, "iterations": 3},
        "axes": {
            "approach": ["pt2pt_single", "pt2pt_part", "rma_many_active"],
            "total_bytes": {"pow2": list(sizes)},
            "gamma_us_per_mb": [0.0, 200.0],
        },
    }


def make_grid(sizes=(10, 16)):
    return parse_grid_spec(analytic_spec(sizes))


class TestRangeArithmetic:
    """Edge cases of the interval helpers the merge relies on."""

    def test_merge_adjacent_ranges_coalesce(self):
        assert _merge_ranges([(0, 5), (5, 10)]) == [(0, 10)]

    def test_merge_empty_input(self):
        assert _merge_ranges([]) == []

    def test_merge_drops_empty_ranges(self):
        assert _merge_ranges([(3, 3), (1, 2)]) == [(1, 2)]

    def test_merge_overlapping_and_nested(self):
        assert _merge_ranges([(0, 4), (2, 6), (1, 3), (8, 9)]) == [
            (0, 6),
            (8, 9),
        ]

    def test_subtract_full_overlap_yields_nothing(self):
        assert _subtract_ranges(3, 7, [(0, 10)]) == []

    def test_subtract_empty_covered_yields_whole(self):
        assert _subtract_ranges(2, 9, []) == [(2, 9)]

    def test_subtract_adjacent_covered_does_not_bite(self):
        # [0, 3) and [7, 12) touch the query only at its edges.
        assert _subtract_ranges(3, 7, [(0, 3), (7, 12)]) == [(3, 7)]

    def test_subtract_punches_holes(self):
        assert _subtract_ranges(0, 10, [(2, 4), (6, 8)]) == [
            (0, 2),
            (4, 6),
            (8, 10),
        ]

    def test_indices_to_ranges_empty(self):
        assert _indices_to_ranges([]) == []

    def test_indices_to_ranges_runs(self):
        assert _indices_to_ranges([0, 1, 2, 5, 7, 8]) == [
            (0, 3),
            (5, 6),
            (7, 9),
        ]

    def test_intersect_disjoint(self):
        assert _intersect_ranges([(0, 5)], [(5, 10)]) == []

    def test_intersect_partial_and_nested(self):
        assert _intersect_ranges(
            [(0, 10), (20, 30)], [(5, 25), (28, 40)]
        ) == [(5, 10), (20, 25), (28, 30)]

    def test_intersect_empty_operands(self):
        assert _intersect_ranges([], [(0, 5)]) == []
        assert _intersect_ranges([(0, 5)], []) == []


class TestShardPlan:
    def test_even_split_covers_everything_disjointly(self):
        plans = shard_plan(100, 4)
        assert len(plans) == 4
        counts = [sum(e - s for s, e in p) for p in plans]
        assert counts == [25, 25, 25, 25]
        union = _merge_ranges([r for p in plans for r in p])
        assert union == [(0, 100)]

    def test_uneven_split_differs_by_at_most_one(self):
        plans = shard_plan(10, 3)
        counts = [sum(e - s for s, e in p) for p in plans]
        assert counts == [4, 3, 3]

    def test_completed_ranges_are_excluded(self):
        plans = shard_plan(100, 2, completed=[(10, 30), (50, 60)])
        union = _merge_ranges([r for p in plans for r in p])
        assert union == [(0, 10), (30, 50), (60, 100)]
        counts = [sum(e - s for s, e in p) for p in plans]
        assert counts == [35, 35]

    def test_more_shards_than_points_leaves_trailing_empty(self):
        plans = shard_plan(2, 5)
        counts = [sum(e - s for s, e in p) for p in plans]
        assert counts == [1, 1, 0, 0, 0]

    def test_fully_completed_grid_plans_nothing(self):
        assert shard_plan(10, 3, completed=[(0, 10)]) == [[], [], []]

    def test_accepts_grid_object(self):
        grid = make_grid()
        plans = shard_plan(grid, 3)
        union = _merge_ranges([r for p in plans for r in p])
        assert union == [(0, len(grid))]

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            shard_plan(10, 0)
        with pytest.raises(ValueError):
            shard_plan(10, 2, completed=[(5, 15)])
        with pytest.raises(ValueError):
            shard_plan(10, 2, completed=[(4, 6), (2, 3)])


class TestShardSpecParsing:
    def test_shard_token_and_parse_round_trip(self):
        assert shard_token(2, 4) == "s002of004"
        assert parse_shard("2/4") == (2, 4)

    def test_parse_shard_rejects_garbage(self):
        for bad in ("0/4", "5/4", "4", "a/b", "1/0"):
            with pytest.raises(ValueError):
                parse_shard(bad)

    def test_ranges_round_trip(self):
        ranges = [(0, 5), (10, 20)]
        assert parse_ranges(format_ranges(ranges)) == ranges

    def test_parse_ranges_rejects_garbage(self):
        for bad in ("", "5-2", "-3-4", "1:2"):
            with pytest.raises(ValueError):
                parse_ranges(bad)


class TestWriterTokenNaming:
    def test_tokened_names_cannot_collide_across_writers(self, tmp_path):
        grid = make_grid()
        a = CampaignStore.create(tmp_path, grid, writer_token="a")
        b = CampaignStore.open(tmp_path, writer_token="b")
        # Both writers see the same n_existing, yet name disjoint files.
        assert a._segment_name(0, ".jsonl") == "segments/seg-a-000000.jsonl"
        assert b._segment_name(0, ".jsonl") == "segments/seg-b-000000.jsonl"

    def test_default_naming_unchanged(self, tmp_path):
        store = CampaignStore.create(tmp_path, make_grid())
        assert store._segment_name(0, ".jsonl") == "segments/seg-000000.jsonl"

    def test_bad_token_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            CampaignStore(tmp_path, writer_token="has/slash")
        with pytest.raises(ValueError):
            CampaignStore(tmp_path, writer_token="x" * 33)

    def test_writer_recorded_in_header_and_index(self, tmp_path):
        grid = make_grid()
        store = CampaignStore.create(tmp_path, grid, writer_token="w1")
        run_campaign(store, limit=4, chunk_points=4, async_write=False)
        index = store._index()
        assert [e["writer"] for e in index["segments"]] == ["w1"]
        seg = tmp_path / index["segments"][0]["file"]
        header = json.loads(seg.read_text().splitlines()[0])
        assert header["writer"] == "w1"
        # rebuild_index recovers the writer from the header alone.
        (tmp_path / "index.json").unlink()
        rebuilt = CampaignStore.open(tmp_path)._index()
        assert [e["writer"] for e in rebuilt["segments"]] == ["w1"]

    def test_concurrent_writers_never_collide(self, tmp_path):
        """Two tokened writers appending into ONE directory at once:
        every segment lands under its own name and a rebuilt index
        sees all of them (the race `_segment_name` used to lose)."""
        grid = make_grid()
        CampaignStore.create(tmp_path, grid)
        n_each = 8
        errors = []

        def writer(token, base):
            try:
                store = CampaignStore.open(tmp_path, writer_token=token)
                for k in range(n_each):
                    start = base + k
                    store.append_chunk(
                        [[start, 1.0 + start]],
                        "bench-mean",
                        [(start, start + 1)],
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=("wa", 0)),
            threading.Thread(target=writer, args=("wb", n_each)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        on_disk = sorted(p.name for p in tmp_path.glob("segments/*"))
        assert len(on_disk) == 2 * n_each
        assert len(set(on_disk)) == 2 * n_each
        # index.json itself was raced (last write wins) — the rebuild
        # from segment headers recovers every point.
        store = CampaignStore(tmp_path)
        store.rebuild_index()
        assert store.completed_ranges() == [(0, 2 * n_each)]


class TestRunShardAndMerge:
    def _run_shards(self, tmp_path, grid, n, compression="none"):
        target = CampaignStore.create(
            tmp_path / "target", grid, compression=compression
        )
        plans = shard_plan(len(grid), n, completed=target.completed_ranges())
        roots = []
        for i, plan in enumerate(plans, start=1):
            summary = run_shard(
                tmp_path / "shards" / shard_token(i, n),
                grid,
                i,
                n,
                ranges=plan,
                compression=compression,
            )
            assert summary["shard"]["remaining"] == 0
            roots.append(summary["shard"]["root"])
        return target, roots

    @pytest.mark.parametrize("compression", ["none", "binary"])
    def test_merged_store_equals_unsharded(self, tmp_path, compression):
        import numpy as np

        grid = make_grid()
        ref = CampaignStore.create(
            tmp_path / "ref", grid, compression=compression
        )
        run_campaign(ref)
        target, roots = self._run_shards(
            tmp_path, grid, 3, compression=compression
        )
        summary = merge_shards(target, roots)
        assert summary["completed"] == len(grid)
        assert list(target.iter_rows()) == list(ref.iter_rows())
        ref_idx, ref_cols = ref.read_columns()
        got_idx, got_cols = target.read_columns()
        assert np.array_equal(ref_idx, got_idx)
        for name in ref_cols:
            assert np.array_equal(ref_cols[name], got_cols[name])

    def test_shard_default_ranges_from_plan(self, tmp_path):
        """Bare index/count (the multi-machine shape) assumes the
        shard_plan split of the full grid."""
        grid = make_grid()
        summary = run_shard(tmp_path / "s1", grid, 1, 3)
        expected = shard_plan(len(grid), 3)[0]
        assert summary["shard"]["ranges"] == [[s, e] for s, e in expected]
        assert summary["executed"] == sum(e - s for s, e in expected)

    def test_shard_resume_executes_nothing(self, tmp_path):
        grid = make_grid()
        first = run_shard(tmp_path / "s1", grid, 1, 2)
        assert first["executed"] > 0
        again = run_shard(tmp_path / "s1", grid, 1, 2)
        assert again["executed"] == 0
        assert again["shard"]["remaining"] == 0

    def test_merge_respects_partially_complete_target(self, tmp_path):
        """Driver shape: target already holds points, shards run the
        complement, merge stitches without overlap."""
        grid = make_grid()
        target = CampaignStore.create(tmp_path / "target", grid)
        run_campaign(target, limit=7, chunk_points=7)
        assert target.n_completed == 7
        plans = shard_plan(
            len(grid), 2, completed=target.completed_ranges()
        )
        roots = []
        for i, plan in enumerate(plans, start=1):
            summary = run_shard(
                tmp_path / f"s{i}", grid, i, 2, ranges=plan
            )
            roots.append(summary["shard"]["root"])
        merge_shards(target, roots)
        assert target.n_completed == len(grid)

    def test_merge_link_keeps_shard_store_intact(self, tmp_path):
        grid = make_grid()
        target, roots = self._run_shards(tmp_path, grid, 2)
        summary = merge_shards(target, roots, link=True)
        assert summary["linked"]
        assert target.n_completed == len(grid)
        # The shard stores still read their own (linked) segments.
        shard_store = CampaignStore.open(roots[0])
        assert shard_store.n_completed > 0

    def test_merge_is_not_repeatable(self, tmp_path):
        """Adopting the same shard twice must fail loudly (coverage
        overlap), not silently duplicate points."""
        grid = make_grid()
        target, roots = self._run_shards(tmp_path, grid, 2)
        merge_shards(target, roots, link=True)
        with pytest.raises(ValueError, match="overlap"):
            merge_shards(target, [roots[0]], link=True)

    def test_stats_shard_awareness(self, tmp_path):
        grid = make_grid()
        target, roots = self._run_shards(tmp_path, grid, 2)
        # Before the merge: shard stores under <root>/shards are listed.
        shards_dir = tmp_path / "target" / "shards"
        shards_dir.mkdir()
        os.rename(roots[0], shards_dir / "s001of002")
        stats = target.stats()
        assert len(stats["shards"]) == 1
        entry = stats["shards"][0]
        assert entry["shard"]["index"] == 1
        assert entry["missing"] == 0
        # Shard store's own stats echo provenance.
        sub = CampaignStore.open(shards_dir / "s001of002")
        assert sub.stats()["shard"]["count"] == 2
        # After merging the other shard: per-writer coverage appears.
        merge_shards(target, [roots[1]])
        writers = target.stats()["shard_segments"]
        assert list(writers) == ["s002of002"]
        assert writers["s002of002"]["points"] == sum(
            e - s for s, e in shard_plan(len(grid), 2)[1]
        )


class TestMergeRejections:
    def test_grid_hash_mismatch_rejected(self, tmp_path):
        grid = make_grid()
        other = make_grid(sizes=(10, 15))
        target = CampaignStore.create(tmp_path / "target", grid)
        summary = run_shard(tmp_path / "s1", other, 1, 1)
        with pytest.raises(ValueError, match="different campaign"):
            merge_shards(target, [summary["shard"]["root"]])

    def test_overlapping_shard_coverage_rejected(self, tmp_path):
        grid = make_grid()
        target = CampaignStore.create(tmp_path / "target", grid)
        a = run_shard(
            tmp_path / "sa", grid, 1, 2, ranges=[(0, 10)]
        )
        b = run_shard(
            tmp_path / "sb", grid, 2, 2, ranges=[(5, 15)]
        )
        with pytest.raises(ValueError, match="overlap"):
            merge_shards(
                target, [a["shard"]["root"], b["shard"]["root"]]
            )

    def test_overlap_with_target_coverage_rejected(self, tmp_path):
        grid = make_grid()
        target = CampaignStore.create(tmp_path / "target", grid)
        run_campaign(target, limit=10, chunk_points=10)
        shard = run_shard(
            tmp_path / "s1", grid, 1, 1, ranges=[(5, 12)]
        )
        with pytest.raises(ValueError, match="overlap"):
            merge_shards(target, [shard["shard"]["root"]])

    def test_doctored_segment_schema_rejected(self, tmp_path):
        """A segment whose header no longer validates against the
        target (wrong schema version) rejects the merge instead of
        being silently dropped."""
        grid = make_grid()
        target = CampaignStore.create(tmp_path / "target", grid)
        summary = run_shard(
            tmp_path / "s1", grid, 1, 1, ranges=[(0, 6)],
        )
        shard_root = Path(summary["shard"]["root"])
        seg = next(shard_root.glob("segments/*.jsonl"))
        first, rest = seg.read_text().split("\n", 1)
        header = json.loads(first)
        header["schema"] = "repro.campaign.segment/v999"
        seg.write_text(json.dumps(header, sort_keys=True) + "\n" + rest)
        with pytest.raises(ValueError, match="fails target validation"):
            merge_shards(target, [shard_root])

    def test_loose_rows_rejected(self, tmp_path):
        grid = make_grid()
        target = CampaignStore.create(tmp_path / "target", grid)
        summary = run_shard(
            tmp_path / "s1", grid, 1, 1, ranges=[(0, 6)],
        )
        shard_root = Path(summary["shard"]["root"])
        shard_store = CampaignStore.open(shard_root)

        class FakeV1:
            def iter_payloads(self):
                yield "abc123", {"kind": "bench"}, {"t": 1.0}

        shard_store.migrate_from_v1(FakeV1())
        with pytest.raises(ValueError, match="loose"):
            merge_shards(target, [shard_root])

    def test_name_collision_rejected(self, tmp_path):
        """Un-tokened shard segments colliding with target names must
        refuse rather than overwrite."""
        grid = make_grid()
        target = CampaignStore.create(tmp_path / "target", grid)
        run_campaign(target, limit=6, chunk_points=6)
        # An un-tokened writer produced seg-000000 in its own store
        # covering disjoint points — same name as the target's first.
        shard = CampaignStore.create(tmp_path / "s1", grid)
        run_campaign(shard, ranges=[(10, 16)], chunk_points=6)
        with pytest.raises(ValueError, match="already exists"):
            merge_shards(target, [tmp_path / "s1"])


class TestRunCampaignRanges:
    def test_ranges_scope_execution(self, tmp_path):
        grid = make_grid()
        store = CampaignStore.create(tmp_path, grid)
        summary = run_campaign(store, ranges=[(4, 9), (12, 14)])
        assert summary["executed"] == 7
        assert store.completed_ranges() == [(4, 9), (12, 14)]

    def test_ranges_intersect_missing(self, tmp_path):
        grid = make_grid()
        store = CampaignStore.create(tmp_path, grid)
        run_campaign(store, ranges=[(0, 8)])
        summary = run_campaign(store, ranges=[(4, 12)])
        assert summary["executed"] == 4
        assert store.completed_ranges() == [(0, 12)]

    def test_out_of_grid_ranges_rejected(self, tmp_path):
        grid = make_grid()
        store = CampaignStore.create(tmp_path, grid)
        with pytest.raises(ValueError):
            run_campaign(store, ranges=[(0, len(grid) + 1)])


class TestRunSharded:
    def test_subprocess_driver_end_to_end(self, tmp_path):
        """3 real shard subprocesses, merged, equal to unsharded."""
        import numpy as np

        grid = make_grid()
        ref = CampaignStore.create(
            tmp_path / "ref", grid, compression="binary"
        )
        run_campaign(ref)
        target = CampaignStore.create(
            tmp_path / "target", grid, compression="binary"
        )
        summary = run_sharded(target, n_shards=3)
        assert summary["executed"] == len(grid)
        assert len(summary["shards"]) == 3
        assert summary["merge"]["segments_adopted"] >= 3
        assert target.n_completed == len(grid)
        # Shard working stores are cleaned up after the merge.
        assert not (tmp_path / "target" / "shards").exists()
        ref_idx, ref_cols = ref.read_columns()
        got_idx, got_cols = target.read_columns()
        assert np.array_equal(ref_idx, got_idx)
        for name in ref_cols:
            assert np.array_equal(ref_cols[name], got_cols[name])

    def test_nothing_missing_spawns_nothing(self, tmp_path):
        grid = make_grid()
        target = CampaignStore.create(tmp_path / "target", grid)
        run_campaign(target)
        summary = run_sharded(target, n_shards=3)
        assert summary["executed"] == 0
        assert summary["shards"] == []
        assert summary["merge"] is None


class TestAffinityAwareDefaults:
    def test_default_jobs_respects_affinity(self, monkeypatch):
        from repro.runner import executor
        from repro.runner import planner

        if hasattr(os, "sched_getaffinity"):
            monkeypatch.setattr(
                os, "sched_getaffinity", lambda pid: {0, 1, 2}
            )
            assert planner.available_cpus() == 3
            assert executor.default_jobs() == 3

    def test_available_cpus_falls_back_to_cpu_count(self, monkeypatch):
        from repro.runner import planner

        def boom(pid):
            raise OSError("no affinity here")

        if hasattr(os, "sched_getaffinity"):
            monkeypatch.setattr(os, "sched_getaffinity", boom)
        monkeypatch.setattr(os, "cpu_count", lambda: 7)
        assert planner.available_cpus() == 7


class TestShardCLI:
    def _spec_file(self, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps(analytic_spec()))
        return spec

    def _run(self, *argv):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src
        )
        return subprocess.run(
            [sys.executable, "-m", "repro", "campaign", *argv],
            capture_output=True,
            text=True,
            env=env,
        )

    def test_shard_plan_run_merge_cli(self, tmp_path):
        spec = self._spec_file(tmp_path)
        plan = self._run("shard", "plan", str(spec), "--shards", "2")
        assert plan.returncode == 0, plan.stderr
        payload = json.loads(plan.stdout)
        assert len(payload["shards"]) == 2
        for entry in payload["shards"]:
            run = self._run(
                "shard", "run", str(spec),
                "--root", str(tmp_path / entry["shard"].replace("/", "of")),
                "--shard", entry["shard"],
                "--ranges", entry["ranges_arg"],
            )
            assert run.returncode == 0, run.stderr
        grid = make_grid()
        CampaignStore.create(tmp_path / "target", grid)
        merge = self._run(
            "shard", "merge", str(tmp_path / "target"),
            str(tmp_path / "1of2"), str(tmp_path / "2of2"),
        )
        assert merge.returncode == 0, merge.stderr
        target = CampaignStore.open(tmp_path / "target")
        assert target.n_completed == len(grid)

    def test_status_json_reports_writers(self, tmp_path):
        grid = make_grid()
        target = CampaignStore.create(tmp_path / "target", grid)
        run_sharded(target, n_shards=2)
        status = self._run(
            "status", str(tmp_path / "target"), "--json"
        )
        assert status.returncode == 0, status.stderr
        payload = json.loads(status.stdout)
        assert sorted(payload["shard_segments"]) == [
            "s001of002", "s002of002",
        ]
