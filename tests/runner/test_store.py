"""ResultStore: content-addressed persistence, round-trips, interop."""

import json

import pytest

from repro.apps import PatternConfig
from repro.bench import BenchSpec
from repro.runner import ResultStore, execute, scenario_for


@pytest.fixture()
def store(tmp_path):
    return ResultStore(tmp_path / "store")


@pytest.fixture(scope="module")
def bench_point():
    scenario = scenario_for(
        BenchSpec(approach="pt2pt_single", total_bytes=256, iterations=2)
    )
    return scenario, execute(scenario)


@pytest.fixture(scope="module")
def pattern_point():
    scenario = scenario_for(
        PatternConfig(
            pattern="halo3d",
            approach="pt2pt_part",
            n_ranks=4,
            n_threads=2,
            msg_bytes=4096,
            iterations=2,
        )
    )
    return scenario, execute(scenario)


class TestRoundTrip:
    def test_bench_result_round_trip(self, store, bench_point):
        scenario, result = bench_point
        assert scenario not in store
        store.put(scenario, result)
        assert scenario in store
        loaded = store.get(scenario)
        assert loaded.times == result.times
        assert loaded.stats.mean == result.stats.mean
        assert loaded.spec == scenario.spec
        assert loaded.retries == result.retries
        assert loaded.verified == result.verified

    def test_pattern_result_round_trip(self, store, pattern_point):
        scenario, result = pattern_point
        store.put(scenario, result)
        loaded = store.get(scenario)
        assert loaded.times == result.times
        assert loaded.bytes_per_iteration == result.bytes_per_iteration
        assert loaded.n_links == result.n_links
        assert loaded.config == scenario.spec

    def test_missing_record_raises(self, store, bench_point):
        scenario, _ = bench_point
        with pytest.raises(KeyError):
            store.get(scenario)

    def test_bad_schema_rejected(self, store, bench_point):
        scenario, result = bench_point
        path = store.put(scenario, result)
        payload = json.loads(path.read_text())
        payload["schema"] = "bogus"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            store.get(scenario)

    def test_load_dict_treats_bad_records_as_misses(self, store, bench_point):
        scenario, result = bench_point
        assert store.load_dict(scenario) is None  # absent
        path = store.put(scenario, result)
        assert store.load_dict(scenario) is not None
        path.write_text("{ torn")  # unreadable
        assert store.load_dict(scenario) is None

    def test_resume_recomputes_over_torn_record(self, store, bench_point):
        from repro.runner import run_scenarios

        scenario, result = bench_point
        path = store.put(scenario, result)
        path.write_text("{ torn")
        report = run_scenarios([scenario], jobs=1, store=store, resume=True)
        assert report.executed == 1 and report.cached == 0
        assert store.get(scenario).times == result.times  # repaired


class TestLayout:
    def test_content_addressed_paths(self, store, bench_point):
        scenario, result = bench_point
        path = store.put(scenario, result)
        digest = scenario.content_hash()
        assert path.name == f"{digest}.json"
        assert path.parent.name == digest[:2]
        assert path.parent.parent.name == "bench"

    def test_no_temp_files_left_behind(self, store, bench_point):
        scenario, result = bench_point
        store.put(scenario, result)
        assert not list(store.root.rglob("*.tmp"))

    def test_len_and_records(self, store, bench_point, pattern_point):
        assert len(store) == 0
        store.put(*bench_point)
        store.put(*pattern_point)
        assert len(store) == 2
        kinds = {s.kind for s, _ in store.records()}
        assert kinds == {"bench", "pattern"}

    def test_overwrite_is_idempotent(self, store, bench_point):
        scenario, result = bench_point
        store.put(scenario, result)
        store.put(scenario, result)
        assert len(store) == 1


class TestInterop:
    def test_pattern_sweep_view(self, store, bench_point, pattern_point):
        store.put(*bench_point)
        store.put(*pattern_point)
        sweep = store.pattern_sweep()
        # Only the pattern record lands in the BENCH_apps-style sweep.
        assert len(sweep) == 1
        assert sweep.patterns() == ["halo3d"]
