"""The refactored sweep layers produce identical data through the runner."""

from repro.apps import PatternConfig, sweep_patterns
from repro.bench import BenchSpec, sweep_approaches
from repro.figures import fig4_improvement
from repro.runner import ResultStore


class TestBenchSweep:
    def test_parallel_sweep_matches_serial(self):
        base = BenchSpec(
            approach="pt2pt_single", total_bytes=64, iterations=2
        )
        serial = sweep_approaches(
            base, ["pt2pt_single", "pt2pt_part"], [64, 4096], jobs=1
        )
        parallel = sweep_approaches(
            base, ["pt2pt_single", "pt2pt_part"], [64, 4096], jobs=2
        )
        assert len(serial) == len(parallel) == 4
        for approach in serial.approaches():
            for size in serial.sizes(approach):
                assert (
                    serial.get(approach, size).times
                    == parallel.get(approach, size).times
                )


class TestPatternSweep:
    def test_sweep_patterns_through_store(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        configs = [
            PatternConfig(
                pattern="halo3d",
                approach=name,
                n_ranks=4,
                n_threads=2,
                msg_bytes=4096,
                iterations=2,
            )
            for name in ("pt2pt_part", "pt2pt_single")
        ]
        sweep = sweep_patterns(configs, jobs=1, store=store)
        assert len(sweep) == 2
        assert len(store) == 2
        # Resumed sweep reloads the same points from the store.
        again = sweep_patterns(configs, jobs=1, store=store, resume=True)
        for config in configs:
            assert again.get(config).times == sweep.get(config).times
        # The store's BENCH_apps-style view holds the same records.
        assert len(store.pattern_sweep()) == 2


class TestFigureDrivers:
    def test_quick_figure_resumes_from_store(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        cold = fig4_improvement.run(
            iterations=2, quick=True, jobs=1, store=store
        )
        n_points = len(cold.sweep)
        assert len(store) == n_points
        warm = fig4_improvement.run(
            iterations=2, quick=True, jobs=1, store=store, resume=True
        )
        assert warm.headline == cold.headline
        assert len(store) == n_points  # nothing new was computed
