"""Telemetry through the campaign pipeline: spans, aggregation, CLI."""

import json

import pytest

from repro import telemetry
from repro.runner import CampaignStore, parse_grid_spec, run_campaign
from repro.runner.profile import (
    build_attribution,
    render_profile,
    resolve_metrics_path,
)
from repro.telemetry import (
    MetricsRegistry,
    read_metrics_jsonl,
    using_registry,
    write_metrics_jsonl,
)


@pytest.fixture(autouse=True)
def _clean_globals():
    yield
    telemetry.set_registry(None)
    telemetry.set_trace_sink(None)


BENCH_SPEC = {
    "kind": "bench",
    "backend": "analytic",
    "axes": {
        "approach": ["pt2pt_part", "pt2pt_many"],
        "total_bytes": [1 << 20, 4 << 20],
        "n_threads": [1, 2, 4, 8],
        "theta": [1, 2],
    },
}

SIM_SPEC = {
    "kind": "bench",
    "backend": "sim",
    "base": {"iterations": 1, "warmup": 0},
    "axes": {
        "approach": ["pt2pt_part"],
        "total_bytes": [16384, 32768],
        "n_threads": [1, 2],
    },
}


def run_with_registry(root, spec, **kwargs):
    registry = MetricsRegistry()
    store = CampaignStore.create(root, parse_grid_spec(spec))
    with using_registry(registry):
        summary = run_campaign(store, **kwargs)
    return store, registry, summary


class TestCampaignInstrumentation:
    def test_analytic_run_records_pipeline_spans(self, tmp_path):
        store, registry, summary = run_with_registry(
            tmp_path / "camp", BENCH_SPEC
        )
        totals = registry.span_totals
        for name in (
            "campaign.run",
            "campaign.decode",
            "kernel.eval",
            "store.encode",
            "store.write",
            "store.index",
        ):
            assert name in totals, name
        assert registry.counters["campaign.points"] == summary["executed"]
        assert registry.counters["store.segments_written"] >= 1
        assert registry.counters["store.bytes_written"] > 0
        assert registry.gauges["campaign.fast_path"] == 1

    def test_disabled_run_records_nothing(self, tmp_path):
        store = CampaignStore.create(
            tmp_path / "camp", parse_grid_spec(BENCH_SPEC)
        )
        assert telemetry.active_registry() is None
        run_campaign(store)  # must not raise, must not record anywhere

    def test_segments_byte_identical_with_and_without_metrics(
        self, tmp_path
    ):
        store_plain = CampaignStore.create(
            tmp_path / "plain", parse_grid_spec(BENCH_SPEC)
        )
        run_campaign(store_plain)
        store_metered, _, _ = run_with_registry(
            tmp_path / "metered", BENCH_SPEC
        )
        plain = sorted(
            (p.name, p.read_bytes())
            for p in (store_plain.root / "segments").iterdir()
        )
        metered = sorted(
            (p.name, p.read_bytes())
            for p in (store_metered.root / "segments").iterdir()
        )
        assert plain == metered

    def test_pooled_segments_byte_identical_with_metrics(self, tmp_path):
        plain = CampaignStore.create(
            tmp_path / "plain", parse_grid_spec(SIM_SPEC)
        )
        run_campaign(plain, jobs=2, pool="always", chunk_points=2)
        metered, _, _ = run_with_registry(
            tmp_path / "metered", SIM_SPEC,
            jobs=2, pool="always", chunk_points=2,
        )
        read = lambda store: sorted(  # noqa: E731
            (p.name, p.read_bytes())
            for p in (store.root / "segments").iterdir()
        )
        assert read(plain) == read(metered)

    def test_worker_snapshots_merge_into_parent(self, tmp_path):
        store, registry, summary = run_with_registry(
            tmp_path / "sim-camp", SIM_SPEC,
            jobs=2, pool="always", chunk_points=2,
        )
        assert summary["executed"] == 4
        # worker-side metrics rode the chunk-result channel home
        assert registry.counters["executor.worker.points"] == 4
        assert registry.span_totals["executor.worker.execute"][0] == 4
        # parent-side pipeline spans recorded in the same registry
        assert "executor.stall" in registry.span_totals
        assert (
            registry.histograms["executor.window_occupancy"].count
            == summary["chunks"]
        )

    def test_serial_sim_run_uses_compute_span(self, tmp_path):
        store, registry, _ = run_with_registry(
            tmp_path / "sim-serial", SIM_SPEC, jobs=1,
        )
        assert "executor.compute" in registry.span_totals
        assert "executor.stall" not in registry.span_totals


class TestProfile:
    def metrics_for(self, tmp_path):
        store, registry, summary = run_with_registry(
            tmp_path / "camp", BENCH_SPEC
        )
        path = tmp_path / "camp" / "metrics.jsonl"
        write_metrics_jsonl(path, registry, producer={"backend": "analytic"})
        return path

    def test_attribution_stages_cover_the_run(self, tmp_path):
        metrics = read_metrics_jsonl(self.metrics_for(tmp_path))
        attribution = build_attribution(metrics)
        stages = {row["stage"] for row in attribution.stages}
        assert {"kernel", "encode", "write", "other"} <= stages
        assert attribution.total_wall_s > 0
        # shares sum to 1 (the "other" row absorbs the remainder)
        assert sum(
            row["share"] for row in attribution.stages
        ) == pytest.approx(1.0)
        assert 0.0 <= attribution.accounted_share <= 1.0

    def test_render_mentions_dominant_stage(self, tmp_path):
        report = render_profile(self.metrics_for(tmp_path))
        assert "dominant stage:" in report
        assert "total wall" in report

    def test_render_json_is_parseable(self, tmp_path):
        payload = json.loads(
            render_profile(self.metrics_for(tmp_path), as_json=True)
        )
        assert payload["dominant"] in {
            "decode", "kernel", "encode", "write", "index",
            "materialize", "compute", "stall", "other",
        }

    def test_resolve_prefers_store_root(self, tmp_path):
        path = self.metrics_for(tmp_path)
        assert resolve_metrics_path(tmp_path / "camp") == path
        assert resolve_metrics_path(path) == path
        with pytest.raises(FileNotFoundError):
            resolve_metrics_path(tmp_path)

    def test_rootless_metrics_rejected(self, tmp_path):
        reg = MetricsRegistry()
        reg.count("campaign.points", 1)
        path = tmp_path / "no-root.jsonl"
        write_metrics_jsonl(path, reg)
        with pytest.raises(ValueError):
            build_attribution(read_metrics_jsonl(path))


class TestCli:
    def write_spec(self, tmp_path, spec=BENCH_SPEC):
        spec_path = tmp_path / "grid.json"
        spec_path.write_text(json.dumps(spec))
        return spec_path

    def test_run_metrics_profile_status_json(self, tmp_path, capsys):
        from repro.__main__ import main

        spec = self.write_spec(tmp_path)
        root = tmp_path / "camp"
        assert main([
            "campaign", "run", str(spec), "--root", str(root), "--metrics",
        ]) == 0
        assert (root / "metrics.jsonl").is_file()
        capsys.readouterr()

        assert main(["campaign", "profile", str(root)]) == 0
        out = capsys.readouterr().out
        assert "dominant stage:" in out

        assert main(["campaign", "status", str(root), "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["completed"] == status["n_points"] == 32
        assert status["segments"] >= 1
        assert status["total_bytes"] > 0
        assert status["compression"] == "none"
        # the metrics file does not disturb the store: a second run
        # still sees a complete, healthy campaign
        assert main([
            "campaign", "run", str(spec), "--root", str(root),
        ]) == 0

    def test_trace_requires_metrics(self, tmp_path, capsys):
        from repro.__main__ import main

        spec = self.write_spec(tmp_path)
        rc = main([
            "campaign", "run", str(spec),
            "--root", str(tmp_path / "camp"), "--trace",
        ])
        assert rc == 2
        assert "--trace requires --metrics" in capsys.readouterr().err

    def test_trace_streams_sim_records(self, tmp_path, capsys):
        from repro.__main__ import main

        spec = self.write_spec(tmp_path, SIM_SPEC)
        root = tmp_path / "sim-camp"
        assert main([
            "campaign", "run", str(spec), "--root", str(root),
            "--metrics", "--trace",
        ]) == 0
        capsys.readouterr()
        out = read_metrics_jsonl(root / "metrics.jsonl")
        assert len(out["traces"]) > 0
        assert out["header"]["producer"]["backend"] == "sim"
        # the bridge tears down with the run
        assert telemetry.trace_sink() is None

    def test_profile_on_metricless_store_errors(self, tmp_path, capsys):
        from repro.__main__ import main

        spec = self.write_spec(tmp_path)
        root = tmp_path / "camp"
        assert main([
            "campaign", "run", str(spec), "--root", str(root),
        ]) == 0
        capsys.readouterr()
        assert main(["campaign", "profile", str(root)]) == 2
        assert "metrics" in capsys.readouterr().err
