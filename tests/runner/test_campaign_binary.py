"""Binary columnar segments, the async segment writer, and the
streaming k-way-merge read path (schema v2, PR 7)."""

import json
import tracemalloc

import pytest

from repro.runner import CampaignStore, parse_grid_spec, run_campaign
from repro.runner.campaign import (
    ENC_BENCH_COLS,
    ENC_RESULT,
)
from repro.runner.executor import AsyncSegmentWriter


def analytic_spec():
    return {
        "kind": "bench",
        "backend": "analytic",
        "base": {"n_threads": 2, "theta": 2, "iterations": 3},
        "axes": {
            "approach": ["pt2pt_single", "pt2pt_part", "rma_many_active"],
            "total_bytes": {"pow2": [10, 17]},
            "gamma_us_per_mb": [0.0, 200.0],
        },
    }


def pattern_spec():
    return {
        "kind": "pattern",
        "backend": "analytic",
        "base": {"n_ranks": 8, "iterations": 2},
        "axes": {
            "pattern": ["halo3d", "fft"],
            "approach": ["pt2pt_single", "pt2pt_part"],
            "msg_bytes": [16384, 1 << 20],
            "n_threads": [2, 4],
            "noise": ["none", "gaussian"],
            "noise_us": [0.0, 40.0],
        },
    }


def wide_spec(n_sizes=256):
    """A larger grid for the many-small-segments memory fixture."""
    return {
        "kind": "bench",
        "backend": "analytic",
        "base": {"theta": 2, "iterations": 3},
        "axes": {
            "approach": ["pt2pt_single", "pt2pt_part"],
            "total_bytes": {
                "range": [1024, 1024 + n_sizes * 1024, 1024]
            },
            "n_threads": [1, 2, 4, 8],
            "gamma_us_per_mb": [0.0, 100.0],
        },
    }


def segment_bytes(root):
    """{relative name: file bytes} for every segment under ``root``."""
    return {
        p.name: p.read_bytes()
        for p in (root / "segments").glob("*")
    }


class TestBinarySegments:
    def test_binary_campaign_round_trips_vs_jsonl(self, tmp_path):
        """A --binary campaign must read back exactly what the JSONL
        pipeline stores: JSON float repr round-trips bitwise, so the
        equality is exact, not approximate."""
        grid = parse_grid_spec(analytic_spec())
        plain = CampaignStore.create(tmp_path / "plain", grid)
        run_campaign(plain, chunk_points=40)
        binary = CampaignStore.create(
            tmp_path / "bin", grid, compression="binary"
        )
        run_campaign(binary, chunk_points=40)
        assert binary.compression == "binary"
        assert binary.binary
        seg_files = list((tmp_path / "bin" / "segments").glob("*"))
        assert seg_files
        assert all(p.name.endswith(".bin") for p in seg_files)
        assert dict(binary.iter_rows()) == dict(plain.iter_rows())

    def test_binary_pattern_campaign_round_trips(self, tmp_path):
        grid = parse_grid_spec(pattern_spec())
        plain = CampaignStore.create(tmp_path / "plain", grid)
        run_campaign(plain, chunk_points=48)
        binary = CampaignStore.create(
            tmp_path / "bin", grid, compression="binary"
        )
        run_campaign(binary, chunk_points=48)
        assert all(
            p.name.endswith(".bin")
            for p in (tmp_path / "bin" / "segments").glob("*")
        )
        assert dict(binary.iter_rows()) == dict(plain.iter_rows())

    def test_binary_header_is_self_describing(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(
            tmp_path / "camp", grid, compression="binary"
        )
        run_campaign(store, chunk_points=40)
        seg = sorted((tmp_path / "camp" / "segments").glob("*.bin"))[0]
        with seg.open("rb") as handle:
            header = json.loads(handle.readline())
        assert header["encoding"] == "bench-bin"
        assert header["columns"] == [["times", "<f8"]]
        assert header["count"] == 40

    def test_binary_resume_from_segments(self, tmp_path):
        """index.json is an accelerator for binary stores too: resume
        works from the .bin headers alone."""
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(
            tmp_path / "camp", grid, compression="binary"
        )
        run_campaign(store, chunk_points=64)
        (tmp_path / "camp" / "index.json").unlink()
        reopened = CampaignStore.open(tmp_path / "camp")
        assert reopened.n_completed == len(grid)
        assert run_campaign(reopened)["executed"] == 0

    def test_truncated_binary_payload_is_ignored_not_fatal(self, tmp_path):
        """A .bin whose payload is short of the header's declared
        layout must land in 'ignored' (lost coverage reruns), exactly
        like a truncated .jsonl.gz."""
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(
            tmp_path / "camp", grid, compression="binary"
        )
        run_campaign(store, chunk_points=40)
        victim = sorted((tmp_path / "camp" / "segments").glob("*.bin"))[0]
        victim.write_bytes(victim.read_bytes()[:-16])
        (tmp_path / "camp" / "index.json").unlink()
        reopened = CampaignStore.open(tmp_path / "camp")
        index = json.loads((tmp_path / "camp" / "index.json").read_text())
        assert str(victim.relative_to(tmp_path / "camp")) in index["ignored"]
        assert reopened.n_completed == len(grid) - 40
        assert run_campaign(reopened)["executed"] == 40

    def test_truncated_binary_header_is_ignored_not_fatal(self, tmp_path):
        """Truncation *inside* the header line (no trailing newline)."""
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(
            tmp_path / "camp", grid, compression="binary"
        )
        run_campaign(store, chunk_points=40)
        victim = sorted((tmp_path / "camp" / "segments").glob("*.bin"))[0]
        victim.write_bytes(victim.read_bytes()[:20])
        (tmp_path / "camp" / "index.json").unlink()
        reopened = CampaignStore.open(tmp_path / "camp")
        index = json.loads((tmp_path / "camp" / "index.json").read_text())
        assert str(victim.relative_to(tmp_path / "camp")) in index["ignored"]
        assert run_campaign(reopened)["executed"] == 40


class TestCompactBinary:
    def test_compact_binary_migrates_in_place(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        run_campaign(store, chunk_points=40)
        before = dict(store.iter_rows())
        summary = store.compact(binary=True)
        assert summary["points"] == len(grid)
        assert store.compression == "binary"  # future appends inherit
        assert all(
            p.name.endswith(".bin")
            for p in (tmp_path / "camp" / "segments").glob("*")
        )
        assert dict(store.iter_rows()) == before
        assert CampaignStore.open(tmp_path / "camp").compression == "binary"

    def test_compact_binary_false_converts_back_to_jsonl(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(
            tmp_path / "camp", grid, compression="binary"
        )
        run_campaign(store, chunk_points=40)
        before = dict(store.iter_rows())
        store.compact(binary=False)
        assert store.compression == "none"
        assert all(
            p.name.endswith(".jsonl")
            for p in (tmp_path / "camp" / "segments").glob("*")
        )
        assert dict(store.iter_rows()) == before

    def test_compact_binary_and_compress_mutually_exclusive(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        with pytest.raises(ValueError):
            store.compact(compress=True, binary=True)

    def test_compact_binary_keeps_result_rows_jsonl(self, tmp_path):
        """Full-result rows have no columnar form: under --binary they
        stay JSONL while the analytic rows go binary."""
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        run_campaign(store, chunk_points=40, limit=80)
        result_rows = [
            [i, {"times": [1.0, 2.0], "retries": 0, "verified": True}]
            for i in range(100, 110)
        ]
        store.append_chunk(result_rows, ENC_RESULT, [(100, 110)])
        before = dict(store.iter_rows())
        store.compact(binary=True)
        suffixes = {
            p.suffix for p in (tmp_path / "camp" / "segments").glob("*")
        }
        assert suffixes == {".bin", ".jsonl"}
        assert dict(store.iter_rows()) == before


class TestMixedFormatStore:
    def _append_synthetic(self, store, start, stop, scale):
        """One columnar append with values derived from the index, so
        a twin store fed the same appends holds the same rows."""
        times = [float(i) * scale for i in range(start, stop)]
        store.append_columns(start, stop, [times], ENC_BENCH_COLS)

    def _flip_compression(self, root, compression):
        """Re-point the campaign header's compression (simulating a
        store whose default changed across sessions)."""
        path = root / "campaign.json"
        header = json.loads(path.read_text())
        header["compression"] = compression
        path.write_text(json.dumps(header, sort_keys=True, indent=1) + "\n")

    def test_mixed_formats_with_overlap_match_pure_jsonl_twin(
        self, tmp_path
    ):
        """Plain, gzip, and binary segments with overlapping ranges in
        ONE store: iter_rows, query, resume, and compact --binary all
        resolve latest-append-wins and agree with a pure-JSONL twin
        fed the identical append sequence."""
        grid = parse_grid_spec(analytic_spec())
        mixed = CampaignStore.create(tmp_path / "mixed", grid)
        twin = CampaignStore.create(tmp_path / "twin", grid)
        appends = [
            (0, 20, 1.0),      # plain JSONL
            (10, 35, 2.0),     # gzip, overlaps the first
            (25, 48, 3.0),     # binary, overlaps the second
        ]
        formats = ["none", "gzip", "binary"]
        for (start, stop, scale), compression in zip(appends, formats):
            self._flip_compression(tmp_path / "mixed", compression)
            mixed = CampaignStore.open(tmp_path / "mixed")
            self._append_synthetic(mixed, start, stop, scale)
            self._append_synthetic(twin, start, stop, scale)
        suffixes = {
            p.name.split("seg-")[1][6:]
            for p in (tmp_path / "mixed" / "segments").glob("*")
        }
        assert suffixes == {".jsonl", ".jsonl.gz", ".bin"}

        expected = dict(twin.iter_rows())
        assert dict(mixed.iter_rows()) == expected
        # latest-wins on the overlaps, spot-checked directly
        assert mixed.n_completed == 48
        rows = dict(mixed.iter_rows())
        assert rows[5]["times"][0] == 5.0          # only append 1
        assert rows[15]["times"][0] == 30.0        # append 2 beats 1
        assert rows[30]["times"][0] == 90.0        # append 3 beats 2

        # query agrees across formats
        assert list(mixed.query(approach="pt2pt_part")) == list(
            twin.query(approach="pt2pt_part")
        )

        # resume: the index rebuilds from the mixed headers alone
        (tmp_path / "mixed" / "index.json").unlink()
        reopened = CampaignStore.open(tmp_path / "mixed")
        assert reopened.n_completed == 48
        assert dict(reopened.iter_rows()) == expected

        # compact --binary collapses the mix without losing latest-wins
        reopened.compact(binary=True)
        assert dict(reopened.iter_rows()) == expected
        assert all(
            p.name.endswith(".bin")
            for p in (tmp_path / "mixed" / "segments").glob("*")
        )

    def test_overlapping_appends_same_format_latest_wins(self, tmp_path):
        """The merge tiebreak alone (no format mixing): the highest
        segment sequence wins each contested index."""
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        self._append_synthetic(store, 0, 50, 1.0)
        self._append_synthetic(store, 0, 50, 2.0)
        self._append_synthetic(store, 25, 60, 5.0)
        rows = dict(store.iter_rows())
        assert len(rows) == 60
        assert rows[0]["times"][0] == 0.0
        assert rows[10]["times"][0] == 20.0
        assert rows[30]["times"][0] == 150.0
        assert rows[59]["times"][0] == 295.0


class TestQueryDigitwise:
    def test_query_matches_bruteforce_probe(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        run_campaign(store, chunk_points=40)

        def brute(**filters):
            out = []
            for index, result in store.iter_rows():
                assignment = store.assignment_at(index)
                probe = {**grid.base, **assignment}
                if all(
                    name in probe and probe[name] == value
                    for name, value in filters.items()
                ):
                    out.append((index, assignment, result))
            return out

        for filters in (
            {"approach": "pt2pt_part"},
            {"approach": "pt2pt_part", "gamma_us_per_mb": 200.0},
            {"total_bytes": 1 << 12},
            {"iterations": 3},                       # base field
            {"approach": "pt2pt_part", "iterations": 3},
        ):
            assert list(store.query(**filters)) == brute(**filters)

    def test_query_mismatches_yield_nothing(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        run_campaign(store, chunk_points=64, limit=64)
        assert list(store.query(approach="no_such_approach")) == []
        assert list(store.query(iterations=999)) == []       # base mismatch
        assert list(store.query(no_such_field=1)) == []      # unknown name


class TestAsyncSegmentWriter:
    def test_async_store_is_byte_identical_to_sync(self, tmp_path):
        """The FIFO writer thread must not change a single byte of the
        store — same segment names, same contents, same index."""
        grid = parse_grid_spec(analytic_spec())
        for compression in ("none", "binary"):
            sync = CampaignStore.create(
                tmp_path / f"sync-{compression}", grid,
                compression=compression,
            )
            run_campaign(sync, chunk_points=40, async_write=False)
            async_ = CampaignStore.create(
                tmp_path / f"async-{compression}", grid,
                compression=compression,
            )
            run_campaign(async_, chunk_points=40, async_write=True)
            assert segment_bytes(
                tmp_path / f"sync-{compression}"
            ) == segment_bytes(tmp_path / f"async-{compression}")
            assert (
                (tmp_path / f"sync-{compression}" / "index.json").read_bytes()
                == (
                    tmp_path / f"async-{compression}" / "index.json"
                ).read_bytes()
            )

    def test_writer_error_propagates_to_producer(self):
        def boom():
            raise RuntimeError("disk on fire")

        writer = AsyncSegmentWriter(depth=2)
        writer.submit(boom)
        with pytest.raises(RuntimeError, match="disk on fire"):
            # the error surfaces on a later submit or at close
            for _ in range(50):
                writer.submit(lambda: None)
            writer.close()

    def test_writer_close_reraises_and_drains(self):
        calls = []

        def boom():
            raise ValueError("first failure wins")

        writer = AsyncSegmentWriter(depth=1)
        # The error surfaces on whichever call observes it first — a
        # later submit or close — but exactly once, and the queue keeps
        # draining after the failure so the producer never deadlocks.
        with pytest.raises(ValueError, match="first failure wins"):
            writer.submit(boom)
            for _ in range(20):
                writer.submit(calls.append, 1)
            writer.close()
        writer.close()  # idempotent, error already delivered

    def test_writer_runs_fifo(self):
        order = []
        with AsyncSegmentWriter(depth=2) as writer:
            for i in range(32):
                writer.submit(order.append, i)
        assert order == list(range(32))

    def test_writer_error_fails_run_campaign(self, tmp_path, monkeypatch):
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)

        def broken_append(*args, **kwargs):
            raise OSError("no space left on device")

        monkeypatch.setattr(store, "append_columns", broken_append)
        with pytest.raises(OSError, match="no space left"):
            run_campaign(store, chunk_points=40, async_write=True)

    def test_writer_telemetry_merges_into_parent(self, tmp_path):
        """Spans recorded on the writer thread (store.encode/write/
        index) must land in the session registry at close — and the
        async gauge and queue-depth histogram must be present."""
        from repro import telemetry

        grid = parse_grid_spec(analytic_spec())
        registry = telemetry.MetricsRegistry()
        telemetry.set_registry(registry)
        try:
            store = CampaignStore.create(
                tmp_path / "camp", grid, compression="binary"
            )
            run_campaign(store, chunk_points=40, async_write=True)
            snapshot = registry.snapshot()
        finally:
            telemetry.set_registry(None)
        totals = snapshot["span_totals"]
        for name in ("store.encode", "store.write", "store.index"):
            assert name in totals, name
            assert totals[name]["count"] > 0
        assert snapshot["gauges"]["store.writer.async"] == 1
        assert "store.writer.queue_depth" in snapshot["histograms"]


class TestThreadLocalRegistry:
    def test_thread_override_isolates_and_merges(self):
        import threading

        from repro import telemetry

        main_reg = telemetry.MetricsRegistry()
        telemetry.set_registry(main_reg)
        try:
            side_reg = telemetry.MetricsRegistry()

            def worker():
                telemetry.set_thread_registry(side_reg)
                try:
                    with telemetry.span("side.work"):
                        pass
                finally:
                    telemetry.set_thread_registry(None)

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            with telemetry.span("main.work"):
                pass
            # isolation: the worker's span never touched the global
            assert "side.work" not in main_reg.snapshot()["span_totals"]
            assert "side.work" in side_reg.snapshot()["span_totals"]
            # the delta-merge protocol the writer uses
            main_reg.merge_snapshot(side_reg.snapshot_and_reset())
            assert "side.work" in main_reg.snapshot()["span_totals"]
        finally:
            telemetry.set_registry(None)


class TestStreamingMemory:
    def test_iter_rows_memory_bounded_by_segment(self, tmp_path):
        """Many small segments: a full drain must hold O(one segment),
        not the campaign — materializing every row costs several times
        the streaming peak."""
        grid = parse_grid_spec(wide_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        run_campaign(store, chunk_points=64)
        n_segments = len(list((tmp_path / "camp" / "segments").glob("*")))
        assert n_segments >= 64

        tracemalloc.start()
        count = sum(1 for _ in store.iter_rows())
        _, stream_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert count == len(grid)

        tracemalloc.start()
        rows = dict(store.iter_rows())
        _, materialized_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert len(rows) == len(grid)
        del rows
        assert stream_peak < materialized_peak / 4, (
            f"streaming drain peaked at {stream_peak} bytes vs "
            f"{materialized_peak} materialized — not O(one segment)"
        )

    def test_compact_streams_and_dedupes(self, tmp_path):
        """compact over many small overlapping segments produces the
        same rows while buffering at most one output segment."""
        grid = parse_grid_spec(wide_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        run_campaign(store, chunk_points=64)
        before = dict(store.iter_rows())

        tracemalloc.start()
        summary = store.compact()
        _, compact_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        assert summary["points"] == len(grid)
        assert summary["segments_after"] < summary["segments_before"]
        assert dict(store.iter_rows()) == before
        # one output buffer (8192 rows) dominates the bound; the whole
        # campaign would be ~len(grid) rows of decoded dicts on top
        assert compact_peak < 24 * 1024 * 1024
