"""The columnar zero-copy read pipeline (schema v2, PR 8):
``iter_columns``/``read_columns`` range-level latest-wins merge,
vectorized ``query``, npz export, binary→binary ``compact``, and the
``slice_report`` consumer."""

import json
import tracemalloc

import numpy as np
import pytest

from repro.runner import CampaignStore, parse_grid_spec, run_campaign
from repro.runner.campaign import (
    ENC_BENCH_COLS,
    ENC_RESULT,
    _index_array_to_ranges,
    _ranges_to_index_array,
    _subtract_ranges,
    slice_report,
)


def analytic_spec():
    return {
        "kind": "bench",
        "backend": "analytic",
        "base": {"n_threads": 2, "theta": 2, "iterations": 3},
        "axes": {
            "approach": ["pt2pt_single", "pt2pt_part", "rma_many_active"],
            "total_bytes": {"pow2": [10, 17]},
            "gamma_us_per_mb": [0.0, 200.0],
        },
    }


def pattern_spec():
    return {
        "kind": "pattern",
        "backend": "analytic",
        "base": {"n_ranks": 8, "iterations": 2},
        "axes": {
            "pattern": ["halo3d", "fft"],
            "approach": ["pt2pt_single", "pt2pt_part"],
            "msg_bytes": [16384, 1 << 20],
            "n_threads": [2, 4],
            "noise": ["none", "gaussian"],
            "noise_us": [0.0, 40.0],
        },
    }


def wide_spec(n_sizes=256):
    return {
        "kind": "bench",
        "backend": "analytic",
        "base": {"theta": 2, "iterations": 3},
        "axes": {
            "approach": ["pt2pt_single", "pt2pt_part"],
            "total_bytes": {
                "range": [1024, 1024 + n_sizes * 1024, 1024]
            },
            "n_threads": [1, 2, 4, 8],
            "gamma_us_per_mb": [0.0, 100.0],
        },
    }


def flip_compression(root, compression):
    """Re-point the campaign header's compression (simulating a store
    whose default changed across sessions)."""
    path = root / "campaign.json"
    header = json.loads(path.read_text())
    header["compression"] = compression
    path.write_text(json.dumps(header, sort_keys=True, indent=1) + "\n")


def mixed_overlapping_store(tmp_path):
    """Plain, gzip, and binary segments with overlapping ranges in one
    store — scales 1.0/2.0/3.0 keyed by append, latest-append-wins."""
    grid = parse_grid_spec(analytic_spec())
    store = CampaignStore.create(tmp_path / "mixed", grid)
    appends = [(0, 20, 1.0), (10, 35, 2.0), (25, 48, 3.0)]
    for (start, stop, scale), compression in zip(
        appends, ["none", "gzip", "binary"]
    ):
        flip_compression(tmp_path / "mixed", compression)
        store = CampaignStore.open(tmp_path / "mixed")
        times = [float(i) * scale for i in range(start, stop)]
        store.append_columns(start, stop, [times], ENC_BENCH_COLS)
    suffixes = {
        p.name.split("seg-")[1][6:]
        for p in (tmp_path / "mixed" / "segments").glob("*")
    }
    assert suffixes == {".jsonl", ".jsonl.gz", ".bin"}
    return store


def columns_as_dict(store, **kwargs):
    """Drain iter_columns into {index: {name: value}} for comparison."""
    out = {}
    for indices, columns in store.iter_columns(**kwargs):
        for k, index in enumerate(indices.tolist()):
            out[index] = {
                name: column[k].item()
                for name, column in columns.items()
            }
    return out


class TestRangeArithmetic:
    def test_subtract_ranges(self):
        assert _subtract_ranges(0, 10, []) == [(0, 10)]
        assert _subtract_ranges(0, 10, [(0, 10)]) == []
        assert _subtract_ranges(0, 10, [(3, 5), (7, 8)]) == [
            (0, 3), (5, 7), (8, 10),
        ]
        assert _subtract_ranges(5, 15, [(0, 7), (12, 99)]) == [(7, 12)]
        assert _subtract_ranges(5, 15, [(0, 3)]) == [(5, 15)]

    def test_index_array_round_trip(self):
        ranges = [(0, 3), (7, 8), (20, 25)]
        indices = _ranges_to_index_array(ranges)
        assert indices.tolist() == [0, 1, 2, 7, 20, 21, 22, 23, 24]
        assert _index_array_to_ranges(indices) == ranges
        assert _ranges_to_index_array([]).tolist() == []
        assert _index_array_to_ranges(np.empty(0, dtype=np.int64)) == []


class TestIterColumnsEquivalence:
    def test_matches_iter_rows_on_mixed_overlapping_store(self, tmp_path):
        """The range-level merge must resolve the same latest-wins
        duplicates the per-row heap merge does — value-identical on a
        store mixing plain/gzip/binary segments with overlaps."""
        store = mixed_overlapping_store(tmp_path)
        rows = dict(store.iter_rows())
        cols = columns_as_dict(store, chunk_size=7)
        assert sorted(cols) == sorted(rows)
        for index, values in cols.items():
            assert values["times"] == rows[index]["times"][0]
        # latest-wins on the overlaps, spot-checked directly
        assert cols[5]["times"] == 5.0          # only append 1
        assert cols[15]["times"] == 30.0        # append 2 beats 1
        assert cols[30]["times"] == 90.0        # append 3 beats 2

    def test_matches_iter_rows_on_pattern_store(self, tmp_path):
        grid = parse_grid_spec(pattern_spec())
        store = CampaignStore.create(
            tmp_path / "camp", grid, compression="binary"
        )
        run_campaign(store, chunk_points=48)
        rows = dict(store.iter_rows())
        cols = columns_as_dict(store)
        assert sorted(cols) == sorted(rows)
        for index, values in cols.items():
            assert values["times"] == rows[index]["times"][0]
            assert (
                values["bytes_per_iteration"]
                == rows[index]["bytes_per_iteration"]
            )
            assert values["n_links"] == rows[index]["n_links"]

    def test_chunk_sizes_agree_and_bound_chunks(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(
            tmp_path / "camp", grid, compression="binary"
        )
        run_campaign(store, chunk_points=40)
        whole_idx, whole_cols = store.read_columns()
        assert len(whole_idx) == len(grid)
        for chunk_size in (1, 7, 64, 10**6):
            chunks = list(store.iter_columns(chunk_size=chunk_size))
            sizes = [len(indices) for indices, _ in chunks]
            assert all(n <= chunk_size for n in sizes)
            assert all(n == chunk_size for n in sizes[:-1])
            assert np.array_equal(
                np.concatenate([i for i, _ in chunks]), whole_idx
            )
            assert np.array_equal(
                np.concatenate([c["times"] for _, c in chunks]),
                whole_cols["times"],
            )

    def test_read_columns_empty_store(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        indices, columns = store.read_columns()
        assert len(indices) == 0
        assert columns["times"].dtype == np.dtype("<f8")
        assert list(store.iter_columns()) == []

    def test_result_rows_have_no_columnar_form(self, tmp_path):
        """Full-result rows carry no fixed column schema: iter_columns
        refuses, iter_rows/query still work."""
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        rows = [
            [i, {"times": [1.0, 2.0], "retries": 0, "verified": True}]
            for i in range(4)
        ]
        store.append_chunk(rows, ENC_RESULT, [(0, 4)])
        with pytest.raises(ValueError, match="iter_rows"):
            list(store.iter_columns())
        assert len(dict(store.iter_rows())) == 4
        assert len(list(store.query(approach="pt2pt_single"))) > 0


class TestWhereFilter:
    def test_where_matches_query_indices(self, tmp_path):
        store = mixed_overlapping_store(tmp_path)
        for filters in (
            {"approach": "pt2pt_part"},
            {"approach": "pt2pt_part", "gamma_us_per_mb": 200.0},
            {"total_bytes": 1 << 12},
            {"iterations": 3},                        # base field
        ):
            expected = [i for i, _, _ in store.query(**filters)]
            indices, _ = store.read_columns(where=filters)
            assert indices.tolist() == expected

    def test_never_matching_filters_yield_nothing(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        run_campaign(store, chunk_points=64, limit=64)
        for filters in (
            {"approach": "no_such_approach"},
            {"iterations": 999},
            {"no_such_field": 1},
        ):
            indices, _ = store.read_columns(where=filters)
            assert len(indices) == 0


class TestVectorizedQuery:
    def test_query_matches_bruteforce_on_binary_store(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(
            tmp_path / "camp", grid, compression="binary"
        )
        run_campaign(store, chunk_points=40)

        def brute(**filters):
            out = []
            for index, result in store.iter_rows():
                assignment = store.assignment_at(index)
                probe = {**grid.base, **assignment}
                if all(
                    name in probe and probe[name] == value
                    for name, value in filters.items()
                ):
                    out.append((index, assignment, result))
            return out

        for filters in (
            {"approach": "pt2pt_part"},
            {"approach": "pt2pt_part", "gamma_us_per_mb": 200.0},
            {"iterations": 3},
            {},
        ):
            assert list(store.query(**filters)) == brute(**filters)

    def test_query_decodes_only_matches(self, tmp_path, monkeypatch):
        """The filter runs before any decode: on a filtered query, the
        number of _decode_row calls equals the number of matches, not
        the number of covered points — on both the columnar path and
        the row-stream path."""
        grid = parse_grid_spec(analytic_spec())
        columnar = CampaignStore.create(tmp_path / "cols", grid)
        run_campaign(columnar, chunk_points=40)
        rowform = CampaignStore.create(tmp_path / "rows", grid)
        rows = [
            [i, {"times": [float(i)], "retries": 0, "verified": True}]
            for i in range(len(grid))
        ]
        rowform.append_chunk(rows, ENC_RESULT, [(0, len(grid))])

        calls = {"n": 0}
        real_decode = CampaignStore._decode_row

        def counting_decode(self, row, encoding):
            calls["n"] += 1
            return real_decode(self, row, encoding)

        monkeypatch.setattr(CampaignStore, "_decode_row", counting_decode)
        for store in (columnar, rowform):
            calls["n"] = 0
            matches = list(store.query(approach="pt2pt_part"))
            assert 0 < len(matches) < len(grid)
            assert calls["n"] == len(matches)


class TestSegmentRowStreaming:
    def _rewrite_segment_body(self, store, transform):
        """Rewrite the single segment's body lines through
        ``transform`` (header kept), then rebuild the index."""
        seg = sorted((store.root / "segments").glob("*.jsonl"))[0]
        header, *body = seg.read_text().strip().split("\n")
        seg.write_text("\n".join([header] + transform(body)) + "\n")
        store.rebuild_index()
        return seg

    def _mean_row_store(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        times = [float(i) for i in range(20)]
        # *-mean rows (not the columnar form): chunk written via the
        # row dialect so the segment holds one JSON row per line
        rows = [[i, times[i]] for i in range(20)]
        store.append_chunk(rows, "bench-mean", [(0, 20)])
        return store

    def test_unsorted_segment_falls_back_and_sorts(self, tmp_path):
        store = self._mean_row_store(tmp_path)
        before = dict(store.iter_rows())
        self._rewrite_segment_body(
            store, lambda body: list(reversed(body))
        )
        assert dict(store.iter_rows()) == before

    def test_same_index_duplicates_later_wins(self, tmp_path):
        """Within one segment the later file position wins — in both
        the sorted streaming path and the sort fallback."""
        store = self._mean_row_store(tmp_path)
        # sorted order with adjacent duplicates: [5, 1.0] then [5, 99.0]
        self._rewrite_segment_body(
            store,
            lambda body: body[:6] + ["[5,99.0]"] + body[6:],
        )
        assert dict(store.iter_rows())[5]["times"][0] == 99.0
        # unsorted: the duplicate lands early in the file, the original
        # [5, 5.0] later — later position still wins after the sort
        self._rewrite_segment_body(
            store,
            lambda body: ["[5,123.0]"] + [
                line for line in body if not line.startswith("[5,99")
            ],
        )
        assert dict(store.iter_rows())[5]["times"][0] == 5.0


class TestChunkBoundedMemory:
    def test_iter_columns_memory_bounded_by_chunk(self, tmp_path):
        """A chunked columnar drain must hold O(one chunk), not the
        campaign: materializing every column via read_columns costs
        several times the streaming peak."""
        grid = parse_grid_spec(wide_spec())
        store = CampaignStore.create(
            tmp_path / "camp", grid, compression="binary"
        )
        run_campaign(store, chunk_points=64, async_write=False)
        n_segments = len(list((tmp_path / "camp" / "segments").glob("*")))
        assert n_segments >= 64

        tracemalloc.start()
        count = sum(
            len(indices)
            for indices, _ in store.iter_columns(chunk_size=128)
        )
        _, stream_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert count == len(grid)

        tracemalloc.start()
        indices, columns = store.read_columns()
        _, materialized_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert len(indices) == len(grid)
        del indices, columns
        assert stream_peak < materialized_peak / 4, (
            f"chunked columnar drain peaked at {stream_peak} bytes vs "
            f"{materialized_peak} materialized — not O(one chunk)"
        )


class TestCompactBinaryZeroDecode:
    def test_binary_to_binary_moves_columns_without_rows(
        self, tmp_path, monkeypatch
    ):
        """compact --binary over an all-columnar store must never touch
        the row machinery: no _segment_rows, no _merged_rows, no
        _decode_row — column blocks move as array slices."""
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(
            tmp_path / "camp", grid, compression="binary"
        )
        run_campaign(store, chunk_points=40)
        before = dict(store.iter_rows())
        n_before = len(list((tmp_path / "camp" / "segments").glob("*")))
        assert n_before > 1

        def forbidden(self, *args, **kwargs):
            raise AssertionError(
                "binary→binary compact touched the row path"
            )

        for name in ("_segment_rows", "_merged_rows", "_decode_row"):
            monkeypatch.setattr(CampaignStore, name, forbidden)
        summary = store.compact(binary=True)
        monkeypatch.undo()

        assert summary["points"] == len(grid)
        assert summary["segments_after"] < n_before
        seg_files = list((tmp_path / "camp" / "segments").glob("*"))
        assert all(p.name.endswith(".bin") for p in seg_files)
        assert dict(store.iter_rows()) == before

    def test_mixed_to_binary_uses_columnar_path_and_dedupes(
        self, tmp_path
    ):
        store = mixed_overlapping_store(tmp_path)
        before = dict(store.iter_rows())
        summary = store.compact(binary=True)
        assert summary["points"] == 48
        assert all(
            p.name.endswith(".bin")
            for p in (store.root / "segments").glob("*")
        )
        assert dict(store.iter_rows()) == before
        assert store.compression == "binary"


class TestNpzExport:
    def test_round_trip_with_axis_decode(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(
            tmp_path / "camp", grid, compression="binary"
        )
        run_campaign(store, chunk_points=40)
        out = tmp_path / "dump.npz"
        count = store.export_npz(out, where={"approach": "pt2pt_part"})
        expected = list(store.query(approach="pt2pt_part"))
        assert count == len(expected)

        data = np.load(out, allow_pickle=True)
        assert data["indices"].tolist() == [i for i, _, _ in expected]
        assert set(data["axis_approach"]) == {"pt2pt_part"}
        for k, (index, assignment, result) in enumerate(expected):
            assert data["times"][k] == result["times"][0]
            assert (
                data["axis_total_bytes"][k] == assignment["total_bytes"]
            )
            assert (
                data["axis_gamma_us_per_mb"][k]
                == assignment["gamma_us_per_mb"]
            )


class TestSliceReport:
    def test_groups_match_bruteforce(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        run_campaign(store, chunk_points=40)
        report = slice_report(store, {"approach": "pt2pt_part"})
        matches = list(store.query(approach="pt2pt_part"))
        assert report["points"] == len(matches)
        assert "approach" not in report["axes"]

        by_gamma = {}
        for _, assignment, result in matches:
            by_gamma.setdefault(assignment["gamma_us_per_mb"], []).append(
                result["times"][0]
            )
        groups = {g["value"]: g for g in report["axes"]["gamma_us_per_mb"]}
        assert set(groups) == set(by_gamma)
        for value, times in by_gamma.items():
            group = groups[value]
            assert group["n"] == len(times)
            assert group["mean_us"] == pytest.approx(
                1e6 * sum(times) / len(times)
            )
            assert group["min_us"] == pytest.approx(1e6 * min(times))
            assert group["max_us"] == pytest.approx(1e6 * max(times))

    def test_empty_slice(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        store = CampaignStore.create(tmp_path / "camp", grid)
        report = slice_report(store)
        assert report["points"] == 0
        assert "times_us" not in report


class TestVectorizedAxisCodes:
    def test_matches_assignment_at(self, tmp_path):
        grid = parse_grid_spec(analytic_spec())
        indices = np.array([0, 3, 17, len(grid) - 1], dtype=np.int64)
        codes = grid.axis_codes_for_indices(indices)
        for k, index in enumerate(indices.tolist()):
            assignment = grid.assignment_at(index)
            for name, values in grid.axes.items():
                assert values[int(codes[name][k])] == assignment[name]
