"""Shared store I/O helpers: atomic writes, gzip transparency, the
path-or-handle JSONL contract."""

import gzip
import io
import json

import pytest

from repro.runner.io import atomic_write_text, open_segment_text, write_jsonl


class TestAtomicWrite:
    def test_writes_and_creates_parents(self, tmp_path):
        target = tmp_path / "a" / "b" / "file.txt"
        atomic_write_text(target, "hello\n")
        assert target.read_text() == "hello\n"

    def test_replaces_whole_file(self, tmp_path):
        target = tmp_path / "file.txt"
        atomic_write_text(target, "first version, long content\n")
        atomic_write_text(target, "v2\n")
        assert target.read_text() == "v2\n"

    def test_no_temp_litter(self, tmp_path):
        target = tmp_path / "file.txt"
        atomic_write_text(target, "x\n")
        assert [p.name for p in tmp_path.iterdir()] == ["file.txt"]

    def test_gzip_bytes_deterministic(self, tmp_path):
        """Identical text must give identical compressed bytes (mtime
        pinned to 0) — the campaign byte-identity invariant."""
        a, b = tmp_path / "a.gz", tmp_path / "b.gz"
        atomic_write_text(a, "same text\n", compress=True)
        atomic_write_text(b, "same text\n", compress=True)
        assert a.read_bytes() == b.read_bytes()
        assert gzip.decompress(a.read_bytes()) == b"same text\n"


class TestOpenSegmentText:
    def test_plain_and_gzip_read_identically(self, tmp_path):
        plain = tmp_path / "seg.jsonl"
        gz = tmp_path / "seg.jsonl.gz"
        atomic_write_text(plain, "line1\nline2\n")
        atomic_write_text(gz, "line1\nline2\n", compress=True)
        with open_segment_text(plain) as h:
            plain_lines = h.readlines()
        with open_segment_text(gz) as h:
            gz_lines = h.readlines()
        assert plain_lines == gz_lines == ["line1\n", "line2\n"]

    def test_corrupt_gzip_raises_oserror(self, tmp_path):
        bad = tmp_path / "seg.jsonl.gz"
        bad.write_bytes(b"not gzip at all")
        with pytest.raises(OSError):
            with open_segment_text(bad) as h:
                h.readline()


class TestWriteJsonl:
    RECORDS = [{"b": 2, "a": 1}, {"x": [1, 2]}]

    def test_path_target(self, tmp_path):
        target = tmp_path / "out" / "dump.jsonl"
        assert write_jsonl(target, self.RECORDS) == 2
        lines = target.read_text().splitlines()
        assert json.loads(lines[0]) == {"a": 1, "b": 2}
        assert lines[0] == '{"a":1,"b":2}'  # sorted, compact

    def test_handle_target_left_open(self):
        buffer = io.StringIO()
        assert write_jsonl(buffer, self.RECORDS) == 2
        assert not buffer.closed
        assert len(buffer.getvalue().splitlines()) == 2

    def test_custom_encoder(self):
        buffer = io.StringIO()
        write_jsonl(buffer, [[1, 2.5]], encode=lambda r: repr(r))
        assert buffer.getvalue() == "[1, 2.5]\n"
