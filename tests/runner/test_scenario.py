"""Scenario protocol: grid expansion, serialization, content hashing."""

import pytest

from repro.apps import PatternConfig
from repro.bench import BenchSpec
from repro.mpi import Cvars
from repro.net import SystemParams
from repro.runner import Scenario, ScenarioGrid, scenario_for


class TestScenarioSerialization:
    def test_bench_round_trip(self):
        spec = BenchSpec(
            approach="pt2pt_part",
            total_bytes=4096,
            n_threads=4,
            theta=2,
            iterations=5,
            gamma_us_per_mb=100.0,
            cvars=Cvars(num_vcis=4),
            seed=7,
        )
        scenario = scenario_for(spec)
        assert scenario.kind == "bench"
        rebuilt = Scenario.from_dict(scenario.to_dict())
        assert rebuilt == scenario
        assert rebuilt.spec == spec

    def test_pattern_round_trip(self):
        config = PatternConfig(
            pattern="halo3d",
            approach="pt2pt_part",
            n_ranks=4,
            n_threads=2,
            msg_bytes=8192,
            iterations=3,
            noise="uniform",
            noise_us=5.0,
            seed=3,
        )
        scenario = scenario_for(config)
        assert scenario.kind == "pattern"
        rebuilt = Scenario.from_dict(scenario.to_dict())
        assert rebuilt.spec == config

    def test_nested_params_round_trip(self):
        params = SystemParams(bandwidth=10e9, latency=2e-6)
        spec = BenchSpec(
            approach="pt2pt_single", total_bytes=64, params=params
        )
        rebuilt = Scenario.from_dict(scenario_for(spec).to_dict())
        assert rebuilt.spec.params == params

    def test_unknown_spec_type_rejected(self):
        with pytest.raises(TypeError):
            scenario_for(object())

    def test_unknown_schema_rejected(self):
        payload = scenario_for(
            BenchSpec(approach="pt2pt_single", total_bytes=64)
        ).to_dict()
        payload["schema"] = "bogus/v0"
        with pytest.raises(ValueError):
            Scenario.from_dict(payload)


class TestContentHash:
    def test_stable_across_instances(self):
        a = scenario_for(BenchSpec(approach="pt2pt_single", total_bytes=64))
        b = scenario_for(BenchSpec(approach="pt2pt_single", total_bytes=64))
        assert a.content_hash() == b.content_hash()

    def test_any_param_changes_the_hash(self):
        base = BenchSpec(approach="pt2pt_single", total_bytes=64)
        variants = [
            BenchSpec(approach="pt2pt_part", total_bytes=64),
            BenchSpec(approach="pt2pt_single", total_bytes=128),
            BenchSpec(approach="pt2pt_single", total_bytes=64, seed=1),
            BenchSpec(
                approach="pt2pt_single",
                total_bytes=64,
                cvars=Cvars(num_vcis=2),
            ),
            BenchSpec(
                approach="pt2pt_single",
                total_bytes=64,
                params=SystemParams(bandwidth=1e9),
            ),
        ]
        hashes = {scenario_for(s).content_hash() for s in [base] + variants}
        assert len(hashes) == len(variants) + 1

    def test_bench_and_pattern_never_collide(self):
        bench = scenario_for(BenchSpec(approach="pt2pt_single", total_bytes=64))
        pattern = scenario_for(PatternConfig(pattern="halo3d"))
        assert bench.content_hash() != pattern.content_hash()


class TestScenarioGrid:
    def test_row_major_expansion_order(self):
        grid = ScenarioGrid(
            "bench",
            base={"iterations": 1},
            axes={
                "approach": ["pt2pt_single", "pt2pt_part"],
                "total_bytes": [64, 128],
            },
        )
        points = [
            (s.spec.approach, s.spec.total_bytes) for s in grid.expand()
        ]
        assert points == [
            ("pt2pt_single", 64),
            ("pt2pt_single", 128),
            ("pt2pt_part", 64),
            ("pt2pt_part", 128),
        ]
        assert len(grid) == 4

    def test_base_fields_applied_everywhere(self):
        grid = ScenarioGrid(
            "pattern",
            base={"n_ranks": 4, "iterations": 2},
            axes={"pattern": ["halo3d", "fft"]},
        )
        for scenario in grid.expand():
            assert scenario.spec.n_ranks == 4
            assert scenario.spec.iterations == 2

    def test_axis_clashing_with_base_rejected(self):
        with pytest.raises(ValueError):
            ScenarioGrid(
                "bench",
                base={"approach": "pt2pt_single"},
                axes={"approach": ["pt2pt_part"]},
            )

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            ScenarioGrid("bench", axes={"total_bytes": []})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ScenarioGrid("nope")
