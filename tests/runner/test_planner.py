"""Planner: chunk partitioning, pool policies, auto-serial fallback."""

import pytest

from repro.bench import BenchSpec
from repro.runner import (
    ScenarioGrid,
    plan_execution,
    run_scenarios,
    scenario_for,
)
from repro.runner.planner import (
    MAX_CHUNK_POINTS,
    auto_chunk_size,
    auto_submit_window,
    pool_workers,
)


def bench_scenarios(n, backend="sim"):
    return [
        scenario_for(
            BenchSpec(
                approach="pt2pt_single",
                total_bytes=1024 * (i + 1),
                iterations=1,
            ),
            backend=backend,
        )
        for i in range(n)
    ]


class TestAutoChunkSize:
    def test_small_grids_get_single_point_chunks(self):
        assert auto_chunk_size(4, 4) == 1

    def test_large_grids_cap_at_max(self):
        assert auto_chunk_size(10_000_000, 4) == MAX_CHUNK_POINTS

    def test_a_few_chunks_per_worker(self):
        # 256 points over 4 workers -> 16 per chunk = 4 chunks/worker.
        assert auto_chunk_size(256, 4) == 16


class TestPlanning:
    def test_inline_backend_is_one_chunk(self):
        batch = bench_scenarios(10, backend="analytic")
        plan = plan_execution(batch, range(10), jobs=4, cpu_count=8)
        assert len(plan.inline_chunks) == 1
        assert plan.inline_chunks[0].indices == tuple(range(10))
        assert plan.pool_chunks == []
        assert not plan.use_pool

    def test_pooled_chunks_cover_pending_in_order(self):
        batch = bench_scenarios(10)
        plan = plan_execution(
            batch, range(10), jobs=2, chunk_size=4, cpu_count=8
        )
        covered = [i for chunk in plan.pool_chunks for i in chunk.indices]
        assert covered == list(range(10))
        assert [len(c) for c in plan.pool_chunks] == [4, 4, 2]
        assert plan.use_pool

    def test_mixed_backends_split_into_inline_and_pooled(self):
        batch = bench_scenarios(4) + bench_scenarios(4, backend="analytic")
        plan = plan_execution(batch, range(8), jobs=2, cpu_count=8)
        assert plan.inline_points == 4
        assert plan.pooled_points == 4
        assert all(c.backend == "analytic" for c in plan.inline_chunks)
        assert all(c.backend == "sim" for c in plan.pool_chunks)

    def test_tiny_grid_falls_back_to_serial(self):
        batch = bench_scenarios(3)
        plan = plan_execution(batch, range(3), jobs=4, cpu_count=8)
        assert not plan.use_pool  # 3 points cannot feed two workers

    def test_underfed_pool_shrinks_instead_of_abandoning(self):
        # 13 points with 16 workers available: the auto policy keeps
        # the pool but shrinks it so every worker gets >= 2 points.
        batch = bench_scenarios(13)
        plan = plan_execution(batch, range(13), jobs=16, cpu_count=16)
        assert plan.use_pool
        assert plan.workers == 6
        # With a comfortable points-per-worker ratio, no shrink.
        plan = plan_execution(batch, range(13), jobs=4, cpu_count=16)
        assert plan.use_pool and plan.workers == 4

    def test_single_cpu_falls_back_to_serial(self):
        batch = bench_scenarios(64)
        plan = plan_execution(batch, range(64), jobs=4, cpu_count=1)
        assert plan.workers == 1
        assert not plan.use_pool

    def test_always_policy_forces_pool_regardless_of_cpus(self):
        batch = bench_scenarios(4)
        plan = plan_execution(
            batch, range(4), jobs=2, pool="always", cpu_count=1
        )
        assert plan.use_pool and plan.workers == 2

    def test_never_policy_disables_pool(self):
        batch = bench_scenarios(64)
        plan = plan_execution(
            batch, range(64), jobs=4, pool="never", cpu_count=8
        )
        assert not plan.use_pool

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            plan_execution(bench_scenarios(2), range(2), jobs=1, pool="bogus")


class TestPoolWorkers:
    """The whole-campaign pool decision mirrors plan_execution's
    per-batch policy exactly."""

    def test_matches_plan_execution_policy(self):
        scenarios = bench_scenarios(40)
        for jobs, pool, cpus in [
            (4, "auto", 8), (4, "auto", 1), (4, "always", 1),
            (8, "never", 8), (2, "auto", 8),
        ]:
            plan = plan_execution(
                scenarios, range(len(scenarios)), jobs,
                pool=pool, cpu_count=cpus,
            )
            workers, use_pool = pool_workers(
                len(scenarios), jobs, pool, cpu_count=cpus
            )
            assert (workers, use_pool) == (plan.workers, plan.use_pool)

    def test_tiny_workload_serial_fallback(self):
        workers, use_pool = pool_workers(3, 8, "auto", cpu_count=16)
        assert workers == 1 and not use_pool

    def test_always_ignores_cpu_count(self):
        workers, use_pool = pool_workers(40, 4, "always", cpu_count=1)
        assert workers == 4 and use_pool

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            pool_workers(10, 2, "bogus")


class TestAutoSubmitWindow:
    def test_two_chunks_per_worker(self):
        assert auto_submit_window(4) == 8
        assert auto_submit_window(1) == 2

    def test_floor_of_two(self):
        assert auto_submit_window(0) == 2


class TestChunkedExecution:
    def grid(self):
        return ScenarioGrid(
            "bench",
            base={"iterations": 2, "n_threads": 2, "theta": 1},
            axes={
                "approach": ["pt2pt_single", "pt2pt_part"],
                "total_bytes": [1024, 65536],
            },
        ).expand()

    def test_forced_pool_byte_identical_to_serial(self):
        scenarios = self.grid()
        serial = run_scenarios(scenarios, jobs=1)
        pooled = run_scenarios(
            scenarios, jobs=2, chunk_size=2, pool="always"
        )
        assert pooled.pool_used and not serial.pool_used
        assert serial.canonical_json() == pooled.canonical_json()

    def test_report_counts_chunks(self):
        scenarios = self.grid()
        report = run_scenarios(scenarios, jobs=1, chunk_size=3)
        assert report.chunks == 2  # 4 points in chunks of 3
