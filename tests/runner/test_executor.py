"""Executor: parallel-equals-serial determinism, caching, resume."""

import pytest

from repro.apps import PatternConfig
from repro.bench import BenchSpec
from repro.runner import (
    ParallelExecutor,
    ResultStore,
    ScenarioGrid,
    run_scenarios,
    run_specs,
    scenario_for,
)


def mixed_grid():
    """A small bench × pattern mix: the fixed determinism fixture."""
    bench = ScenarioGrid(
        "bench",
        base={"iterations": 2, "n_threads": 2, "theta": 1},
        axes={
            "approach": ["pt2pt_single", "pt2pt_part", "pt2pt_many"],
            "total_bytes": [1024, 65536],
        },
    )
    pattern = ScenarioGrid(
        "pattern",
        base={
            "n_ranks": 4,
            "n_threads": 2,
            "msg_bytes": 4096,
            "iterations": 2,
            "compute_us_per_mb": 200.0,
        },
        axes={
            "pattern": ["halo3d", "fft"],
            "approach": ["pt2pt_part", "pt2pt_single"],
        },
    )
    return bench.expand() + pattern.expand()


class TestIterChunkResults:
    """The campaign submit-ahead pipeline primitive: ordered delivery,
    pooled-equals-serial, lazy payload consumption."""

    def payload_chunks(self, scenarios, chunk):
        return [
            [s.to_dict() for s in scenarios[i:i + chunk]]
            for i in range(0, len(scenarios), chunk)
        ]

    def test_pooled_matches_serial_in_order(self):
        from repro.runner.executor import iter_chunk_results

        scenarios = mixed_grid()[:6]
        chunks = self.payload_chunks(scenarios, 2)
        serial = list(
            iter_chunk_results(iter(chunks), workers=1, window=2,
                               use_pool=False)
        )
        pooled = list(
            iter_chunk_results(iter(chunks), workers=2, window=2,
                               use_pool=True)
        )
        assert serial == pooled
        assert len(serial) == len(chunks)

    def test_lazy_submission_is_window_bounded(self):
        from repro.runner.executor import iter_chunk_results

        scenarios = mixed_grid()[:6]
        chunks = self.payload_chunks(scenarios, 1)
        pulled = []

        def tracking():
            for i, chunk in enumerate(chunks):
                pulled.append(i)
                yield chunk

        results = iter_chunk_results(
            tracking(), workers=2, window=2, use_pool=True
        )
        first = next(results)
        # With a window of 2, taking the first result cannot have
        # forced the whole stream to be materialized.
        assert len(pulled) < len(chunks)
        rest = list(results)
        assert len(rest) == len(chunks) - 1
        assert first is not None

    def test_empty_stream(self):
        from repro.runner.executor import iter_chunk_results

        assert list(
            iter_chunk_results(iter([]), workers=2, window=4)
        ) == []


class TestDeterminism:
    def test_parallel_identical_to_serial(self):
        scenarios = mixed_grid()
        serial = run_scenarios(scenarios, jobs=1)
        parallel = run_scenarios(scenarios, jobs=4)
        assert serial.jobs == 1 and parallel.jobs == 4
        # Byte-identical serialized results, point for point.
        assert serial.canonical_json() == parallel.canonical_json()

    def test_results_in_submission_order(self):
        specs = [
            BenchSpec(
                approach="pt2pt_single", total_bytes=size, iterations=1
            )
            for size in (65536, 64, 16384, 1024)
        ]
        results = run_specs(specs, jobs=3)
        assert [r.spec.total_bytes for r in results] == [
            65536, 64, 16384, 1024,
        ]

    def test_mixed_specs_accepted(self):
        results = run_specs(
            [
                BenchSpec(
                    approach="pt2pt_single", total_bytes=64, iterations=1
                ),
                PatternConfig(
                    pattern="halo3d",
                    n_ranks=4,
                    n_threads=1,
                    msg_bytes=1024,
                    iterations=1,
                ),
            ],
            jobs=1,
        )
        assert results[0].spec.total_bytes == 64
        assert results[1].config.pattern == "halo3d"


class TestStoreAndResume:
    def test_store_populated_on_run(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        scenarios = mixed_grid()
        report = run_scenarios(scenarios, jobs=1, store=store)
        assert report.executed == len(scenarios)
        assert len(store) == len(scenarios)

    def test_resume_runs_nothing_on_warm_store(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        scenarios = mixed_grid()
        cold = run_scenarios(scenarios, jobs=1, store=store)
        warm = run_scenarios(scenarios, jobs=1, store=store, resume=True)
        assert warm.executed == 0
        assert warm.cached == len(scenarios)
        assert warm.canonical_json() == cold.canonical_json()

    def test_partial_resume_runs_only_cold_points(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        scenarios = mixed_grid()
        half = scenarios[: len(scenarios) // 2]
        run_scenarios(half, jobs=1, store=store)
        report = run_scenarios(scenarios, jobs=1, store=store, resume=True)
        assert report.cached == len(half)
        assert report.executed == len(scenarios) - len(half)

    def test_without_resume_store_is_write_only(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        scenario = scenario_for(
            BenchSpec(approach="pt2pt_single", total_bytes=64, iterations=1)
        )
        run_scenarios([scenario], jobs=1, store=store)
        report = run_scenarios([scenario], jobs=1, store=store)
        assert report.executed == 1  # recomputed despite the warm store
        assert report.cached == 0


class TestExecutorConfig:
    def test_jobs_default_is_cpu_count(self):
        import os

        assert ParallelExecutor().jobs == (os.cpu_count() or 1)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=0)

    def test_constructor_defaults_used_by_run(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        executor = ParallelExecutor(jobs=1, store=store, resume=True)
        scenario = scenario_for(
            BenchSpec(approach="pt2pt_single", total_bytes=64, iterations=1)
        )
        first = executor.run([scenario])
        second = executor.run([scenario])
        assert first.executed == 1
        assert second.executed == 0 and second.cached == 1
