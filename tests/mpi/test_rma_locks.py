"""Concurrency semantics of real (non-NOCHECK) RMA locks."""

import numpy as np
import pytest

from repro.mpi import (
    Cvars,
    LOCK_EXCLUSIVE,
    LOCK_SHARED,
    MPIWorld,
)
from repro.mpi.rma import _LockManager, win_create


class TestLockManager:
    def test_exclusive_blocks_everything(self):
        mgr = _LockManager()
        mgr.grant(0, LOCK_EXCLUSIVE)
        assert not mgr.can_grant(LOCK_SHARED)
        assert not mgr.can_grant(LOCK_EXCLUSIVE)

    def test_shared_allows_shared_blocks_exclusive(self):
        mgr = _LockManager()
        mgr.grant(0, LOCK_SHARED)
        assert mgr.can_grant(LOCK_SHARED)
        assert not mgr.can_grant(LOCK_EXCLUSIVE)

    def test_release_grants_queued_in_order(self):
        mgr = _LockManager()
        mgr.grant(0, LOCK_EXCLUSIVE)
        mgr.queue.append((1, LOCK_SHARED, 0))
        mgr.queue.append((2, LOCK_SHARED, 0))
        mgr.queue.append((3, LOCK_EXCLUSIVE, 0))
        granted = mgr.release(0)
        # Both shared grants flow; the exclusive stays queued.
        assert [g[0] for g in granted] == [1, 2]
        assert mgr.queue == [(3, LOCK_EXCLUSIVE, 0)]

    def test_empty_release_grants_nothing(self):
        mgr = _LockManager()
        mgr.grant(0, LOCK_SHARED)
        assert mgr.release(0) == []


class TestExclusiveSerialization:
    def test_two_origins_serialize_on_exclusive_lock(self):
        """Three ranks: 1 and 2 both take an exclusive lock on rank 0's
        window; their epochs must not overlap."""
        world = MPIWorld(n_ranks=3, cvars=Cvars(verify_payloads=True))
        buf = np.zeros(8, dtype=np.uint8)
        spans = {}

        def origin(world, rank, hold_us):
            comm = world.comm_world(rank)
            win = yield from win_create(comm, 8)
            yield from win.lock(0, LOCK_EXCLUSIVE)
            t0 = world.env.now
            yield world.env.timeout(hold_us * 1e-6)
            yield from win.put(0, 0, 8, np.full(8, rank, np.uint8))
            yield from win.unlock(0)
            spans[rank] = (t0, world.env.now)

        def target(world):
            comm = world.comm_world(0)
            yield from win_create(comm, 8, buf)

        world.launch(0, target(world))
        world.launch(1, origin(world, 1, 20.0))
        world.launch(2, origin(world, 2, 20.0))
        world.run()
        (a0, a1), (b0, b1) = spans[1], spans[2]
        assert a1 <= b0 or b1 <= a0, f"epochs overlap: {spans}"

    def test_shared_locks_overlap(self):
        world = MPIWorld(n_ranks=3, cvars=Cvars(verify_payloads=True))
        buf = np.zeros(8, dtype=np.uint8)
        spans = {}

        def origin(world, rank):
            comm = world.comm_world(rank)
            win = yield from win_create(comm, 8)
            yield from win.lock(0, LOCK_SHARED)
            t0 = world.env.now
            yield world.env.timeout(20e-6)
            yield from win.unlock(0)
            spans[rank] = (t0, world.env.now)

        def target(world):
            comm = world.comm_world(0)
            yield from win_create(comm, 8, buf)

        world.launch(0, target(world))
        world.launch(1, origin(world, 1))
        world.launch(2, origin(world, 2))
        world.run()
        (a0, a1), (b0, b1) = spans[1], spans[2]
        assert a0 < b1 and b0 < a1, f"shared epochs did not overlap: {spans}"
