"""Unit tests for the tag-matching engine."""

import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, MatchKey, MatchingEngine
from repro.mpi.matching import PostedRecv, UnexpectedMsg


def key(ctx=0, src=0, tag=0):
    return MatchKey(ctx, src, tag)


def posted(k, req="req"):
    return PostedRecv(key=k, request=req)


def unexpected(k, pkt="pkt"):
    return UnexpectedMsg(key=k, packet=pkt)


class TestMatchKey:
    def test_exact_match(self):
        assert key(1, 2, 3).matches(key(1, 2, 3))

    def test_context_mismatch(self):
        assert not key(1, 2, 3).matches(key(9, 2, 3))

    def test_source_mismatch(self):
        assert not key(1, 2, 3).matches(key(1, 9, 3))

    def test_tag_mismatch(self):
        assert not key(1, 2, 3).matches(key(1, 2, 9))

    def test_any_source_wildcard(self):
        assert key(1, ANY_SOURCE, 3).matches(key(1, 7, 3))

    def test_any_tag_wildcard(self):
        assert key(1, 2, ANY_TAG).matches(key(1, 2, 99))

    def test_both_wildcards(self):
        assert key(1, ANY_SOURCE, ANY_TAG).matches(key(1, 5, 5))

    def test_wildcard_does_not_cross_context(self):
        assert not key(1, ANY_SOURCE, ANY_TAG).matches(key(2, 5, 5))


class TestPostedQueue:
    def test_post_then_arrival_matches(self):
        eng = MatchingEngine()
        eng.post_recv(posted(key(tag=5), req="r1"))
        entry = eng.match_arrival(key(tag=5))
        assert entry.request == "r1"
        assert eng.posted_count == 0

    def test_arrival_without_recv_returns_none(self):
        eng = MatchingEngine()
        assert eng.match_arrival(key(tag=5)) is None

    def test_fifo_order_among_identical_recvs(self):
        eng = MatchingEngine()
        eng.post_recv(posted(key(tag=5), req="first"))
        eng.post_recv(posted(key(tag=5), req="second"))
        assert eng.match_arrival(key(tag=5)).request == "first"
        assert eng.match_arrival(key(tag=5)).request == "second"

    def test_wildcard_recv_matches_any_arrival(self):
        eng = MatchingEngine()
        eng.post_recv(posted(key(src=ANY_SOURCE, tag=ANY_TAG), req="wild"))
        assert eng.match_arrival(key(src=3, tag=9)).request == "wild"

    def test_earlier_nonmatching_recv_skipped(self):
        eng = MatchingEngine()
        eng.post_recv(posted(key(tag=1), req="one"))
        eng.post_recv(posted(key(tag=2), req="two"))
        assert eng.match_arrival(key(tag=2)).request == "two"
        assert eng.posted_count == 1

    def test_cancel_recv(self):
        eng = MatchingEngine()
        eng.post_recv(posted(key(tag=5), req="victim"))
        assert eng.cancel_recv("victim")
        assert eng.match_arrival(key(tag=5)) is None

    def test_cancel_missing_recv_returns_false(self):
        eng = MatchingEngine()
        assert not eng.cancel_recv("ghost")


class TestUnexpectedQueue:
    def test_unexpected_then_recv_matches(self):
        eng = MatchingEngine()
        eng.add_unexpected(unexpected(key(tag=5), pkt="early"))
        msg = eng.post_recv(posted(key(tag=5)))
        assert msg.packet == "early"
        assert eng.unexpected_count == 0

    def test_unexpected_fifo_order(self):
        eng = MatchingEngine()
        eng.add_unexpected(unexpected(key(tag=5), pkt="a"))
        eng.add_unexpected(unexpected(key(tag=5), pkt="b"))
        assert eng.post_recv(posted(key(tag=5))).packet == "a"
        assert eng.post_recv(posted(key(tag=5))).packet == "b"

    def test_wildcard_recv_takes_earliest_unexpected(self):
        eng = MatchingEngine()
        eng.add_unexpected(unexpected(key(src=1, tag=1), pkt="first"))
        eng.add_unexpected(unexpected(key(src=2, tag=2), pkt="second"))
        msg = eng.post_recv(posted(key(src=ANY_SOURCE, tag=ANY_TAG)))
        assert msg.packet == "first"

    def test_nonmatching_unexpected_left_in_place(self):
        eng = MatchingEngine()
        eng.add_unexpected(unexpected(key(tag=9), pkt="other"))
        assert eng.post_recv(posted(key(tag=5))) is None
        assert eng.unexpected_count == 1
        assert eng.posted_count == 1

    def test_match_counters(self):
        eng = MatchingEngine()
        eng.post_recv(posted(key(tag=1)))
        eng.match_arrival(key(tag=1))
        eng.add_unexpected(unexpected(key(tag=2)))
        eng.post_recv(posted(key(tag=2)))
        assert eng.matched_posted == 1
        assert eng.matched_unexpected == 1
