"""Tests for the pipelined partitioned chain broadcast (extension)."""

import numpy as np
import pytest

from repro.mpi import Cvars, MPIWorld
from repro.mpi.partitioned_coll import PipelinedBcast


def run_bcast(n_ranks=4, partitions=8, nbytes=1 << 16, root=0, iters=1,
              delay_per_partition=0.0):
    world = MPIWorld(n_ranks=n_ranks, cvars=Cvars(verify_payloads=True))
    payload = (np.arange(nbytes) % 251).astype(np.uint8)
    buffers = {
        r: np.zeros(nbytes, dtype=np.uint8)
        for r in range(n_ranks)
        if r != root
    }
    finish = {}

    def node(world, rank):
        comm = world.comm_world(rank)
        bcast = PipelinedBcast(
            comm,
            partitions=partitions,
            nbytes=nbytes,
            root=root,
            data=payload if rank == root else None,
            buffer=buffers.get(rank),
        )
        yield from bcast.init()
        for _ in range(iters):
            yield from bcast.start()
            if bcast.is_root:
                for p in range(partitions):
                    if delay_per_partition:
                        yield world.env.timeout(delay_per_partition)
                    yield from bcast.pready(p)
            yield from bcast.wait()
        bcast.free()
        finish[rank] = world.env.now

    for r in range(n_ranks):
        world.launch(r, node(world, r))
    world.run()
    return payload, buffers, finish


class TestCorrectness:
    @pytest.mark.parametrize("n_ranks", [2, 3, 4, 6])
    def test_all_ranks_receive_payload(self, n_ranks):
        payload, buffers, _ = run_bcast(n_ranks=n_ranks)
        for rank, buf in buffers.items():
            assert (buf == payload).all(), f"rank {rank} corrupted"

    def test_nonzero_root(self):
        payload, buffers, _ = run_bcast(n_ranks=4, root=2)
        for rank, buf in buffers.items():
            assert (buf == payload).all(), f"rank {rank} corrupted"

    def test_multiple_iterations(self):
        payload, buffers, _ = run_bcast(n_ranks=3, iters=3)
        for buf in buffers.values():
            assert (buf == payload).all()

    @pytest.mark.parametrize("partitions", [1, 4, 16])
    def test_partition_counts(self, partitions):
        payload, buffers, _ = run_bcast(n_ranks=3, partitions=partitions)
        for buf in buffers.values():
            assert (buf == payload).all()


class TestPipelining:
    def test_pipelined_beats_store_and_forward(self):
        """The partition pipeline must beat whole-buffer forwarding on a
        chain for large, staggered payloads."""
        n_ranks, nbytes, parts = 4, 4 << 20, 8
        per_part_delay = (nbytes / parts) / 25e9  # one partition's wire time

        _, _, finish_pipe = run_bcast(
            n_ranks=n_ranks, partitions=parts, nbytes=nbytes,
            delay_per_partition=per_part_delay,
        )

        # Store-and-forward baseline: recv whole buffer, then send it on.
        world = MPIWorld(n_ranks=n_ranks)
        finish_sf = {}

        def node(world, rank):
            comm = world.comm_world(rank)
            if rank > 0:
                yield from comm.recv(source=rank - 1, tag=1, nbytes=nbytes)
            else:
                yield world.env.timeout(parts * per_part_delay)  # compute
            if rank < n_ranks - 1:
                yield from comm.send(dest=rank + 1, tag=1, nbytes=nbytes)
            finish_sf[rank] = world.env.now

        for r in range(n_ranks):
            world.launch(r, node(world, r))
        world.run()

        assert max(finish_pipe.values()) < 0.7 * max(finish_sf.values()), (
            f"pipelined {max(finish_pipe.values()) * 1e6:.1f} us vs "
            f"store-and-forward {max(finish_sf.values()) * 1e6:.1f} us"
        )

    def test_tail_trails_first_receiver_by_hops_not_buffers(self):
        """With enough partitions each extra hop adds ~one partition
        time, not a full buffer time.  (The root's own finish time is
        earlier by construction: sends complete at injection.)"""
        nbytes, parts = 4 << 20, 16
        _, _, finish = run_bcast(n_ranks=4, partitions=parts, nbytes=nbytes)
        buffer_time = nbytes / 25e9
        receivers = [t for r, t in finish.items() if r != 0]
        spread = max(receivers) - min(receivers)
        # Two extra hops cost far less than one full buffer.
        assert spread < 0.5 * buffer_time


class TestValidation:
    def test_invalid_partitioning_rejected(self):
        world = MPIWorld(n_ranks=2)
        comm = world.comm_world(0)
        with pytest.raises(Exception):
            PipelinedBcast(comm, partitions=3, nbytes=100)

    def test_pready_on_non_root_rejected(self):
        world = MPIWorld(n_ranks=2)
        errors = []

        def node(world, rank):
            comm = world.comm_world(rank)
            bcast = PipelinedBcast(comm, partitions=2, nbytes=128, root=0,
                                   buffer=np.zeros(128, dtype=np.uint8))
            yield from bcast.init()
            yield from bcast.start()
            if rank == 1:
                try:
                    yield from bcast.pready(0)
                except Exception as exc:
                    errors.append(type(exc).__name__)
            if rank == 0:
                for p in range(2):
                    yield from bcast.pready(p)
            yield from bcast.wait()

        world.launch(0, node(world, 0))
        world.launch(1, node(world, 1))
        world.run()
        assert errors == ["RequestStateError"]
