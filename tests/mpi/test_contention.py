"""Tests for the shared-counter contention model."""

import pytest

from repro.mpi.contention import ContendedAtomic
from repro.net import MELUXINA
from repro.sim import Environment


def run_team(n_threads, updates_each=1, bounce=None, stagger=0.0):
    """Run a burst of contended updates; return (total_time, per-thread)."""
    env = Environment()
    atomic = ContendedAtomic(env, MELUXINA, name="t", bounce=bounce)
    finish = []

    def worker(env, tid):
        if stagger:
            yield env.timeout(tid * stagger)
        for _ in range(updates_each):
            yield from atomic.update()
        finish.append(env.now)

    for tid in range(n_threads):
        env.process(worker(env, tid))
    env.run()
    return max(finish), atomic


def test_single_thread_pays_base_cost():
    total, atomic = run_team(1)
    assert total == pytest.approx(MELUXINA.atomic_overhead)
    assert atomic.updates == 1


def test_updates_serialize():
    total_1, _ = run_team(1)
    total_4, _ = run_team(4)
    assert total_4 > 3 * total_1


def test_contention_superlinear_in_threads():
    """32 threads pay much more than 8x the 4-thread total."""
    total_4, _ = run_team(4)
    total_32, _ = run_team(32)
    assert total_32 > 10 * total_4


def test_burst_peak_applies_to_first_update_too():
    """In a simultaneous burst every update pays the N-way fight."""
    _, atomic = run_team(8)
    # Total 8 serialized updates at ~7-contender cost each.
    expected_each = MELUXINA.atomic_overhead + 7 * MELUXINA.atomic_bounce_coeff
    assert atomic.updates == 8


def test_custom_bounce_coefficient():
    cheap, _ = run_team(8, bounce=0.0)
    dear, _ = run_team(8, bounce=1e-6)
    assert dear > cheap


def test_isolated_sequential_updates_stay_cheap():
    """Updates spaced beyond the window see no contention."""
    window = MELUXINA.vci_agent_window
    total, _ = run_team(4, stagger=window * 10)
    # Each paid the uncontended cost.
    assert total == pytest.approx(
        3 * window * 10 + MELUXINA.atomic_overhead, rel=1e-6
    )


def test_extra_cost_added_in_critical_section():
    env = Environment()
    atomic = ContendedAtomic(env, MELUXINA)

    def worker(env):
        yield from atomic.update(extra_cost=5e-6)
        return env.now

    p = env.process(worker(env))
    env.run()
    assert p.value == pytest.approx(MELUXINA.atomic_overhead + 5e-6)


def test_update_counter():
    _, atomic = run_team(3, updates_each=5)
    assert atomic.updates == 15
