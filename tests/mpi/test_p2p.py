"""Point-to-point tests: eager/rendezvous protocols, persistence, ordering."""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, Cvars, MPIWorld, TruncationError
from repro.net import PacketKind


def make_world(**kw):
    kw.setdefault("cvars", Cvars(verify_payloads=True))
    return MPIWorld(n_ranks=2, **kw)


def run_pair(world, sender, receiver):
    world.launch(0, sender)
    p = world.launch(1, receiver)
    world.run()
    return p.value


class TestBlocking:
    @pytest.mark.parametrize("nbytes", [1, 64, 1024, 2048, 8192, 16384, 1 << 20])
    def test_roundtrip_all_protocols(self, nbytes):
        world = make_world()
        data = (np.arange(nbytes) % 251).astype(np.uint8)
        buf = np.zeros(nbytes, dtype=np.uint8)

        def sender(world):
            comm = world.comm_world(0)
            yield from comm.send(dest=1, tag=3, nbytes=nbytes, data=data)

        def receiver(world):
            comm = world.comm_world(1)
            st = yield from comm.recv(source=0, tag=3, nbytes=nbytes, buffer=buf)
            return st

        st = run_pair(world, sender(world), receiver(world))
        assert st.nbytes == nbytes
        assert st.source == 0
        assert (buf == data).all()

    def test_zero_byte_message(self):
        world = make_world()

        def sender(world):
            yield from world.comm_world(0).send(dest=1, tag=0, nbytes=0)

        def receiver(world):
            st = yield from world.comm_world(1).recv(source=0, tag=0, nbytes=0)
            return st.nbytes

        assert run_pair(world, sender(world), receiver(world)) == 0

    def test_send_before_recv_posted(self):
        """Unexpected-queue path: the receive arrives late."""
        world = make_world()
        buf = np.zeros(256, dtype=np.uint8)
        data = np.full(256, 7, dtype=np.uint8)

        def sender(world):
            yield from world.comm_world(0).send(dest=1, tag=1, nbytes=256, data=data)

        def receiver(world):
            yield world.env.timeout(50e-6)  # arrive long after the data
            st = yield from world.comm_world(1).recv(
                source=0, tag=1, nbytes=256, buffer=buf
            )
            return st

        run_pair(world, sender(world), receiver(world))
        assert (buf == 7).all()

    def test_rendezvous_before_recv_posted(self):
        """Unexpected RTS: CTS only flows once the receive is posted."""
        world = make_world()
        n = 1 << 16
        data = (np.arange(n) % 199).astype(np.uint8)
        buf = np.zeros(n, dtype=np.uint8)

        def sender(world):
            comm = world.comm_world(0)
            req = yield from comm.isend(dest=1, tag=1, nbytes=n, data=data)
            yield from req.wait()
            return world.env.now

        def receiver(world):
            yield world.env.timeout(100e-6)
            yield from world.comm_world(1).recv(
                source=0, tag=1, nbytes=n, buffer=buf
            )
            return world.env.now

        world.launch(0, sender(world))
        p = world.launch(1, receiver(world))
        world.run()
        assert (buf == data).all()
        # Data could not move before the receive was posted.
        assert p.value > 100e-6

    def test_truncation_raises(self):
        world = make_world()

        def sender(world):
            yield from world.comm_world(0).send(dest=1, tag=1, nbytes=128)

        def receiver(world):
            yield from world.comm_world(1).recv(source=0, tag=1, nbytes=64)

        world.launch(0, sender(world))
        world.launch(1, receiver(world))
        with pytest.raises(TruncationError):
            world.run()


class TestNonBlocking:
    def test_isend_irecv_overlap(self):
        world = make_world()

        def sender(world):
            comm = world.comm_world(0)
            reqs = []
            for tag in range(4):
                req = yield from comm.isend(dest=1, tag=tag, nbytes=64)
                reqs.append(req)
            for req in reqs:
                yield from req.wait()

        def receiver(world):
            comm = world.comm_world(1)
            reqs = []
            for tag in range(4):
                req = yield from comm.irecv(source=0, tag=tag, nbytes=64)
                reqs.append(req)
            statuses = []
            for req in reqs:
                statuses.append((yield from req.wait()))
            return statuses

        statuses = run_pair(world, sender(world), receiver(world))
        assert [s.tag for s in statuses] == [0, 1, 2, 3]

    def test_any_source_any_tag(self):
        world = make_world()

        def sender(world):
            yield from world.comm_world(0).send(dest=1, tag=42, nbytes=8)

        def receiver(world):
            st = yield from world.comm_world(1).recv(
                source=ANY_SOURCE, tag=ANY_TAG, nbytes=8
            )
            return st

        st = run_pair(world, sender(world), receiver(world))
        assert st.source == 0 and st.tag == 42


class TestOrdering:
    def test_non_overtaking_same_tag(self):
        """MPI guarantee: same (src, tag, comm) messages arrive in order."""
        world = make_world()
        bufs = [np.zeros(16, dtype=np.uint8) for _ in range(5)]

        def sender(world):
            comm = world.comm_world(0)
            for i in range(5):
                data = np.full(16, i, dtype=np.uint8)
                yield from comm.send(dest=1, tag=7, nbytes=16, data=data)

        def receiver(world):
            comm = world.comm_world(1)
            for i in range(5):
                yield from comm.recv(source=0, tag=7, nbytes=16, buffer=bufs[i])

        run_pair(world, sender(world), receiver(world))
        for i in range(5):
            assert (bufs[i] == i).all(), f"message {i} overtaken"


class TestPersistent:
    def test_persistent_send_recv_iterations(self):
        world = make_world()
        n_iter = 4
        buf = np.zeros(128, dtype=np.uint8)
        data = np.arange(128, dtype=np.uint8)

        def sender(world):
            comm = world.comm_world(0)
            req = comm.send_init(dest=1, tag=9, nbytes=128, data=data)
            for _ in range(n_iter):
                yield from req.start()
                yield from req.wait()

        def receiver(world):
            comm = world.comm_world(1)
            req = comm.recv_init(source=0, tag=9, nbytes=128, buffer=buf)
            received = 0
            for _ in range(n_iter):
                buf[:] = 0
                yield from req.start()
                yield from req.wait()
                assert (buf == data).all()
                received += 1
            return received

        assert run_pair(world, sender(world), receiver(world)) == n_iter

    def test_eager_send_completes_locally(self):
        """An eager persistent send is complete right after Start."""
        world = make_world()

        def sender(world):
            comm = world.comm_world(0)
            req = comm.send_init(dest=1, tag=2, nbytes=64)
            yield from req.start()
            return req.test()

        def receiver(world):
            yield from world.comm_world(1).recv(source=0, tag=2, nbytes=64)

        world.launch(1, receiver(world))
        p = world.launch(0, sender(world))
        world.run()
        assert p.value is True


class TestProtocolTraffic:
    def test_eager_message_counts(self):
        world = make_world()

        def sender(world):
            yield from world.comm_world(0).send(dest=1, tag=1, nbytes=512)

        def receiver(world):
            yield from world.comm_world(1).recv(source=0, tag=1, nbytes=512)

        run_pair(world, sender(world), receiver(world))
        rt0 = world.rank(0)
        assert rt0.tx_counters.get(PacketKind.EAGER) == 1
        assert rt0.tx_counters.get(PacketKind.RTS) is None

    def test_rendezvous_message_counts(self):
        world = make_world()
        n = 1 << 16

        def sender(world):
            yield from world.comm_world(0).send(dest=1, tag=1, nbytes=n)

        def receiver(world):
            yield from world.comm_world(1).recv(source=0, tag=1, nbytes=n)

        run_pair(world, sender(world), receiver(world))
        rt0, rt1 = world.rank(0), world.rank(1)
        assert rt0.tx_counters.get(PacketKind.RTS) == 1
        assert rt1.tx_counters.get(PacketKind.CTS) == 1
        assert rt0.tx_counters.get(PacketKind.RDMA_DATA) == 1

    def test_rendezvous_slower_than_eager_at_threshold(self):
        """The zcopy handshake makes 16 KiB slower than 8 KiB (Fig. 4)."""

        def elapsed(nbytes):
            world = make_world()

            def sender(world):
                yield from world.comm_world(0).send(dest=1, tag=1, nbytes=nbytes)

            def receiver(world):
                yield from world.comm_world(1).recv(source=0, tag=1, nbytes=nbytes)
                return world.env.now

            world.launch(0, sender(world))
            p = world.launch(1, receiver(world))
            world.run()
            return p.value

        assert elapsed(16384) > elapsed(8192)
