"""Tests for RankRuntime internals: dispatch, tags, counters, errors."""

import pytest

from repro.mpi import Cvars, MPIError, MPIWorld, PART_TAG_BASE
from repro.net import Packet, PacketKind


def make_world(**kw):
    return MPIWorld(n_ranks=2, **kw)


class TestHandlers:
    def test_duplicate_ctrl_handler_rejected(self):
        rt = make_world().rank(0)
        rt.register_ctrl_handler("x", lambda pkt: None)
        with pytest.raises(MPIError, match="duplicate"):
            rt.register_ctrl_handler("x", lambda pkt: None)

    def test_duplicate_am_handler_rejected(self):
        rt = make_world().rank(0)
        rt.register_am_handler("x", lambda pkt: None)
        with pytest.raises(MPIError, match="duplicate"):
            rt.register_am_handler("x", lambda pkt: None)

    def test_unknown_ctrl_op_raises(self):
        world = make_world()

        def sender(world):
            yield from world.rank(0).post_ctrl(1, "nonexistent-op")

        world.launch(0, sender(world))
        with pytest.raises(MPIError, match="no handler"):
            world.run()

    def test_unknown_am_op_raises(self):
        world = make_world()

        def sender(world):
            yield from world.rank(0).post_ctrl(
                1, "nonexistent-am", kind=PacketKind.AM
            )

        world.launch(0, sender(world))
        with pytest.raises(MPIError, match="no handler"):
            world.run()

    def test_ctrl_handler_receives_packet(self):
        world = make_world()
        got = []
        world.rank(1).register_ctrl_handler("probe", got.append)

        def sender(world):
            yield from world.rank(0).post_ctrl(1, "probe", token=42)

        world.launch(0, sender(world))
        world.run()
        assert len(got) == 1
        assert got[0].header["token"] == 42
        assert got[0].src == 0


class TestPartTags:
    def test_allocation_advances(self):
        rt = make_world().rank(0)
        t1 = rt.alloc_part_tags(1, 8)
        t2 = rt.alloc_part_tags(1, 4)
        assert t1 == PART_TAG_BASE
        assert t2 == PART_TAG_BASE + 8

    def test_per_destination_budgets_independent(self):
        world = MPIWorld(n_ranks=3)
        rt = world.rank(0)
        assert rt.alloc_part_tags(1, 8) == PART_TAG_BASE
        assert rt.alloc_part_tags(2, 8) == PART_TAG_BASE

    def test_exhaustion_returns_none(self):
        world = make_world(cvars=Cvars(part_reserved_tags=10))
        rt = world.rank(0)
        assert rt.alloc_part_tags(1, 8) is not None
        assert rt.alloc_part_tags(1, 8) is None

    def test_request_count_tracked(self):
        rt = make_world().rank(0)
        rt.alloc_part_tags(1, 4)
        rt.alloc_part_tags(1, 4)
        assert rt.part_requests_per_dest[1] == 2


class TestCounters:
    def test_tx_rx_counters_symmetric(self):
        world = make_world()

        def sender(world):
            comm = world.comm_world(0)
            yield from comm.send(dest=1, tag=1, nbytes=64)
            yield from comm.send(dest=1, tag=2, nbytes=64)

        def receiver(world):
            comm = world.comm_world(1)
            yield from comm.recv(source=0, tag=1, nbytes=64)
            yield from comm.recv(source=0, tag=2, nbytes=64)

        world.launch(0, sender(world))
        world.launch(1, receiver(world))
        world.run()
        assert world.rank(0).tx_counters[PacketKind.EAGER] == 2
        assert world.rank(1).rx_counters[PacketKind.EAGER] == 2


class TestTracing:
    def test_world_trace_records_nic_activity(self):
        world = MPIWorld(n_ranks=2, trace=True)

        def sender(world):
            yield from world.comm_world(0).send(dest=1, tag=1, nbytes=64)

        def receiver(world):
            yield from world.comm_world(1).recv(source=0, tag=1, nbytes=64)

        world.launch(0, sender(world))
        world.launch(1, receiver(world))
        world.run()
        assert world.tracer.count(category="nic", event="post") >= 1
        assert world.tracer.count(category="nic", event="recv") >= 1
        assert world.tracer.count(category="fabric", event="wire") >= 1

    def test_trace_disabled_by_default(self):
        world = make_world()

        def sender(world):
            yield from world.comm_world(0).send(dest=1, tag=1, nbytes=64)

        def receiver(world):
            yield from world.comm_world(1).recv(source=0, tag=1, nbytes=64)

        world.launch(0, sender(world))
        world.launch(1, receiver(world))
        world.run()
        assert len(world.tracer) == 0
