"""Tests for the legacy AM-based partitioned path (§3.1)."""

import numpy as np
import pytest

from repro.mpi import AmPartitionedSendRequest, Cvars, MPIWorld
from repro.net import PacketKind


def make_world(**kw):
    kw.setdefault(
        "cvars", Cvars(verify_payloads=True, part_force_am=True)
    )
    return MPIWorld(n_ranks=2, **kw)


def run_am(world, n_parts, nbytes, iters=1):
    data = (np.arange(nbytes) % 241).astype(np.uint8)
    buf = np.zeros(nbytes, dtype=np.uint8)
    checks = []

    def sender(world):
        comm = world.comm_world(0)
        req = yield from comm.psend_init(
            dest=1, tag=5, partitions=n_parts, nbytes=nbytes, data=data
        )
        assert isinstance(req, AmPartitionedSendRequest)
        for _ in range(iters):
            yield from req.start()
            for p in range(n_parts):
                yield from req.pready(p)
            yield from req.wait()
        return req

    def receiver(world):
        comm = world.comm_world(1)
        req = yield from comm.precv_init(
            source=0, tag=5, partitions=n_parts, nbytes=nbytes, buffer=buf
        )
        for _ in range(iters):
            buf[:] = 0
            yield from req.start()
            yield from req.wait()
            checks.append(bool((buf == data).all()))
        return req

    world.launch(0, sender(world))
    r = world.launch(1, receiver(world))
    world.run()
    return r.value, checks


class TestAmPath:
    @pytest.mark.parametrize("n_parts", [1, 4, 16])
    def test_roundtrip(self, n_parts):
        world = make_world()
        _, checks = run_am(world, n_parts, 4096)
        assert checks == [True]

    def test_multiple_iterations(self):
        world = make_world()
        _, checks = run_am(world, 4, 2048, iters=4)
        assert checks == [True] * 4

    def test_single_data_message_per_iteration(self):
        """The whole buffer moves as ONE AM message (§3.1)."""
        world = make_world()
        run_am(world, 8, 8192, iters=3)
        rt0 = world.rank(0)
        # 1 RTS at init + 3 data messages.
        assert rt0.tx_counters.get(PacketKind.AM) == 4
        assert rt0.tx_counters.get(PacketKind.EAGER) is None

    def test_cts_sent_every_iteration(self):
        """Unlike the improved path, the AM path needs a CTS per
        iteration (the counter's '+1')."""
        world = make_world()
        run_am(world, 4, 1024, iters=4)
        rt1 = world.rank(1)
        assert rt1.tx_counters.get(PacketKind.CTRL, 0) == 4

    def test_receiver_in_am_mode(self):
        world = make_world()
        rreq, _ = run_am(world, 4, 1024)
        assert rreq.mode == "am"

    def test_no_early_bird_nothing_sent_before_last_pready(self):
        world = make_world()
        nbytes = 4096
        am_counts = []

        def sender(world):
            comm = world.comm_world(0)
            req = yield from comm.psend_init(
                dest=1, tag=5, partitions=4, nbytes=nbytes
            )
            yield from req.start()
            base = world.rank(0).tx_counters.get(PacketKind.AM, 0)
            for p in range(3):
                yield from req.pready(p)
            yield world.env.timeout(20e-6)
            am_counts.append(world.rank(0).tx_counters.get(PacketKind.AM, 0) - base)
            yield from req.pready(3)
            yield from req.wait()
            am_counts.append(world.rank(0).tx_counters.get(PacketKind.AM, 0) - base)

        def receiver(world):
            comm = world.comm_world(1)
            req = yield from comm.precv_init(
                source=0, tag=5, partitions=4, nbytes=nbytes
            )
            yield from req.start()
            yield from req.wait()

        world.launch(0, sender(world))
        world.launch(1, receiver(world))
        world.run()
        assert am_counts == [0, 1]

    def test_parrived_granularity_is_whole_buffer(self):
        world = make_world()
        observed = []

        def sender(world):
            comm = world.comm_world(0)
            req = yield from comm.psend_init(
                dest=1, tag=5, partitions=4, nbytes=1024
            )
            yield from req.start()
            yield from req.pready(0)
            yield world.env.timeout(20e-6)
            yield from comm.send(dest=1, tag=6, nbytes=0)
            for p in range(1, 4):
                yield from req.pready(p)
            yield from req.wait()

        def receiver(world):
            comm = world.comm_world(1)
            req = yield from comm.precv_init(
                source=0, tag=5, partitions=4, nbytes=1024
            )
            yield from req.start()
            yield from comm.recv(source=0, tag=6, nbytes=0)
            # Nothing has arrived: the AM path sends all-or-nothing.
            observed.append(req.parrived(0))
            yield from req.wait()

        world.launch(0, sender(world))
        world.launch(1, receiver(world))
        world.run()
        assert observed == [False]

    def test_am_slower_than_improved_for_large_messages(self):
        """The AM copies bound large transfers to the memcpy rate."""

        def timed(force_am):
            world = MPIWorld(
                n_ranks=2,
                cvars=Cvars(part_force_am=force_am),
            )
            nbytes = 1 << 20

            def sender(world):
                comm = world.comm_world(0)
                req = yield from comm.psend_init(
                    dest=1, tag=5, partitions=4, nbytes=nbytes
                )
                yield from req.start()
                for p in range(4):
                    yield from req.pready(p)
                yield from req.wait()

            def receiver(world):
                comm = world.comm_world(1)
                req = yield from comm.precv_init(
                    source=0, tag=5, partitions=4, nbytes=nbytes
                )
                yield from req.start()
                yield from req.wait()
                return world.env.now

            world.launch(0, sender(world))
            p = world.launch(1, receiver(world))
            world.run()
            return p.value

        t_am = timed(True)
        t_improved = timed(False)
        assert t_am > 2.0 * t_improved
