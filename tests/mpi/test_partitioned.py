"""Tests for the improved partitioned-communication path (§3.2)."""

import numpy as np
import pytest

from repro.mpi import (
    Cvars,
    MPIWorld,
    PartitionError,
    PartitionedSendRequest,
    RequestStateError,
)
from repro.mpi.partitioned import negotiate_message_count
from repro.net import PacketKind


def make_world(**kw):
    kw.setdefault("cvars", Cvars(verify_payloads=True))
    return MPIWorld(n_ranks=2, **kw)


class TestNegotiation:
    def test_equal_counts_no_aggregation(self):
        assert negotiate_message_count(8, 8, 8192, 0) == 8

    def test_gcd_of_mismatched_counts(self):
        assert negotiate_message_count(8, 12, 9600, 0) == 4
        assert negotiate_message_count(6, 4, 1200, 0) == 2
        assert negotiate_message_count(7, 5, 3500, 0) == 1

    def test_gcd_guarantees_whole_partitions(self):
        """Every partition of either side maps to exactly one message."""
        for ns, nr in [(8, 12), (32, 48), (5, 10), (9, 6)]:
            g = negotiate_message_count(ns, nr, ns * nr * 16, 0)
            assert ns % g == 0 and nr % g == 0

    def test_aggregation_reduces_message_count(self):
        # 32 messages of 64 B; aggregating under 512 B -> groups of 8.
        assert negotiate_message_count(32, 32, 2048, 512) == 4

    def test_aggregation_bound_respected(self):
        total, nparts = 2048, 32
        for aggr in (64, 128, 256, 512, 1024):
            n_msgs = negotiate_message_count(nparts, nparts, total, aggr)
            assert total // n_msgs <= max(aggr, total // nparts)

    def test_no_aggregation_when_messages_already_large(self):
        assert negotiate_message_count(4, 4, 1 << 20, 4096) == 4

    def test_aggregate_everything_with_huge_bound(self):
        assert negotiate_message_count(32, 32, 2048, 1 << 30) == 1

    def test_result_divides_gcd(self):
        for aggr in (0, 100, 500, 1000, 5000):
            n = negotiate_message_count(24, 36, 12000, aggr)
            assert 12 % n == 0

    def test_invalid_counts(self):
        with pytest.raises(PartitionError):
            negotiate_message_count(0, 4, 100, 0)


def run_partitioned(world, n_parts_send, n_parts_recv, nbytes, iters=1,
                    tag=5):
    data = (np.arange(nbytes) % 251).astype(np.uint8)
    buf = np.zeros(nbytes, dtype=np.uint8)
    checks = []

    def sender(world):
        comm = world.comm_world(0)
        req = yield from comm.psend_init(
            dest=1, tag=tag, partitions=n_parts_send, nbytes=nbytes, data=data
        )
        for _ in range(iters):
            yield from req.start()
            for p in range(n_parts_send):
                yield from req.pready(p)
            yield from req.wait()
        return req

    def receiver(world):
        comm = world.comm_world(1)
        req = yield from comm.precv_init(
            source=0, tag=tag, partitions=n_parts_recv, nbytes=nbytes,
            buffer=buf,
        )
        for _ in range(iters):
            buf[:] = 0
            yield from req.start()
            yield from req.wait()
            checks.append(bool((buf == data).all()))
        return req

    s = world.launch(0, sender(world))
    r = world.launch(1, receiver(world))
    world.run()
    return s.value, r.value, checks


class TestTransfer:
    @pytest.mark.parametrize("n_parts", [1, 2, 4, 8, 16])
    def test_roundtrip_various_partition_counts(self, n_parts):
        world = make_world()
        _, _, checks = run_partitioned(world, n_parts, n_parts, 4096)
        assert checks == [True]

    @pytest.mark.parametrize("ns,nr", [(8, 4), (4, 8), (6, 9), (12, 8)])
    def test_mismatched_partition_counts(self, ns, nr):
        world = make_world()
        nbytes = np.lcm(ns, nr) * 64
        _, _, checks = run_partitioned(world, ns, nr, int(nbytes))
        assert checks == [True]

    def test_many_iterations(self):
        world = make_world()
        _, _, checks = run_partitioned(world, 8, 8, 2048, iters=5)
        assert checks == [True] * 5

    def test_large_buffer_rendezvous_messages(self):
        world = make_world()
        _, _, checks = run_partitioned(world, 4, 4, 1 << 20)
        assert checks == [True]

    def test_message_count_on_wire(self):
        """gcd(8,8)=8 internal eager messages per iteration."""
        world = make_world()
        run_partitioned(world, 8, 8, 4096, iters=2)
        rt0 = world.rank(0)
        assert rt0.tx_counters.get(PacketKind.EAGER) == 16

    def test_aggregation_reduces_wire_messages(self):
        world = make_world(
            cvars=Cvars(verify_payloads=True, part_aggr_size=2048)
        )
        _, _, checks = run_partitioned(world, 32, 32, 4096)
        # 32 x 128 B partitions, aggregated under 2048 B -> 2 messages.
        assert world.rank(0).tx_counters.get(PacketKind.EAGER) == 2
        assert checks == [True]

    def test_first_iteration_cts_only(self):
        """The improved path pays the CTS once, not per iteration."""
        world = make_world()
        run_partitioned(world, 4, 4, 1024, iters=4)
        rt1 = world.rank(1)
        ctrl = rt1.tx_counters.get(PacketKind.CTRL, 0)
        # One part_cts from the receiver (plus barrier-free world: no
        # other ctrl traffic from rank 1).
        assert ctrl == 1


class TestPready:
    def test_pready_out_of_order(self):
        world = make_world()
        nbytes = 4096
        data = (np.arange(nbytes) % 251).astype(np.uint8)
        buf = np.zeros(nbytes, dtype=np.uint8)

        def sender(world):
            comm = world.comm_world(0)
            req = yield from comm.psend_init(
                dest=1, tag=5, partitions=8, nbytes=nbytes, data=data
            )
            yield from req.start()
            for p in (7, 3, 0, 5, 1, 6, 2, 4):
                yield from req.pready(p)
            yield from req.wait()

        def receiver(world):
            comm = world.comm_world(1)
            req = yield from comm.precv_init(
                source=0, tag=5, partitions=8, nbytes=nbytes, buffer=buf
            )
            yield from req.start()
            yield from req.wait()

        world.launch(0, sender(world))
        world.launch(1, receiver(world))
        world.run()
        assert (buf == data).all()

    def test_pready_before_start_raises(self):
        world = make_world()

        def sender(world):
            comm = world.comm_world(0)
            req = yield from comm.psend_init(
                dest=1, tag=5, partitions=4, nbytes=1024
            )
            with pytest.raises(RequestStateError):
                yield from req.pready(0)

        def receiver(world):
            comm = world.comm_world(1)
            yield from comm.precv_init(source=0, tag=5, partitions=4,
                                       nbytes=1024)

        world.launch(0, sender(world))
        world.launch(1, receiver(world))
        world.run()

    def test_pready_bad_partition_raises(self):
        world = make_world()

        def sender(world):
            comm = world.comm_world(0)
            req = yield from comm.psend_init(
                dest=1, tag=5, partitions=4, nbytes=1024
            )
            yield from req.start()
            with pytest.raises(PartitionError):
                yield from req.pready(4)

        def receiver(world):
            comm = world.comm_world(1)
            yield from comm.precv_init(source=0, tag=5, partitions=4,
                                       nbytes=1024)

        world.launch(0, sender(world))
        world.launch(1, receiver(world))
        world.run()


class TestParrived:
    def test_parrived_progression(self):
        world = make_world()
        nbytes = 4096
        observed = []

        def sender(world):
            comm = world.comm_world(0)
            req = yield from comm.psend_init(
                dest=1, tag=5, partitions=4, nbytes=nbytes
            )
            yield from req.start()
            yield from req.pready(0)
            yield world.env.timeout(50e-6)  # let partition 0 land
            yield from comm.send(dest=1, tag=6, nbytes=0)  # probe signal
            for p in range(1, 4):
                yield from req.pready(p)
            yield from req.wait()

        def receiver(world):
            comm = world.comm_world(1)
            req = yield from comm.precv_init(
                source=0, tag=5, partitions=4, nbytes=nbytes
            )
            yield from req.start()
            yield from comm.recv(source=0, tag=6, nbytes=0)
            observed.append(req.parrived(0))
            observed.append(req.parrived(3))
            yield from req.wait()

        world.launch(0, sender(world))
        world.launch(1, receiver(world))
        world.run()
        assert observed == [True, False]

    def test_parrived_before_start_raises(self):
        world = make_world()

        def receiver(world):
            comm = world.comm_world(1)
            req = yield from comm.precv_init(
                source=0, tag=5, partitions=4, nbytes=1024
            )
            with pytest.raises(RequestStateError):
                req.parrived(0)

        def sender(world):
            comm = world.comm_world(0)
            yield from comm.psend_init(dest=1, tag=5, partitions=4, nbytes=1024)

        world.launch(0, sender(world))
        world.launch(1, receiver(world))
        world.run()


class TestValidation:
    def test_indivisible_buffer_rejected(self):
        world = make_world()
        comm = world.comm_world(0)
        with pytest.raises(PartitionError):
            PartitionedSendRequest(comm, 1, 5, partitions=3, nbytes=100)

    def test_zero_partitions_rejected(self):
        world = make_world()
        comm = world.comm_world(0)
        with pytest.raises(PartitionError):
            PartitionedSendRequest(comm, 1, 5, partitions=0, nbytes=100)

    def test_duplicate_precv_rejected(self):
        world = make_world()

        def receiver(world):
            comm = world.comm_world(1)
            yield from comm.precv_init(source=0, tag=5, partitions=4,
                                       nbytes=1024)
            with pytest.raises(PartitionError):
                yield from comm.precv_init(source=0, tag=5, partitions=4,
                                           nbytes=1024)

        world.launch(1, receiver(world))
        world.run()

    def test_free_releases_registry_slot(self):
        world = make_world()

        def receiver(world):
            comm = world.comm_world(1)
            req = yield from comm.precv_init(source=0, tag=5, partitions=4,
                                             nbytes=1024)
            req.free()
            req2 = yield from comm.precv_init(source=0, tag=5, partitions=4,
                                              nbytes=1024)
            return req2 is not None

        p = world.launch(1, receiver(world))
        world.run()
        assert p.value


class TestTagFallback:
    def test_tag_exhaustion_falls_back_to_am(self):
        world = make_world(
            cvars=Cvars(verify_payloads=True, part_reserved_tags=4)
        )

        def sender(world):
            comm = world.comm_world(0)
            r1 = yield from comm.psend_init(dest=1, tag=1, partitions=4,
                                            nbytes=256)
            r2 = yield from comm.psend_init(dest=1, tag=2, partitions=4,
                                            nbytes=256)
            return type(r1).__name__, type(r2).__name__

        p = world.launch(0, sender(world))
        world.launch(1, _drain(world))
        world.run()
        assert p.value == (
            "PartitionedSendRequest",
            "AmPartitionedSendRequest",
        )


def _drain(world):
    """Receiver registering both partitioned receives."""
    comm = world.comm_world(1)
    yield from comm.precv_init(source=0, tag=1, partitions=4, nbytes=256)
    yield from comm.precv_init(source=0, tag=2, partitions=4, nbytes=256)
