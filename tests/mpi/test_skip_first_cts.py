"""Tests for the §5 future-work feature: removing the first-iteration
sender/receiver synchronization (``Cvars.part_skip_first_cts``)."""

import numpy as np
import pytest

from repro.mpi import Cvars, MPIWorld, PartitionError
from repro.net import PacketKind


def run_once(cvars, n_send=4, n_recv=4, nbytes=4096, iters=2):
    world = MPIWorld(n_ranks=2, cvars=cvars)
    data = (np.arange(nbytes) % 251).astype(np.uint8)
    buf = np.zeros(nbytes, dtype=np.uint8)
    times = []

    def sender(world):
        comm = world.comm_world(0)
        req = yield from comm.psend_init(
            dest=1, tag=5, partitions=n_send, nbytes=nbytes, data=data
        )
        for _ in range(iters):
            yield from req.start()
            for p in range(n_send):
                yield from req.pready(p)
            yield from req.wait()

    def receiver(world):
        comm = world.comm_world(1)
        req = yield from comm.precv_init(
            source=0, tag=5, partitions=n_recv, nbytes=nbytes, buffer=buf
        )
        for _ in range(iters):
            t0 = world.env.now
            yield from req.start()
            yield from req.wait()
            times.append(world.env.now - t0)

    world.launch(0, sender(world))
    world.launch(1, receiver(world))
    world.run()
    return world, times


def test_no_cts_on_wire():
    cv = Cvars(part_skip_first_cts=True, verify_payloads=True)
    world, _ = run_once(cv)
    assert world.rank(1).tx_counters.get(PacketKind.CTRL) is None


def test_data_still_correct():
    cv = Cvars(part_skip_first_cts=True, verify_payloads=True)
    world, _ = run_once(cv)
    # run_once asserts nothing itself; re-run with explicit verification
    world2 = MPIWorld(n_ranks=2, cvars=cv)
    nbytes = 2048
    data = (np.arange(nbytes) % 251).astype(np.uint8)
    buf = np.zeros(nbytes, dtype=np.uint8)

    def sender(world):
        comm = world.comm_world(0)
        req = yield from comm.psend_init(
            dest=1, tag=5, partitions=8, nbytes=nbytes, data=data
        )
        yield from req.start()
        for p in range(8):
            yield from req.pready(p)
        yield from req.wait()

    def receiver(world):
        comm = world.comm_world(1)
        req = yield from comm.precv_init(
            source=0, tag=5, partitions=8, nbytes=nbytes, buffer=buf
        )
        yield from req.start()
        yield from req.wait()

    world2.launch(0, sender(world2))
    world2.launch(1, receiver(world2))
    world2.run()
    assert (buf == data).all()


def test_first_iteration_faster_without_cts():
    base = Cvars()
    skip = Cvars(part_skip_first_cts=True)
    _, times_base = run_once(base, iters=3)
    _, times_skip = run_once(skip, iters=3)
    # First iteration no longer waits out the CTS round trip.
    assert times_skip[0] < 0.7 * times_base[0]
    # Steady state never gets worse (the CTS was first-iteration-only;
    # without per-iteration barriers the loop phases differ slightly).
    assert times_skip[-1] <= times_base[-1] * 1.05


def test_asymmetric_counts_rejected():
    cv = Cvars(part_skip_first_cts=True)
    with pytest.raises(PartitionError, match="symmetric"):
        run_once(cv, n_send=8, n_recv=4)


def test_aggregation_composes_with_skip():
    cv = Cvars(part_skip_first_cts=True, part_aggr_size=2048,
               verify_payloads=True)
    world, _ = run_once(cv, n_send=32, n_recv=32, nbytes=4096)
    # 32 x 128 B aggregated under 2048 B -> 2 messages x 2 iterations.
    assert world.rank(0).tx_counters.get(PacketKind.EAGER) == 4
