"""Unit tests for request state machines."""

import pytest

from repro.mpi import RequestStateError
from repro.mpi.request import PersistentRequest, Request
from repro.sim import Environment


class _FakePersistent(PersistentRequest):
    """Persistent request that completes after a fixed delay."""

    def __init__(self, env, delay=1.0):
        super().__init__(env)
        self.delay = delay
        self.starts = 0

    def _start(self):
        self.starts += 1
        yield self.env.timeout(0.0)
        self.env.process(self._complete_later())

    def _complete_later(self):
        yield self.env.timeout(self.delay)
        self.complete(f"done-{self.starts}")


class TestRequest:
    def test_wait_returns_completion_value(self):
        env = Environment()
        req = Request(env)

        def proc(env):
            result = yield from req.wait()
            return result

        p = env.process(proc(env))

        def completer(env):
            yield env.timeout(2.0)
            req.complete("payload")

        env.process(completer(env))
        env.run()
        assert p.value == "payload"
        assert req.completed_at == 2.0

    def test_test_before_and_after(self):
        env = Environment()
        req = Request(env)
        assert not req.test()
        req.complete()
        assert req.test()

    def test_unique_request_ids(self):
        env = Environment()
        assert Request(env).rid != Request(env).rid

    def test_value_after_completion(self):
        env = Environment()
        req = Request(env)
        req.complete(41)
        assert req.value == 41


class TestPersistentRequest:
    def test_lifecycle_inactive_active_inactive(self):
        env = Environment()
        req = _FakePersistent(env)
        assert not req.active

        def proc(env):
            yield from req.start()
            assert req.active
            result = yield from req.wait()
            assert not req.active
            return result

        p = env.process(proc(env))
        env.run()
        assert p.value == "done-1"

    def test_reuse_across_iterations(self):
        env = Environment()
        req = _FakePersistent(env)

        def proc(env):
            results = []
            for _ in range(3):
                yield from req.start()
                results.append((yield from req.wait()))
            return results

        p = env.process(proc(env))
        env.run()
        assert p.value == ["done-1", "done-2", "done-3"]
        assert req.started_count == 3

    def test_double_start_rejected(self):
        env = Environment()
        req = _FakePersistent(env)

        def proc(env):
            yield from req.start()
            with pytest.raises(RequestStateError):
                yield from req.start()
            yield from req.wait()

        env.process(proc(env))
        env.run()

    def test_wait_while_inactive_rejected(self):
        env = Environment()
        req = _FakePersistent(env)

        def proc(env):
            with pytest.raises(RequestStateError):
                yield from req.wait()
            yield env.timeout(0.0)

        env.process(proc(env))
        env.run()

    def test_test_while_inactive_rejected(self):
        env = Environment()
        req = _FakePersistent(env)
        with pytest.raises(RequestStateError):
            req.test()

    def test_complete_while_inactive_rejected(self):
        env = Environment()
        req = _FakePersistent(env)
        with pytest.raises(RequestStateError):
            req.complete()

    def test_free_while_active_rejected(self):
        env = Environment()
        req = _FakePersistent(env)

        def proc(env):
            yield from req.start()
            with pytest.raises(RequestStateError):
                req.free()
            yield from req.wait()
            req.free()  # fine once inactive

        env.process(proc(env))
        env.run()

    def test_completion_event_requires_activation(self):
        env = Environment()
        req = _FakePersistent(env)
        with pytest.raises(RequestStateError):
            _ = req.completion_event
