"""Tests for Cartesian topologies and named sub-communicators."""

import pytest

from repro.mpi import CartTopology, MPIWorld, dims_create


class TestDimsCreate:
    def test_products(self):
        for n in (1, 2, 6, 8, 12, 16, 17, 60, 64):
            for ndims in (1, 2, 3):
                dims = dims_create(n, ndims)
                prod = 1
                for d in dims:
                    prod *= d
                assert prod == n
                assert len(dims) == ndims

    def test_balanced(self):
        assert dims_create(8, 3) == (2, 2, 2)
        assert dims_create(12, 2) == (4, 3)
        assert dims_create(6, 2) == (3, 2)

    def test_non_increasing(self):
        for n in (8, 24, 30, 100):
            dims = dims_create(n, 3)
            assert list(dims) == sorted(dims, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            dims_create(0, 2)
        with pytest.raises(ValueError):
            dims_create(4, 0)


class TestCartTopology:
    def test_roundtrip(self):
        topo = CartTopology.create(12, 3, periodic=True)
        for rank in range(12):
            assert topo.rank_of(topo.coords(rank)) == rank

    def test_shift_periodic(self):
        topo = CartTopology((4,), (True,))
        assert topo.shift(0, 0, -1) == 3
        assert topo.shift(3, 0, 1) == 0

    def test_shift_boundary(self):
        topo = CartTopology((4,), (False,))
        assert topo.shift(0, 0, -1) is None
        assert topo.shift(3, 0, 1) is None
        assert topo.shift(1, 0, 1) == 2

    def test_neighbors_exclude_self(self):
        # Extent-1 dimensions wrap onto the rank itself -> no link.
        topo = CartTopology((2, 1), (True, True))
        for rank in (0, 1):
            nbrs = topo.neighbors(rank)
            assert all(n != rank for (_, _, n) in nbrs)
            # Both +/- of dim 0 reach the peer (extent 2, periodic).
            assert len(nbrs) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            CartTopology((0,), (True,))
        with pytest.raises(ValueError):
            CartTopology((2, 2), (True,))
        topo = CartTopology((2, 2), (False, False))
        with pytest.raises(ValueError):
            topo.coords(4)
        with pytest.raises(ValueError):
            topo.rank_of((2, 0))
        with pytest.raises(ValueError):
            topo.rank_of((0,))
        with pytest.raises(ValueError):
            topo.shift(0, 2, 1)


class TestSubComm:
    def test_shared_context(self):
        world = MPIWorld(n_ranks=4)
        comms = world.sub_comm((2, 0), key="link:2->0")
        assert set(comms) == {0, 2}
        assert comms[0].context_id == comms[2].context_id
        # Group order fixes comm ranks: sender (world 2) is comm rank 0.
        assert comms[2].rank == 0
        assert comms[0].rank == 1
        assert comms[0].world_rank(0) == 2

    def test_distinct_keys_distinct_contexts(self):
        world = MPIWorld(n_ranks=4)
        a = world.sub_comm((0, 1), key="a")
        b = world.sub_comm((0, 1), key="b")
        assert a[0].context_id != b[0].context_id

    def test_same_key_same_context(self):
        world = MPIWorld(n_ranks=4)
        a = world.sub_comm((0, 1), key="a")
        again = world.sub_comm((0, 1), key="a")
        assert a[0].context_id == again[0].context_id

    def test_group_mismatch_rejected(self):
        world = MPIWorld(n_ranks=4)
        world.sub_comm((0, 1), key="a")
        with pytest.raises(ValueError):
            world.sub_comm((1, 0), key="a")

    def test_bad_groups(self):
        world = MPIWorld(n_ranks=4)
        with pytest.raises(ValueError):
            world.sub_comm((), key="x")
        with pytest.raises(ValueError):
            world.sub_comm((1, 1), key="y")

    def test_traffic_isolated_per_context(self):
        """Same tag on two sub-comms between the same pair stays apart."""
        import numpy as np

        from repro.mpi import Cvars

        world = MPIWorld(n_ranks=2, cvars=Cvars(verify_payloads=True))
        link_a = world.sub_comm((0, 1), key="a")
        link_b = world.sub_comm((0, 1), key="b")
        payload_a = np.full(64, 7, dtype=np.uint8)
        payload_b = np.full(64, 9, dtype=np.uint8)
        got = {}

        def sender(world):
            yield from link_a[0].send(dest=1, tag=5, nbytes=64, data=payload_a)
            yield from link_b[0].send(dest=1, tag=5, nbytes=64, data=payload_b)

        def receiver(world):
            buf_b = np.zeros(64, dtype=np.uint8)
            buf_a = np.zeros(64, dtype=np.uint8)
            # Receive link b first: matching must be per-context.
            yield from link_b[1].recv(source=0, tag=5, nbytes=64, buffer=buf_b)
            yield from link_a[1].recv(source=0, tag=5, nbytes=64, buffer=buf_a)
            got["a"], got["b"] = int(buf_a[0]), int(buf_b[0])

        world.launch(0, sender(world))
        world.launch(1, receiver(world))
        world.run()
        assert got == {"a": 7, "b": 9}
