"""The §3.2.1 tension: aggregation vs ``MPI_Parrived`` granularity.

"The use of MPI_Parrived is in contradiction with message aggregation":
aggregated partitions arrive together, so a partition reads as arrived
only once its whole aggregated message landed.  These tests pin that
semantic.
"""

import numpy as np
import pytest

from repro.mpi import Cvars, MPIWorld


def run_scenario(aggr_size, ready_order, probe_after, n_parts=8,
                 nbytes=8192):
    """Sender readies ``ready_order[:probe_after]`` partitions, then the
    receiver probes all partitions.  Returns the parrived() vector."""
    world = MPIWorld(
        n_ranks=2, cvars=Cvars(part_aggr_size=aggr_size)
    )
    observed = {}

    def sender(world):
        comm = world.comm_world(0)
        req = yield from comm.psend_init(
            dest=1, tag=5, partitions=n_parts, nbytes=nbytes
        )
        yield from req.start()
        for p in ready_order[:probe_after]:
            yield from req.pready(p)
        yield world.env.timeout(50e-6)  # let messages land
        yield from comm.send(dest=1, tag=6, nbytes=0)  # probe signal
        for p in ready_order[probe_after:]:
            yield from req.pready(p)
        yield from req.wait()

    def receiver(world):
        comm = world.comm_world(1)
        req = yield from comm.precv_init(
            source=0, tag=5, partitions=n_parts, nbytes=nbytes
        )
        yield from req.start()
        yield from comm.recv(source=0, tag=6, nbytes=0)
        for p in range(n_parts):
            observed[p] = req.parrived(p)
        yield from req.wait()

    world.launch(0, sender(world))
    world.launch(1, receiver(world))
    world.run()
    return observed


def test_no_aggregation_fine_grained_arrival():
    """Without aggregation each partition is individually visible."""
    obs = run_scenario(aggr_size=0, ready_order=list(range(8)),
                       probe_after=3)
    assert [obs[p] for p in range(8)] == [True] * 3 + [False] * 5


def test_aggregation_coarsens_parrived():
    """With 2-partition aggregation, readying one partition of a pair
    does not make either visible; readying both makes both visible."""
    # 8 partitions of 1 KiB aggregated under 2 KiB -> 4 messages of 2.
    obs = run_scenario(aggr_size=2048, ready_order=[0, 1, 2],
                       probe_after=3)
    # Message 0 = partitions {0,1}: complete -> both arrived.
    assert obs[0] and obs[1]
    # Message 1 = partitions {2,3}: only 2 readied -> nothing arrived.
    assert not obs[2] and not obs[3]
    assert not any(obs[p] for p in range(4, 8))


def test_full_aggregation_is_all_or_nothing():
    obs = run_scenario(aggr_size=1 << 20, ready_order=list(range(8)),
                       probe_after=7)
    # One aggregated message: 7 of 8 partitions ready -> nothing sent.
    assert not any(obs.values())


def test_out_of_order_ready_with_aggregation():
    """Readying partitions of different pairs leaves all pairs
    incomplete; completing one pair exposes exactly that pair."""
    obs = run_scenario(aggr_size=2048, ready_order=[0, 2, 4, 6, 1],
                       probe_after=5)
    # Pair {0,1} completed by the 5th pready; others half-done.
    assert obs[0] and obs[1]
    assert not any(obs[p] for p in (2, 3, 4, 5, 6, 7))
