"""Multi-rank scenarios beyond the paper's two-node benchmark."""

import numpy as np
import pytest

from repro.mpi import Cvars, MPIWorld


def make_world(n_ranks=4, **kw):
    kw.setdefault("cvars", Cvars(verify_payloads=True))
    return MPIWorld(n_ranks=n_ranks, **kw)


class TestRing:
    def test_eager_ring(self):
        world = make_world(4)
        received = {}

        def node(world, rank):
            comm = world.comm_world(rank)
            right = (rank + 1) % 4
            left = (rank - 1) % 4
            data = np.full(64, rank, dtype=np.uint8)
            buf = np.zeros(64, dtype=np.uint8)
            sreq = yield from comm.isend(dest=right, tag=3, nbytes=64,
                                         data=data)
            yield from comm.recv(source=left, tag=3, nbytes=64, buffer=buf)
            yield from sreq.wait()
            received[rank] = int(buf[0])

        for r in range(4):
            world.launch(r, node(world, r))
        world.run()
        assert received == {0: 3, 1: 0, 2: 1, 3: 2}

    def test_partitioned_ring(self):
        world = make_world(4)
        n_parts, nbytes = 4, 4096
        ok = {}

        def node(world, rank):
            comm = world.comm_world(rank)
            right = (rank + 1) % 4
            left = (rank - 1) % 4
            data = np.full(nbytes, rank + 1, dtype=np.uint8)
            buf = np.zeros(nbytes, dtype=np.uint8)
            sreq = yield from comm.psend_init(
                dest=right, tag=3, partitions=n_parts, nbytes=nbytes,
                data=data,
            )
            rreq = yield from comm.precv_init(
                source=left, tag=3, partitions=n_parts, nbytes=nbytes,
                buffer=buf,
            )
            yield from sreq.start()
            yield from rreq.start()
            for p in range(n_parts):
                yield from sreq.pready(p)
            yield from sreq.wait()
            yield from rreq.wait()
            ok[rank] = bool((buf == ((rank - 1) % 4) + 1).all())

        for r in range(4):
            world.launch(r, node(world, r))
        world.run()
        assert all(ok.values()), ok


class TestFanIn:
    def test_gather_pattern_to_rank0(self):
        world = make_world(4)
        collected = np.zeros((3, 32), dtype=np.uint8)

        def worker(world, rank):
            comm = world.comm_world(rank)
            data = np.full(32, rank * 11, dtype=np.uint8)
            yield from comm.send(dest=0, tag=rank, nbytes=32, data=data)

        def root(world):
            comm = world.comm_world(0)
            for src in (1, 2, 3):
                yield from comm.recv(
                    source=src, tag=src, nbytes=32,
                    buffer=collected[src - 1],
                )

        world.launch(0, root(world))
        for r in (1, 2, 3):
            world.launch(r, worker(world, r))
        world.run()
        for src in (1, 2, 3):
            assert (collected[src - 1] == src * 11).all()

    def test_partitioned_fan_in_separate_tag_budgets(self):
        """Two senders target one receiver; partitioned registries and
        tag budgets must stay per-peer."""
        world = make_world(3)
        bufs = {1: np.zeros(1024, dtype=np.uint8),
                2: np.zeros(1024, dtype=np.uint8)}

        def sender(world, rank):
            comm = world.comm_world(rank)
            data = np.full(1024, rank * 7, dtype=np.uint8)
            req = yield from comm.psend_init(
                dest=0, tag=5, partitions=4, nbytes=1024, data=data
            )
            yield from req.start()
            for p in range(4):
                yield from req.pready(p)
            yield from req.wait()

        def receiver(world):
            comm = world.comm_world(0)
            reqs = []
            for src in (1, 2):
                req = yield from comm.precv_init(
                    source=src, tag=5, partitions=4, nbytes=1024,
                    buffer=bufs[src],
                )
                reqs.append(req)
            for req in reqs:
                yield from req.start()
            for req in reqs:
                yield from req.wait()

        world.launch(0, receiver(world))
        world.launch(1, sender(world, 1))
        world.launch(2, sender(world, 2))
        world.run()
        assert (bufs[1] == 7).all()
        assert (bufs[2] == 14).all()


class TestManyRanksBarrier:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_dissemination_barrier_sizes(self, n):
        world = make_world(n)
        exits = []

        def node(world, rank):
            comm = world.comm_world(rank)
            yield world.env.timeout(rank * 10e-6)
            yield from comm.barrier()
            exits.append(world.env.now)

        for r in range(n):
            world.launch(r, node(world, r))
        world.run()
        latest_arrival = (n - 1) * 10e-6
        assert min(exits) >= latest_arrival
        assert max(exits) - min(exits) < 10e-6
