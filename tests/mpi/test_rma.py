"""RMA tests: windows, puts, passive and active synchronization."""

import numpy as np
import pytest

from repro.mpi import (
    Cvars,
    LOCK_EXCLUSIVE,
    LOCK_SHARED,
    MODE_NOCHECK,
    MPIWorld,
    RmaSyncError,
)
from repro.mpi.rma import win_create


def make_world(**kw):
    kw.setdefault("cvars", Cvars(verify_payloads=True))
    return MPIWorld(n_ranks=2, **kw)


class TestWindowCreation:
    def test_win_ids_match_across_ranks(self):
        world = make_world()

        def proc(world, rank):
            comm = world.comm_world(rank)
            w1 = yield from win_create(comm, 64)
            w2 = yield from win_create(comm, 64)
            return (w1.win_id, w2.win_id)

        p0 = world.launch(0, proc(world, 0))
        p1 = world.launch(1, proc(world, 1))
        world.run()
        assert p0.value == p1.value
        assert p0.value[0] != p0.value[1]

    def test_windows_map_to_vcis_by_id(self):
        world = make_world(cvars=Cvars(num_vcis=4, verify_payloads=True))

        def proc(world, rank):
            comm = world.comm_world(rank)
            wins = []
            for _ in range(4):
                wins.append((yield from win_create(comm, 64)))
            return [w.vci for w in wins]

        p0 = world.launch(0, proc(world, 0))
        world.launch(1, proc(world, 1))
        world.run()
        assert len(set(p0.value)) == 4


class TestPassive:
    def test_put_flush_delivers(self):
        world = make_world()
        target_buf = np.zeros(64, dtype=np.uint8)
        data = np.arange(64, dtype=np.uint8)

        def origin(world):
            comm = world.comm_world(0)
            win = yield from win_create(comm, 64)
            yield from win.lock(1, assertion=MODE_NOCHECK)
            yield from win.put(1, 0, 64, data)
            yield from win.flush(1)
            yield from comm.send(dest=1, tag=1, nbytes=0)
            yield from win.unlock(1, assertion=MODE_NOCHECK)

        def target(world):
            comm = world.comm_world(1)
            win = yield from win_create(comm, 64, target_buf)
            yield from comm.recv(source=0, tag=1, nbytes=0)
            return win.puts_received

        world.launch(0, origin(world))
        p = world.launch(1, target(world))
        world.run()
        assert p.value == 1
        assert (target_buf == data).all()

    def test_put_at_offset(self):
        world = make_world()
        target_buf = np.zeros(64, dtype=np.uint8)

        def origin(world):
            comm = world.comm_world(0)
            win = yield from win_create(comm, 64)
            yield from win.lock(1, assertion=MODE_NOCHECK)
            yield from win.put(1, 16, 16, np.full(16, 9, np.uint8))
            yield from win.flush(1)
            yield from comm.send(dest=1, tag=1, nbytes=0)

        def target(world):
            comm = world.comm_world(1)
            yield from win_create(comm, 64, target_buf)
            yield from comm.recv(source=0, tag=1, nbytes=0)

        world.launch(0, origin(world))
        world.launch(1, target(world))
        world.run()
        assert (target_buf[16:32] == 9).all()
        assert (target_buf[:16] == 0).all() and (target_buf[32:] == 0).all()

    def test_put_outside_epoch_raises(self):
        world = make_world()

        def origin(world):
            comm = world.comm_world(0)
            win = yield from win_create(comm, 64)
            with pytest.raises(RmaSyncError):
                yield from win.put(1, 0, 8)

        def target(world):
            yield from win_create(world.comm_world(1), 64)

        world.launch(0, origin(world))
        world.launch(1, target(world))
        world.run()

    def test_put_beyond_window_raises(self):
        world = make_world()

        def origin(world):
            comm = world.comm_world(0)
            win = yield from win_create(comm, 64)
            yield from win.lock(1, assertion=MODE_NOCHECK)
            with pytest.raises(RmaSyncError):
                yield from win.put(1, 60, 16)

        def target(world):
            yield from win_create(world.comm_world(1), 64)

        world.launch(0, origin(world))
        world.launch(1, target(world))
        world.run()

    def test_double_lock_raises(self):
        world = make_world()

        def origin(world):
            comm = world.comm_world(0)
            win = yield from win_create(comm, 64)
            yield from win.lock(1, assertion=MODE_NOCHECK)
            with pytest.raises(RmaSyncError):
                yield from win.lock(1, assertion=MODE_NOCHECK)

        def target(world):
            yield from win_create(world.comm_world(1), 64)

        world.launch(0, origin(world))
        world.launch(1, target(world))
        world.run()

    def test_real_exclusive_lock_round_trip(self):
        world = make_world()
        buf = np.zeros(8, dtype=np.uint8)

        def origin(world):
            comm = world.comm_world(0)
            win = yield from win_create(comm, 8)
            yield from win.lock(1, LOCK_EXCLUSIVE)
            yield from win.put(1, 0, 8, np.full(8, 3, np.uint8))
            yield from win.unlock(1)
            yield from comm.send(dest=1, tag=1, nbytes=0)

        def target(world):
            comm = world.comm_world(1)
            yield from win_create(comm, 8, buf)
            yield from comm.recv(source=0, tag=1, nbytes=0)

        world.launch(0, origin(world))
        world.launch(1, target(world))
        world.run()
        assert (buf == 3).all()

    def test_nocheck_lock_has_no_wire_traffic(self):
        world = make_world()

        def origin(world):
            comm = world.comm_world(0)
            win = yield from win_create(comm, 8)
            before = world.fabric.packets_sent
            yield from win.lock(1, assertion=MODE_NOCHECK)
            return world.fabric.packets_sent - before

        def target(world):
            yield from win_create(world.comm_world(1), 8)

        p = world.launch(0, origin(world))
        world.launch(1, target(world))
        world.run()
        assert p.value == 0


class TestActive:
    def test_pscw_round_trip(self):
        world = make_world()
        buf = np.zeros(32, dtype=np.uint8)
        data = np.arange(32, dtype=np.uint8)

        def origin(world):
            comm = world.comm_world(0)
            win = yield from win_create(comm, 32)
            yield from win.start([1])
            yield from win.put(1, 0, 32, data)
            yield from win.complete()

        def target(world):
            comm = world.comm_world(1)
            win = yield from win_create(comm, 32, buf)
            yield from win.post([0])
            yield from win.wait()
            return world.env.now

        world.launch(0, origin(world))
        p = world.launch(1, target(world))
        world.run()
        assert (buf == data).all()
        assert p.value > 0

    def test_pscw_reusable_across_iterations(self):
        world = make_world()
        buf = np.zeros(16, dtype=np.uint8)
        seen = []

        def origin(world):
            comm = world.comm_world(0)
            win = yield from win_create(comm, 16)
            for i in range(3):
                yield from win.start([1])
                yield from win.put(1, 0, 16, np.full(16, i + 1, np.uint8))
                yield from win.complete()

        def target(world):
            comm = world.comm_world(1)
            win = yield from win_create(comm, 16, buf)
            for _ in range(3):
                yield from win.post([0])
                yield from win.wait()
                seen.append(int(buf[0]))

        world.launch(0, origin(world))
        world.launch(1, target(world))
        world.run()
        assert seen == [1, 2, 3]

    def test_start_blocks_until_post(self):
        world = make_world()

        def origin(world):
            comm = world.comm_world(0)
            win = yield from win_create(comm, 8)
            yield from win.start([1])
            return world.env.now

        def target(world):
            comm = world.comm_world(1)
            win = yield from win_create(comm, 8)
            yield world.env.timeout(200e-6)
            yield from win.post([0])
            yield from win.wait()

        p = world.launch(0, origin(world))
        t = world.launch(1, target(world))
        world.launch(0, _completer(world, p, t))
        world.run()
        assert p.value > 200e-6

    def test_complete_without_start_raises(self):
        world = make_world()

        def origin(world):
            comm = world.comm_world(0)
            win = yield from win_create(comm, 8)
            with pytest.raises(RmaSyncError):
                yield from win.complete()

        def target(world):
            yield from win_create(world.comm_world(1), 8)

        world.launch(0, origin(world))
        world.launch(1, target(world))
        world.run()

    def test_wait_without_post_raises(self):
        world = make_world()

        def origin(world):
            yield from win_create(world.comm_world(0), 8)

        def target(world):
            win = yield from win_create(world.comm_world(1), 8)
            with pytest.raises(RmaSyncError):
                yield from win.wait()

        world.launch(0, origin(world))
        world.launch(1, target(world))
        world.run()


def _completer(world, origin_proc, target_proc):
    """Close the PSCW epoch so the target's wait() terminates."""
    yield origin_proc
    comm = world.comm_world(0)
    win = world.rank(0).rma_windows[0]
    yield from win.put(1, 0, 8)
    yield from win.complete()
