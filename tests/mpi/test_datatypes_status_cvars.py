"""Unit tests for datatypes, Status, Cvars, and VCI policies."""

import pytest

from repro.mpi import (
    BYTE,
    FLOAT64,
    INT32,
    Cvars,
    Datatype,
    Status,
    VCI_METHOD_COMM,
    VCI_METHOD_TAG_RR,
    VCI_METHOD_THREAD,
    vector,
)
from repro.mpi.vci import vci_for_comm, vci_for_partition_message


class TestDatatypes:
    def test_base_types_contiguous(self):
        assert BYTE.contiguous and INT32.contiguous and FLOAT64.contiguous

    def test_packed_and_span(self):
        assert INT32.packed_bytes(10) == 40
        assert INT32.span_bytes(10) == 40
        assert INT32.span_bytes(0) == 0

    def test_vector_is_noncontiguous(self):
        v = vector(FLOAT64, blocklength=2, stride=4, count=3)
        assert not v.contiguous
        assert v.size == 8 * 2 * 3
        assert v.extent == 8 * (4 * 2 + 2)

    def test_vector_with_stride_equal_block_is_contiguous(self):
        v = vector(BYTE, blocklength=4, stride=4, count=4)
        assert v.contiguous

    def test_vector_validation(self):
        with pytest.raises(ValueError):
            vector(BYTE, blocklength=0, stride=1, count=1)
        with pytest.raises(ValueError):
            vector(BYTE, blocklength=4, stride=2, count=2)

    def test_datatype_validation(self):
        with pytest.raises(ValueError):
            Datatype("bad", size=8, extent=4)


class TestStatus:
    def test_count(self):
        st = Status(source=1, tag=2, nbytes=64)
        assert st.count() == 64
        assert st.count(8) == 8

    def test_count_invalid_itemsize(self):
        with pytest.raises(ValueError):
            Status(0, 0, 8).count(0)

    def test_frozen(self):
        st = Status(0, 0, 8)
        with pytest.raises(Exception):
            st.nbytes = 9


class TestCvars:
    def test_defaults(self):
        cv = Cvars()
        assert cv.num_vcis == 1
        assert cv.vci_method == VCI_METHOD_COMM
        assert cv.part_aggr_size == 0
        assert not cv.part_force_am

    def test_with_updates(self):
        cv = Cvars().with_updates(num_vcis=8)
        assert cv.num_vcis == 8
        assert Cvars().num_vcis == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Cvars(num_vcis=0)
        with pytest.raises(ValueError):
            Cvars(vci_method="bogus")
        with pytest.raises(ValueError):
            Cvars(part_aggr_size=-1)
        with pytest.raises(ValueError):
            Cvars(part_reserved_tags=0)


class TestVciPolicies:
    def test_comm_mapping_by_context(self):
        cv = Cvars(num_vcis=4)
        assert vci_for_comm(cv, 0) == 0
        assert vci_for_comm(cv, 5) == 1

    def test_single_vci_always_zero(self):
        cv = Cvars(num_vcis=1)
        for ctx in range(10):
            assert vci_for_comm(cv, ctx) == 0

    def test_tag_rr_round_robin_by_message(self):
        cv = Cvars(num_vcis=4, vci_method=VCI_METHOD_TAG_RR)
        got = [vci_for_partition_message(cv, 0, m) for m in range(8)]
        assert got == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_thread_policy_uses_thread_id(self):
        cv = Cvars(num_vcis=4, vci_method=VCI_METHOD_THREAD)
        assert vci_for_partition_message(cv, 0, 5, thread_id=2) == 2
        assert vci_for_partition_message(cv, 0, 5, thread_id=6) == 2

    def test_thread_policy_falls_back_to_round_robin(self):
        cv = Cvars(num_vcis=4, vci_method=VCI_METHOD_THREAD)
        assert vci_for_partition_message(cv, 0, 5, thread_id=None) == 1

    def test_comm_method_partition_follows_comm(self):
        cv = Cvars(num_vcis=4, vci_method=VCI_METHOD_COMM)
        assert vci_for_partition_message(cv, 3, 7) == 3
