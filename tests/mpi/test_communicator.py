"""Communicator tests: dup isolation, barriers, tag validation."""

import numpy as np
import pytest

from repro.mpi import ANY_TAG, Cvars, MPIError, MPIWorld, TAG_UB


def make_world(n_ranks=2, **kw):
    kw.setdefault("cvars", Cvars(verify_payloads=True))
    return MPIWorld(n_ranks=n_ranks, **kw)


class TestBasics:
    def test_rank_and_size(self):
        world = make_world()
        c0 = world.comm_world(0)
        c1 = world.comm_world(1)
        assert c0.rank == 0 and c1.rank == 1
        assert c0.size == 2 == c1.size

    def test_comm_world_cached(self):
        world = make_world()
        assert world.comm_world(0) is world.comm_world(0)

    def test_tag_bounds(self):
        world = make_world()
        comm = world.comm_world(0)
        with pytest.raises(MPIError):
            comm.send_init(dest=1, tag=TAG_UB, nbytes=8)
        with pytest.raises(MPIError):
            comm.send_init(dest=1, tag=-1, nbytes=8)

    def test_any_tag_allowed_on_recv_only(self):
        world = make_world()
        comm = world.comm_world(1)
        comm.recv_init(source=0, tag=ANY_TAG, nbytes=8)  # fine
        with pytest.raises(MPIError):
            comm.send_init(dest=0, tag=ANY_TAG, nbytes=8)


class TestDup:
    def test_dup_matching_contexts_across_ranks(self):
        world = make_world()

        def proc(world, rank):
            comm = world.comm_world(rank)
            dup = yield from comm.dup()
            return dup.context_id

        p0 = world.launch(0, proc(world, 0))
        p1 = world.launch(1, proc(world, 1))
        world.run()
        assert p0.value == p1.value != 0

    def test_dup_with_key_is_order_independent(self):
        world = make_world()

        def rank0(world):
            comm = world.comm_world(0)
            a = yield from comm.dup(key=10)
            b = yield from comm.dup(key=20)
            return (a.context_id, b.context_id)

        def rank1(world):
            comm = world.comm_world(1)
            # Opposite order: keys still pair the contexts.
            b = yield from comm.dup(key=20)
            a = yield from comm.dup(key=10)
            return (a.context_id, b.context_id)

        p0 = world.launch(0, rank0(world))
        p1 = world.launch(1, rank1(world))
        world.run()
        assert p0.value == p1.value

    def test_dup_isolates_traffic(self):
        """Same tag on parent and dup'd comm must not cross-match."""
        world = make_world()
        buf_parent = np.zeros(8, dtype=np.uint8)
        buf_dup = np.zeros(8, dtype=np.uint8)

        def sender(world):
            comm = world.comm_world(0)
            dup = yield from comm.dup()
            yield from dup.send(dest=1, tag=5, nbytes=8,
                                data=np.full(8, 2, np.uint8))
            yield from comm.send(dest=1, tag=5, nbytes=8,
                                 data=np.full(8, 1, np.uint8))

        def receiver(world):
            comm = world.comm_world(1)
            dup = yield from comm.dup()
            yield from comm.recv(source=0, tag=5, nbytes=8, buffer=buf_parent)
            yield from dup.recv(source=0, tag=5, nbytes=8, buffer=buf_dup)

        world.launch(0, sender(world))
        world.launch(1, receiver(world))
        world.run()
        assert (buf_parent == 1).all()
        assert (buf_dup == 2).all()

    def test_dups_map_to_distinct_vcis(self):
        world = make_world(cvars=Cvars(num_vcis=4, verify_payloads=True))

        def proc(world):
            comm = world.comm_world(0)
            dups = []
            for i in range(4):
                dups.append((yield from comm.dup()))
            return [d.vci for d in dups]

        p = world.launch(0, proc(world))
        world.run()
        assert len(set(p.value)) == 4


class TestBarrier:
    def test_barrier_synchronizes_two_ranks(self):
        world = make_world()
        times = {}

        def proc(world, rank, delay):
            comm = world.comm_world(rank)
            yield world.env.timeout(delay)
            yield from comm.barrier()
            times[rank] = world.env.now

        world.launch(0, proc(world, 0, 0.0))
        world.launch(1, proc(world, 1, 100e-6))
        world.run()
        # Rank 0 cannot leave before rank 1 arrives.
        assert times[0] >= 100e-6
        assert abs(times[0] - times[1]) < 5e-6

    def test_barrier_many_iterations(self):
        world = make_world()
        counts = []

        def proc(world, rank):
            comm = world.comm_world(rank)
            for i in range(10):
                yield from comm.barrier()
            counts.append(rank)

        world.launch(0, proc(world, 0))
        world.launch(1, proc(world, 1))
        world.run()
        assert sorted(counts) == [0, 1]

    def test_barrier_four_ranks(self):
        world = make_world(n_ranks=4)
        times = {}

        def proc(world, rank, delay):
            comm = world.comm_world(rank)
            yield world.env.timeout(delay)
            yield from comm.barrier()
            times[rank] = world.env.now

        for r, d in enumerate((0.0, 10e-6, 20e-6, 50e-6)):
            world.launch(r, proc(world, r, d))
        world.run()
        assert min(times.values()) >= 50e-6

    def test_single_rank_barrier_is_free(self):
        world = make_world(n_ranks=1)

        def proc(world):
            yield from world.comm_world(0).barrier()
            return world.env.now

        p = world.launch(0, proc(world))
        world.run()
        assert p.value == 0.0


class TestWorld:
    def test_invalid_rank_count(self):
        with pytest.raises(ValueError):
            MPIWorld(n_ranks=0)

    def test_launch_rank_bounds(self):
        world = make_world()

        def proc(world):
            yield world.env.timeout(0)

        with pytest.raises(ValueError):
            world.launch(5, proc(world))

    def test_context_allocation_is_deterministic(self):
        w1 = make_world()
        w2 = make_world()
        assert w1.alloc_context(0, 0) == w2.alloc_context(0, 0)
        assert w1.alloc_context(0, 1) == w2.alloc_context(0, 1)

    def test_now_property(self):
        world = make_world()
        assert world.now == 0.0
