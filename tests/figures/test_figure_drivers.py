"""Quick-mode runs of every figure driver: data shape + headline checks.

These use tiny iteration counts and sparse grids; the full-resolution
regenerations live in ``benchmarks/``.
"""

import pytest

from repro.figures import (
    fig4_improvement,
    fig5_congestion,
    fig6_vcis,
    fig7_aggregation,
    fig8_earlybird,
)

ITERS = 3


@pytest.fixture(scope="module")
def fig4():
    return fig4_improvement.run(iterations=ITERS, quick=True)


@pytest.fixture(scope="module")
def fig5():
    return fig5_congestion.run(iterations=ITERS, quick=True)


@pytest.fixture(scope="module")
def fig6():
    return fig6_vcis.run(iterations=ITERS, quick=True)


@pytest.fixture(scope="module")
def fig7():
    return fig7_aggregation.run(iterations=ITERS, quick=True)


@pytest.fixture(scope="module")
def fig8():
    return fig8_earlybird.run(iterations=ITERS, quick=True)


class TestFig4:
    def test_all_approaches_swept(self, fig4):
        assert set(fig4.sweep.approaches()) == set(fig4_improvement.APPROACHES)

    def test_headline_improvement(self, fig4):
        assert fig4.headline["old_over_new_large"] > 2.0
        assert fig4.headline["part_over_single_small"] == pytest.approx(
            1.0, rel=0.3
        )

    def test_report_renders(self, fig4):
        text = fig4_improvement.report(fig4)
        assert "Figure 4" in text and "paper" in text


class TestFig5:
    def test_headline_penalty(self, fig5):
        assert 15 < fig5.headline["part_penalty_small"] < 45
        assert fig5.headline["rma_many_over_single_win"] > 1.0

    def test_report_renders(self, fig5):
        assert "29.76" in fig5_congestion.report(fig5)


class TestFig6:
    def test_headline_residual(self, fig6):
        assert 2.0 < fig6.headline["part_penalty_small"] < 7.0
        assert fig6.headline["many_penalty_small"] == pytest.approx(1.0, rel=0.3)
        assert fig6.headline["rma_many_over_single_win"] < 1.0

    def test_report_renders(self, fig6):
        assert "4.04" in fig6_vcis.report(fig6)


class TestFig7:
    def test_aggregation_headline(self, fig7):
        assert fig7.headline["noaggr_penalty"] > 8.0
        assert 2.0 < fig7.headline["aggr512_penalty"] < 5.0
        assert fig7.headline["noaggr_penalty"] == pytest.approx(
            fig7.headline["many_penalty"], rel=0.3
        )

    def test_report_renders(self, fig7):
        text = fig7_aggregation.report(fig7)
        assert "aggr=512" in text and "3.13" in text


class TestFig8:
    def test_gain_headline(self, fig8):
        assert 2.3 < fig8.headline["gain_part"] < 2.67
        assert fig8.headline["gain_theory"] == pytest.approx(8 / 3, rel=1e-6)

    def test_gain_approach_agnostic(self, fig8):
        gains = [
            fig8.headline["gain_part"],
            fig8.headline["gain_many"],
            fig8.headline["gain_rma"],
        ]
        assert max(gains) / min(gains) < 1.1

    def test_report_renders(self, fig8):
        assert "2.5417" in fig8_earlybird.report(fig8)
