"""Tests for the Table 1/2 reproductions."""

from repro.bench import APPROACHES
from repro.figures.tables import (
    TABLE1_SENDER,
    TABLE2_RECEIVER,
    table1,
    table2,
)


def test_all_approaches_covered():
    expected = set(APPROACHES) - {"pt2pt_part_old"}  # old shares part's row
    assert set(TABLE1_SENDER) == expected
    assert set(TABLE2_RECEIVER) == expected


def test_paper_table1_key_cells():
    assert TABLE1_SENDER["pt2pt_part"]["init"] == ["MPI_Psend_init"]
    assert TABLE1_SENDER["pt2pt_part"]["ready"] == ["MPI_Pready"]
    assert TABLE1_SENDER["pt2pt_single"]["wait"] == ["MPI_Start", "MPI_Wait"]
    assert "MPI_Comm_dup" in TABLE1_SENDER["pt2pt_many"]["init"]
    assert TABLE1_SENDER["rma_single_passive"]["start"] == ["MPI_Recv"]
    assert "MPI_Win_flush" in TABLE1_SENDER["rma_single_passive"]["wait"]
    assert TABLE1_SENDER["rma_single_active"]["wait"] == ["MPI_Complete"]


def test_paper_table2_key_cells():
    assert TABLE2_RECEIVER["pt2pt_part"]["ready"] == ["MPI_Parrived"]
    assert TABLE2_RECEIVER["rma_single_passive"]["start"] == ["MPI_Send"]
    assert TABLE2_RECEIVER["rma_single_active"]["start"] == ["MPI_Post"]
    assert TABLE2_RECEIVER["rma_single_active"]["wait"] == ["MPI_Wait"]


def test_dup_only_where_paper_lists_it():
    """Table 1: comm_dup for many, rma single (both syncs); not rma many."""
    assert "MPI_Comm_dup" in TABLE1_SENDER["rma_single_passive"]["init"]
    assert "MPI_Comm_dup" in TABLE1_SENDER["rma_single_active"]["init"]
    assert "MPI_Comm_dup" not in TABLE1_SENDER["rma_many_active"]["init"]


def test_rendered_tables_contain_every_row():
    t1, t2 = table1(), table2()
    for name in TABLE1_SENDER:
        assert name in t1
        assert name in t2
    assert "MPI_Pready" in t1
    assert "MPI_Parrived" in t2


def test_every_phase_present():
    for table in (TABLE1_SENDER, TABLE2_RECEIVER):
        for phases in table.values():
            assert set(phases) == {"init", "start", "ready", "wait"}
