"""Telemetry core: registry semantics, histogram binning, spans, merge."""

import json
import math

import pytest

from repro import telemetry
from repro.telemetry import (
    HISTOGRAM_EDGES,
    Histogram,
    MetricsRegistry,
    environment_provenance,
    read_metrics_jsonl,
    stopwatch,
    using_registry,
    write_metrics_jsonl,
)


@pytest.fixture(autouse=True)
def _clean_globals():
    """No test leaks an active registry or trace sink into the next."""
    yield
    telemetry.set_registry(None)
    telemetry.set_trace_sink(None)


class TestDisabledPath:
    def test_no_registry_by_default(self):
        assert telemetry.active_registry() is None

    def test_module_calls_are_noops_without_registry(self):
        telemetry.count("x")
        telemetry.gauge("x", 1.0)
        telemetry.observe("x", 1.0)
        with telemetry.span("x", tag="v"):
            pass

    def test_disabled_span_is_shared_singleton(self):
        assert telemetry.span("a") is telemetry.span("b")

    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.count("c")
        reg.gauge("g", 2.0)
        reg.observe("h", 0.5)
        with reg.span("s"):
            pass
        snap = reg.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}
        assert snap["span_totals"] == {}
        assert snap["spans"] == []

    def test_merge_into_disabled_registry_is_noop(self):
        src = MetricsRegistry()
        src.count("c", 3)
        reg = MetricsRegistry(enabled=False)
        reg.merge_snapshot(src.snapshot())
        assert reg.counters == {}


class TestHistogram:
    def test_exact_edge_values_land_in_upper_bin(self):
        # Bin i covers [edge[i-1], edge[i]): an exact edge value opens
        # the next bin, never rounds down into the previous one.
        for i, edge in enumerate(HISTOGRAM_EDGES[:-1]):
            assert Histogram.bin_index(edge) == i + 1

    def test_values_between_edges(self):
        assert Histogram.bin_index(1.5) == Histogram.bin_index(1.0)
        assert Histogram.bin_index(0.3) == Histogram.bin_index(0.25)
        assert Histogram.bin_index(3.0) == Histogram.bin_index(2.0)

    def test_negative_exponents_floor_correctly(self):
        # floor(log2(0.3)) = -2, not -1: int() truncation would misbin.
        assert Histogram.bin_index(0.3) != Histogram.bin_index(0.5)

    def test_underflow_and_overflow_buckets(self):
        assert Histogram.bin_index(0.0) == 0
        assert Histogram.bin_index(-1.0) == 0
        assert Histogram.bin_index(HISTOGRAM_EDGES[0] / 2) == 0
        assert Histogram.bin_index(HISTOGRAM_EDGES[-1]) == Histogram.N_BINS - 1
        assert Histogram.bin_index(1e30) == Histogram.N_BINS - 1

    def test_matches_float_log2_away_from_edges(self):
        for value in (1e-5, 3.7e-4, 0.02, 0.7, 1.3, 17.0, 900.0):
            expected = math.floor(math.log2(value)) - (-20) + 1
            expected = max(0, min(Histogram.N_BINS - 1, expected))
            assert Histogram.bin_index(value) == expected, value

    def test_observe_accumulates_stats(self):
        hist = Histogram()
        for value in (0.5, 1.5, 2.5):
            hist.observe(value)
        d = hist.to_dict()
        assert d["count"] == 3
        assert d["sum"] == pytest.approx(4.5)
        assert d["min"] == 0.5
        assert d["max"] == 2.5
        assert sum(d["bins"]) == 3

    def test_merge_is_elementwise(self):
        a, b = Histogram(), Histogram()
        a.observe(1.0)
        b.observe(1.0)
        b.observe(100.0)
        a.merge(b.to_dict())
        d = a.to_dict()
        assert d["count"] == 3
        assert d["max"] == 100.0
        assert d["bins"][Histogram.bin_index(1.0)] == 2


class TestSpans:
    def test_nesting_parent_and_depth(self):
        reg = MetricsRegistry()
        with using_registry(reg):
            with telemetry.span("outer"):
                with telemetry.span("inner"):
                    pass
        by_name = {s["name"]: s for s in reg.spans}
        assert by_name["outer"]["parent"] is None
        assert by_name["outer"]["depth"] == 0
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["inner"]["depth"] == 1

    def test_exception_safety(self):
        reg = MetricsRegistry()
        with using_registry(reg):
            with pytest.raises(RuntimeError):
                with telemetry.span("fails"):
                    raise RuntimeError("boom")
            # the failed span still recorded, the stack unwound
            with telemetry.span("after"):
                pass
        assert reg.span_totals["fails"][0] == 1
        assert {s["name"]: s["depth"] for s in reg.spans} == {
            "fails": 0,
            "after": 0,
        }

    def test_totals_accumulate_past_raw_cap(self, monkeypatch):
        monkeypatch.setattr(telemetry, "MAX_RAW_SPANS", 5)
        reg = MetricsRegistry()
        with using_registry(reg):
            for _ in range(10):
                with telemetry.span("hot"):
                    pass
        assert len(reg.spans) == 5
        assert reg.span_totals["hot"][0] == 10

    def test_span_tags_key_metrics(self):
        reg = MetricsRegistry()
        reg.count("points", 2, kind="bench")
        reg.count("points", 3, kind="bench")
        assert reg.counters == {"points{kind=bench}": 5}


class TestMergeSnapshot:
    def test_counters_and_totals_add_gauges_last_wins(self):
        parent = MetricsRegistry()
        parent.count("c", 1)
        parent.gauge("g", 1.0)
        with parent.span("s"):
            pass
        worker = MetricsRegistry()
        worker.count("c", 2)
        worker.gauge("g", 9.0)
        worker.observe("h", 0.25)
        with worker.span("s"):
            pass
        parent.merge_snapshot(worker.snapshot_and_reset())
        assert parent.counters["c"] == 3
        assert parent.gauges["g"] == 9.0
        assert parent.span_totals["s"][0] == 2
        assert parent.histograms["h"].count == 1
        # the worker shipped a delta and zeroed itself
        assert worker.counters == {} and worker.span_totals == {}

    def test_worker_raw_spans_not_grafted(self):
        parent = MetricsRegistry()
        worker = MetricsRegistry()
        with worker.span("w"):
            pass
        parent.merge_snapshot(worker.snapshot())
        assert parent.spans == []
        assert parent.span_totals["w"][0] == 1


class TestJsonlRoundTrip:
    def test_write_and_read(self, tmp_path):
        reg = MetricsRegistry()
        reg.count("campaign.points", 42)
        reg.gauge("planner.workers", 4)
        reg.observe("executor.window_occupancy", 3)
        with reg.span("campaign.run"):
            with reg.span("kernel.eval"):
                pass
        path = tmp_path / "metrics.jsonl"
        write_metrics_jsonl(
            path, reg, producer={"tool": "test"}, summary={"ok": True}
        )
        out = read_metrics_jsonl(path)
        assert out["header"]["schema"] == telemetry.TELEMETRY_SCHEMA
        assert out["header"]["producer"] == {"tool": "test"}
        assert out["header"]["env"]["cpu_count"] >= 1
        assert out["counters"]["campaign.points"] == 42
        assert out["gauges"]["planner.workers"] == 4
        assert out["histograms"]["executor.window_occupancy"]["count"] == 1
        assert out["span_totals"]["campaign.run"]["count"] == 1
        assert {s["name"] for s in out["spans"]} == {
            "campaign.run",
            "kernel.eval",
        }
        assert out["summary"] == {"ok": True}

    def test_every_line_is_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.count("c")
        path = tmp_path / "metrics.jsonl"
        write_metrics_jsonl(path, reg)
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_headerless_file_rejected(self, tmp_path):
        path = tmp_path / "not-metrics.jsonl"
        path.write_text('{"type":"counter","name":"c","value":1}\n')
        with pytest.raises(ValueError):
            read_metrics_jsonl(path)

    def test_trace_records_stream(self, tmp_path):
        from repro.sim.trace import TraceRecord

        path = tmp_path / "metrics.jsonl"
        sink = telemetry.MetricsSink(path, producer={})
        sink.write_trace(TraceRecord(1.5e-6, "nic", "tx", {"nbytes": 64}))
        sink.close()
        out = read_metrics_jsonl(path)
        assert out["traces"] == [
            {"t": 1.5e-6, "category": "nic", "event": "tx",
             "fields": {"nbytes": 64}}
        ]


class TestHelpers:
    def test_stopwatch_freezes_on_exit(self):
        with stopwatch() as sw:
            live = sw.wall
            assert live >= 0.0
        frozen = sw.wall
        assert frozen >= live
        assert sw.wall == frozen

    def test_environment_provenance_fields(self):
        env = environment_provenance()
        assert set(env) == {
            "python", "implementation", "platform", "machine", "cpu_count",
        }
        assert env["cpu_count"] >= 1

    def test_using_registry_restores_previous(self):
        outer = MetricsRegistry()
        inner = MetricsRegistry()
        telemetry.set_registry(outer)
        with using_registry(inner):
            assert telemetry.active_registry() is inner
        assert telemetry.active_registry() is outer
