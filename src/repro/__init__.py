"""repro — reproduction of "Quantifying the Performance Benefits of
Partitioned Communication in MPI" (Gillis et al., ICPP 2023).

A deterministic discrete-event simulator of an MPICH-like MPI runtime
(point-to-point, RMA, and MPI-4.0 partitioned communication over a
UCX-style protocol ladder with VCIs), the paper's analytic performance
model, and the complete benchmark harness regenerating every figure and
table of the evaluation.

Quick start
-----------
>>> from repro.bench import BenchSpec, run_benchmark
>>> spec = BenchSpec(approach="pt2pt_part", total_bytes=1 << 20,
...                  n_threads=4, theta=1, iterations=5)
>>> result = run_benchmark(spec)
>>> result.mean_us > 0
True

Application patterns (``repro.apps``)
-------------------------------------
Beyond the paper's two-rank harness, :mod:`repro.apps` runs N-rank
application communication patterns — ``halo3d`` (3-D Cartesian 6-face
ghost exchange), ``sweep3d`` (KBA wavefront), ``fft`` (all-to-all
transpose) — under any registered approach, with Single/Uniform/
Gaussian injected noise and JSON-persisted sweeps (``BENCH_apps.json``;
CLI: ``python -m repro apps --pattern halo3d --ranks 8``).

>>> from repro.apps import PatternConfig, run_pattern
>>> cfg = PatternConfig(pattern="halo3d", approach="pt2pt_part",
...                     n_ranks=8, n_threads=2, msg_bytes=1 << 14,
...                     iterations=3, compute_us_per_mb=200.0)
>>> run_pattern(cfg).mean_us > 0
True
"""

__version__ = "1.1.0"

__all__ = ["sim", "net", "mpi", "threads", "model", "bench", "figures",
           "apps", "telemetry", "__version__"]
