"""repro — reproduction of "Quantifying the Performance Benefits of
Partitioned Communication in MPI" (Gillis et al., ICPP 2023).

A deterministic discrete-event simulator of an MPICH-like MPI runtime
(point-to-point, RMA, and MPI-4.0 partitioned communication over a
UCX-style protocol ladder with VCIs), the paper's analytic performance
model, and the complete benchmark harness regenerating every figure and
table of the evaluation.

Quick start
-----------
>>> from repro.bench import BenchSpec, run_benchmark
>>> spec = BenchSpec(approach="pt2pt_part", total_bytes=1 << 20,
...                  n_threads=4, theta=1, iterations=5)
>>> result = run_benchmark(spec)
>>> result.mean_us > 0
True
"""

__version__ = "1.0.0"

__all__ = ["sim", "net", "mpi", "threads", "model", "bench", "figures",
           "__version__"]
