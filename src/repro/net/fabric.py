"""The fabric: directional wires connecting the simulated NICs.

Each ordered rank pair shares one full-duplex link, modelled as a pair of
directional wire resources.  A packet occupies its direction's wire for
``wire_gap + (payload + header) / bandwidth`` (serialization), then lands
at the destination NIC one ``latency`` later (propagation pipelines with
subsequent packets).  This shared-wire serialization is what bounds the
multi-VCI case of Fig. 6: with per-thread VCIs the lock contention is
gone but 32 messages still cross one link.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..sim import Environment, Resource, Tracer
from .nic import Nic
from .packets import Packet
from .params import SystemParams

__all__ = ["Fabric"]


class Fabric:
    """Connects ranks; owns the wires; delivers packets."""

    #: Time for a loopback (self-send) delivery, bypassing the wire.
    SELF_LATENCY = 0.1e-6

    def __init__(self, env: Environment, params: SystemParams, tracer: Tracer):
        self.env = env
        self.params = params
        self.tracer = tracer
        self._nics: Dict[int, Nic] = {}
        self._wires: Dict[Tuple[int, int], Resource] = {}
        self.packets_sent = 0
        self.bytes_sent = 0

    def register(self, nic: Nic) -> None:
        """Attach a NIC; its VCIs will inject through this fabric."""
        if nic.rank in self._nics:
            raise ValueError(f"rank {nic.rank} already registered")
        self._nics[nic.rank] = nic
        nic.attach_fabric(self.transmit)

    def nic(self, rank: int) -> Nic:
        return self._nics[rank]

    @property
    def ranks(self) -> Tuple[int, ...]:
        return tuple(sorted(self._nics))

    def _wire(self, src: int, dst: int) -> Resource:
        key = (src, dst)
        wire = self._wires.get(key)
        if wire is None:
            wire = Resource(self.env, capacity=1, name=f"wire{src}->{dst}")
            self._wires[key] = wire
        return wire

    def wire_stats(self, src: int, dst: int):
        """Queueing stats of the (src → dst) wire."""
        return self._wire(src, dst).stats

    # ------------------------------------------------------------------
    def transmit(self, pkt: Packet):
        """Generator: carry ``pkt`` across the wire (called by VCI TX loops)."""
        if pkt.dst not in self._nics:
            raise ValueError(f"packet to unregistered rank {pkt.dst}")
        self.packets_sent += 1
        self.bytes_sent += pkt.nbytes
        if pkt.src == pkt.dst:
            self.env.process(self._deliver_later(pkt, self.SELF_LATENCY))
            return
        wire = self._wire(pkt.src, pkt.dst)
        req = wire.request()
        yield req
        yield self.env.timeout(self.params.wire_time(pkt.nbytes))
        wire.release(req)
        self.tracer.log("fabric", "wire", pkt=pkt.describe())
        self.env.process(self._deliver_later(pkt, self.params.latency))

    def _deliver_later(self, pkt: Packet, delay: float):
        yield self.env.timeout(delay)
        self._nics[pkt.dst].deliver(pkt)
