"""Simulated NIC with virtual communication interfaces (VCIs).

MPICH multiplexes independent *virtual communication interfaces* over the
hardware to let concurrent threads drive the network without sharing
state (Zambre et al. [14] in the paper).  Each :class:`Vci` owns

* a **command-queue lock** — the mutex threads must hold to post work;
  this is where the thread-congestion of Fig. 5 materializes,
* a **TX queue** and injection process — per-VCI FIFO ordering onto the
  shared wire,
* an **RX queue** and handling process — per-VCI serialization of
  incoming-message processing.

Posting cost grows with the number of contenders on the lock
(cache-line bouncing under ``MPI_THREAD_MULTIPLE``); see
:meth:`SystemParams.atomic_time` and ``vci_contention_coeff``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..sim import Environment, Lock, Store, Tracer
from .packets import Packet, PacketKind
from .params import Protocol, SystemParams

__all__ = ["Vci", "Nic"]


class Vci:
    """One virtual communication interface of a NIC."""

    def __init__(
        self,
        env: Environment,
        rank: int,
        index: int,
        params: SystemParams,
        tracer: Tracer,
    ):
        self.env = env
        self.rank = rank
        self.index = index
        self.params = params
        self.tracer = tracer
        self.lock = Lock(env, name=f"r{rank}.vci{index}.cmdq")
        self.tx_store = Store(env, name=f"r{rank}.vci{index}.tx")
        self.rx_store = Store(env, name=f"r{rank}.vci{index}.rx")
        #: Recently active posting threads: agent id -> last post time.
        self._agents: Dict[int, float] = {}
        #: Largest number of simultaneous claimants since the lock was
        #: last idle (the size of the current contention episode).
        self._episode_peak = 0
        self._transmit: Optional[Callable] = None  # set by Nic
        self._handler: Optional[Callable[[Packet], None]] = None
        self.tx_count = 0
        self.rx_count = 0
        env.process(self._tx_loop())
        env.process(self._rx_loop())

    # -- sender side -----------------------------------------------------------
    def _other_agents(self, me: int) -> int:
        """Number of *other* threads active on this VCI within the window.

        Contention is driven by how many distinct threads share the VCI
        (each handoff moves the lock and descriptor cache lines between
        cores), so the multiplier counts the threads seen within
        ``vci_agent_window`` rather than the instantaneous queue length.
        """
        now = self.env.now
        window = self.params.vci_agent_window
        stale = [a for a, t in self._agents.items() if now - t > window]
        for a in stale:
            del self._agents[a]
        return sum(1 for a in self._agents if a != me)

    def post(self, pkt: Packet, base_cost: float, copy_bytes: int = 0):
        """Post ``pkt`` from the calling process (generator; yield from it).

        Models the command-queue critical section: acquire the VCI lock,
        pay ``base_cost`` inflated by the number of contending threads,
        pay any bounce-buffer copy, enqueue for injection, release.

        The contender count is the larger of (a) the peak number of
        simultaneous claimants since the lock was last idle (a burst of
        N threads costs every poster the N-way cache-line fight, even
        the first one served) and (b) the distinct threads seen within
        the recent-activity window (staggered arrivals keep bouncing
        lines while the burst lasts).
        """
        me = self.env.active_process.serial
        self._agents[me] = self.env.now
        claimants = self.lock.queue_length + self.lock.count + 1
        if claimants == 1:
            self._episode_peak = 1  # lock idle: a new episode begins
        else:
            self._episode_peak = max(self._episode_peak, claimants)
        req = self.lock.request()
        yield req
        self._agents[me] = self.env.now  # refresh: we waited in line
        self._episode_peak = max(self._episode_peak, self.lock.queue_length + 1)
        contenders = max(self._episode_peak - 1, self._other_agents(me))
        cost = base_cost * self.params.contention_multiplier(contenders)
        if copy_bytes:
            cost += self.params.copy_time(copy_bytes)
        yield self.env.timeout(cost)
        self.tx_count += 1
        self.tracer.log(
            "nic",
            "post",
            rank=self.rank,
            vci=self.index,
            pkt=pkt.describe(),
            contenders=contenders,
        )
        self.tx_store.put(pkt)
        self.lock.release(req)

    # -- injection ----------------------------------------------------------------
    def _tx_loop(self):
        while True:
            pkt = yield self.tx_store.get()
            # The fabric transmit generator serializes on the shared wire.
            yield from self._transmit(pkt)

    # -- receive ---------------------------------------------------------------------
    def _rx_loop(self):
        while True:
            pkt = yield self.rx_store.get()
            cost = self._rx_cost(pkt)
            if cost > 0.0:
                yield self.env.timeout(cost)
            self.rx_count += 1
            self.tracer.log(
                "nic", "recv", rank=self.rank, vci=self.index, pkt=pkt.describe()
            )
            self._handler(pkt)

    def _rx_cost(self, pkt: Packet) -> float:
        """Receive-side processing cost by packet kind."""
        p = self.params
        kind = pkt.kind
        if kind == PacketKind.EAGER:
            cost = p.recv_overhead
            if p.protocol_for(pkt.nbytes) is not Protocol.SHORT:
                cost += p.copy_time(pkt.nbytes)  # bounce-buffer unpack
            return cost
        if kind == PacketKind.AM:
            # The receiver-side bounce copy is chunk-pipelined with the
            # wire in MPICH's AM path: only the final chunk's copy-out
            # is serial here (the sender-side copy is charged at
            # posting time).
            tail = min(pkt.nbytes, p.am_chunk_bytes)
            return p.am_dispatch_overhead + p.copy_time(tail)
        if kind == PacketKind.RDMA_DATA:
            return p.put_handler_overhead
        if kind == PacketKind.RMA_PUT:
            return p.put_handler_overhead
        if kind in (PacketKind.RTS, PacketKind.CTS, PacketKind.RMA_CTRL, PacketKind.CTRL):
            return p.ctrl_overhead
        raise ValueError(f"unhandled packet kind {kind!r}")  # pragma: no cover


class Nic:
    """A rank's network interface: a set of VCIs sharing the wire."""

    def __init__(
        self,
        env: Environment,
        rank: int,
        params: SystemParams,
        tracer: Tracer,
        n_vcis: int = 1,
    ):
        if n_vcis < 1:
            raise ValueError("n_vcis must be >= 1")
        self.env = env
        self.rank = rank
        self.params = params
        self.tracer = tracer
        self.vcis: List[Vci] = [
            Vci(env, rank, i, params, tracer) for i in range(n_vcis)
        ]

    @property
    def n_vcis(self) -> int:
        return len(self.vcis)

    def vci(self, index: int) -> Vci:
        """VCI by index, wrapping modulo the configured count."""
        return self.vcis[index % len(self.vcis)]

    def attach_fabric(self, transmit: Callable) -> None:
        """Wire every VCI's injection path to the fabric."""
        for vci in self.vcis:
            vci._transmit = transmit

    def set_handler(self, handler: Callable[[Packet], None]) -> None:
        """Install the runtime's packet handler on every VCI."""
        for vci in self.vcis:
            vci._handler = handler

    def deliver(self, pkt: Packet) -> None:
        """Called by the fabric when a packet arrives at this NIC."""
        self.vci(pkt.dst_vci).rx_store.put(pkt)

    def post(self, vci_index: int, pkt: Packet, base_cost: float, copy_bytes: int = 0):
        """Post via a VCI (generator; see :meth:`Vci.post`)."""
        return self.vci(vci_index).post(pkt, base_cost, copy_bytes)
