"""System parameters: the calibrated cost model of the simulated testbed.

The defaults model the paper's testbed: two MeluXina CPU nodes (AMD EPYC
7H12) connected by Mellanox HDR200 InfiniBand (25 GB/s payload bandwidth,
1.22 µs end-to-end latency) running MPICH over ucx-1.13.1.  The three-level
protocol ladder (``short`` / ``bcopy`` / ``zcopy``) and its thresholds
follow the jumps the paper identifies in Fig. 4: short→bcopy between
1024 B and 2048 B, bcopy→zcopy (rendezvous) between 8192 B and 16384 B.

All times are in **seconds**, sizes in **bytes**, bandwidths in **B/s**.

Calibration notes
-----------------
* ``post_overhead`` and ``vci_contention_coeff`` set the thread-congestion
  penalty of Fig. 5 (~×30 for 32 threads on one VCI).
* ``wire_gap`` sets the residual per-message serialization of Fig. 6
  (~×4 with one VCI per thread).
* ``atomic_overhead``/``atomic_bounce_coeff`` set the partitioned-path
  residual of Figs. 6 and 7 (shared-counter cache-line bouncing).
* ``copy_bandwidth`` sets the bcopy step and the AM path's large-message
  penalty in Fig. 4.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict

__all__ = ["Protocol", "SystemParams", "MELUXINA"]


class Protocol(enum.Enum):
    """UCX-style wire protocol for a point-to-point message."""

    #: Payload rides inline in the header packet (tiny messages).
    SHORT = "short"
    #: Eager buffered-copy: memcpy through bounce buffers on both sides.
    BCOPY = "bcopy"
    #: Rendezvous zero-copy: RTS/CTS handshake then RDMA at full bandwidth.
    ZCOPY = "zcopy"


@dataclass(frozen=True)
class SystemParams:
    """Every tunable cost in the simulated system.

    Instances are immutable; derive variants with :meth:`with_updates`.
    """

    # ----- wire -------------------------------------------------------------
    #: Network payload bandwidth (B/s). Paper: 25 GB/s HDR200.
    bandwidth: float = 25e9
    #: One-way wire latency (s). Paper: 1.22 µs.
    latency: float = 1.22e-6
    #: Per-message wire/DMA setup occupancy on the shared link (s).
    wire_gap: float = 0.02e-6
    #: Bytes of header per packet (counted against wire occupancy).
    header_bytes: int = 64

    # ----- protocol ladder -----------------------------------------------------
    #: Largest payload sent with the ``short`` protocol (inclusive).
    short_max: int = 1024
    #: Largest payload sent eagerly via ``bcopy`` (inclusive); above this,
    #: rendezvous ``zcopy``.
    eager_max: int = 8192
    #: memcpy bandwidth for bounce-buffer copies (B/s per side).
    copy_bandwidth: float = 12e9

    # ----- host-side messaging costs -------------------------------------------
    #: CPU time to post one tag-matched send while holding the VCI lock (s).
    post_overhead: float = 0.20e-6
    #: CPU time to match + complete one incoming tag-matched message (s).
    recv_overhead: float = 0.25e-6
    #: CPU time to post one receive into the matching engine (s).
    recv_post_overhead: float = 0.05e-6
    #: CPU time to post one RMA put (cheaper than a tag-matched send, §3.2).
    put_overhead: float = 0.15e-6
    #: Target-side handling of an incoming put (no matching needed) (s).
    put_handler_overhead: float = 0.10e-6
    #: Handling of a 0-byte control packet (RTS/CTS/ack/token) (s).
    ctrl_overhead: float = 0.10e-6
    #: Extra per-message dispatch cost on the active-message path (s).
    am_dispatch_overhead: float = 0.80e-6
    #: Progress-engine scan cost per *additional* window sharing a VCI
    #: (the RMA-many-passive overhead of Fig. 5), paid when acking a
    #: flush (s).
    rma_progress_scan: float = 0.05e-6
    #: CPU cost of an RMA epoch transition (Post/Start/Complete/Wait,
    #: and Flush issue): state-machine and group bookkeeping in MPICH.
    rma_sync_overhead: float = 0.60e-6
    #: AM transfers are chunked; the receiver's bounce copy overlaps the
    #: wire except for the final chunk of this size (B).
    am_chunk_bytes: int = 65536

    # ----- contention model --------------------------------------------------------
    #: Linear term of the VCI-lock contention multiplier: the effective
    #: post cost is ``base * (1 + a*n + b*n^2)`` for ``n`` contenders,
    #: modelling lock handoff plus the superlinear cache-line bouncing
    #: measured under MPI_THREAD_MULTIPLE (Fig. 5's ~x30 at 32 threads
    #: coexisting with Fig. 7's mild 4-thread penalty).
    vci_contention_coeff: float = 0.13
    #: Quadratic term of the contention multiplier (see above).
    vci_contention_quad: float = 0.0122
    #: Sliding window for counting distinct contender threads on a VCI
    #: lock (s): a thread that posted within this window still owns
    #: lock/descriptor cache lines, so handoffs to other threads pay the
    #: transfer even when the instantaneous queue is empty.
    vci_agent_window: float = 3.0e-6
    #: Cost of one uncontended atomic counter update (s).
    atomic_overhead: float = 0.02e-6
    #: Extra cost per concurrent context hammering the same cache line
    #: (s).  Receive-side partitioned completion counters serialize
    #: these updates (ownership of the counter line moves between the
    #: progress contexts), which is the residual partitioned overhead of
    #: Fig. 6 (§4.2.2).
    atomic_bounce_coeff: float = 0.018e-6
    #: Bounce term for the *sender-side* ``MPI_Pready`` counters; small,
    #: because each message's counter is mostly touched by the few
    #: threads contributing to that message.
    pready_atomic_bounce: float = 0.002e-6

    # ----- threading -----------------------------------------------------------------
    #: Per-round cost of a tree thread-barrier: total ≈ base * ceil(log2(N)).
    thread_barrier_base: float = 0.15e-6
    #: Cost of forking/waking a thread team (one-time, outside timed region).
    thread_fork_overhead: float = 1.0e-6

    # ----- partitioned-path specifics -----------------------------------------------
    #: Extra completion bookkeeping for a partitioned request per wait (s).
    part_completion_overhead: float = 0.10e-6
    #: Per-partition bookkeeping inside MPI_Pready before the atomic (s).
    pready_overhead: float = 0.02e-6

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.copy_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.latency < 0 or self.wire_gap < 0:
            raise ValueError("latency and wire_gap must be non-negative")
        if not (0 < self.short_max <= self.eager_max):
            raise ValueError(
                "thresholds must satisfy 0 < short_max <= eager_max"
            )

    # ------------------------------------------------------------------
    def protocol_for(self, nbytes: int) -> Protocol:
        """Wire protocol selected for a ``nbytes`` point-to-point payload."""
        if nbytes <= self.short_max:
            return Protocol.SHORT
        if nbytes <= self.eager_max:
            return Protocol.BCOPY
        return Protocol.ZCOPY

    def wire_time(self, nbytes: int) -> float:
        """Wire occupancy of one packet carrying ``nbytes`` of payload."""
        return self.wire_gap + (nbytes + self.header_bytes) / self.bandwidth

    def copy_time(self, nbytes: int) -> float:
        """Time for one memcpy of ``nbytes``."""
        return nbytes / self.copy_bandwidth

    def barrier_time(self, parties: int) -> float:
        """Cost of one tree barrier across ``parties`` threads."""
        if parties <= 1:
            return 0.0
        rounds = (parties - 1).bit_length()  # ceil(log2(parties))
        return self.thread_barrier_base * rounds

    def atomic_time(self, contenders: int = 1) -> float:
        """Cost of one atomic RMW with ``contenders`` concurrent threads."""
        extra = max(0, contenders - 1)
        return self.atomic_overhead + self.atomic_bounce_coeff * extra

    def pready_atomic_time(self, contenders: int = 1) -> float:
        """Cost of one ``MPI_Pready`` counter decrement."""
        extra = max(0, contenders - 1)
        return self.atomic_overhead + self.pready_atomic_bounce * extra

    def contention_multiplier(self, contenders: int) -> float:
        """VCI-lock cost multiplier for ``contenders`` competing threads."""
        n = max(0, contenders)
        return 1.0 + self.vci_contention_coeff * n + self.vci_contention_quad * n * n

    def min_message_time(self) -> float:
        """Lower bound for any remote message (post + wire + latency)."""
        return self.post_overhead + self.wire_gap + self.latency

    def with_updates(self, **kwargs: float) -> "SystemParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def describe(self) -> Dict[str, float]:
        """Flat dict of all parameters (for reports)."""
        return {k: getattr(self, k) for k in self.__dataclass_fields__}


#: The calibrated MeluXina-like preset used throughout the reproduction.
MELUXINA = SystemParams()
