"""Network substrate: parameters, packets, NICs/VCIs, and the fabric."""

from .fabric import Fabric
from .nic import Nic, Vci
from .packets import Packet, PacketKind
from .params import MELUXINA, Protocol, SystemParams

__all__ = [
    "SystemParams",
    "MELUXINA",
    "Protocol",
    "Packet",
    "PacketKind",
    "Nic",
    "Vci",
    "Fabric",
]
