"""Wire packets exchanged between simulated NICs.

A :class:`Packet` is the unit the fabric transmits.  The ``kind`` field
selects the receive-side cost model and the runtime handler; the
``header`` dict carries protocol fields (tag, context id, sequence
numbers, request identifiers).  Packets optionally carry a real
``payload`` (a ``numpy`` array copy) so integration tests can verify
end-to-end data movement; benchmark runs use ``payload=None`` and only
account for ``nbytes``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

__all__ = ["PacketKind", "Packet"]

_packet_ids = itertools.count()


class PacketKind:
    """Enumeration (string constants) of wire packet kinds."""

    #: Eager tag-matched message (short or bcopy protocol).
    EAGER = "eager"
    #: Rendezvous ready-to-send control message.
    RTS = "rts"
    #: Rendezvous / partitioned clear-to-send control message.
    CTS = "cts"
    #: Rendezvous bulk data (zcopy RDMA read/write).
    RDMA_DATA = "rdma_data"
    #: Active-message packet (header + bounced payload).
    AM = "am"
    #: RMA put data.
    RMA_PUT = "rma_put"
    #: RMA control (flush request, flush ack, post/complete tokens).
    RMA_CTRL = "rma_ctrl"
    #: Generic 0-byte control (barrier, ack).
    CTRL = "ctrl"

    ALL = (EAGER, RTS, CTS, RDMA_DATA, AM, RMA_PUT, RMA_CTRL, CTRL)


@dataclass
class Packet:
    """One message on the wire.

    Attributes
    ----------
    kind:
        One of :class:`PacketKind`.
    src, dst:
        Sending and receiving rank.
    src_vci, dst_vci:
        VCI index used on each side (MPICH encodes these in the tag).
    nbytes:
        Payload bytes carried (0 for pure control packets).
    header:
        Protocol fields.
    payload:
        Optional data copy for correctness-checked runs.
    """

    kind: str
    src: int
    dst: int
    nbytes: int = 0
    src_vci: int = 0
    dst_vci: int = 0
    header: Dict[str, Any] = field(default_factory=dict)
    payload: Optional[np.ndarray] = None
    uid: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.kind not in PacketKind.ALL:
            raise ValueError(f"unknown packet kind {self.kind!r}")
        if self.nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if self.payload is not None and self.payload.nbytes != self.nbytes:
            raise ValueError(
                f"payload carries {self.payload.nbytes} B but nbytes={self.nbytes}"
            )

    def describe(self) -> str:
        """Short human-readable description for traces."""
        return (
            f"{self.kind}#{self.uid} {self.src}->{self.dst} "
            f"vci{self.src_vci}->{self.dst_vci} {self.nbytes}B"
        )
