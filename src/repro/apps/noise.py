"""Noise injection for the application patterns (Temuçin et al., ICPP'22).

The Halo3D/Sweep3D micro-benchmark suite perturbs the per-thread kernel
time with three injected-noise shapes before partitions are marked
ready:

* **Single** — the whole noise budget lands on one designated thread
  (a noisy core); the other threads are unperturbed.  This is the worst
  case for bulk-synchronized approaches, which wait for the slowest
  thread, and the best showcase for partitioned/early-bird overlap.
* **Uniform** — every thread draws an independent delay from
  ``U(0, 2·amplitude)`` (mean ``amplitude``).
* **Gaussian** — every thread draws from ``N(amplitude, sigma)``,
  truncated at zero.

A noise model composes with any existing
:class:`~repro.threads.compute.ComputeModel` through
:class:`NoisyComputeModel`: the base model supplies the useful work per
partition, the noise model adds the injected perturbation on top.  All
draws come from a caller-supplied seeded generator, so runs stay
deterministic.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

import numpy as np

from ..threads import ComputeModel

__all__ = [
    "NoiseModel",
    "NoNoise",
    "SingleNoise",
    "UniformNoise",
    "GaussianNoise",
    "NoisyComputeModel",
    "NOISE_MODELS",
    "make_noise",
]


class NoiseModel:
    """Interface: injected delay (seconds) per thread compute quantum."""

    #: Registry key.
    name = "abstract"

    def delay(
        self, thread_id: int, n_threads: int, rng: np.random.Generator
    ) -> float:
        """Injected delay for one partition's compute on ``thread_id``."""
        raise NotImplementedError


class NoNoise(NoiseModel):
    """No injected noise (the deterministic baseline)."""

    name = "none"

    def __init__(self, amplitude: float = 0.0, sigma: float = 0.0):
        pass

    def delay(self, thread_id, n_threads, rng):
        return 0.0


class SingleNoise(NoiseModel):
    """The full noise amplitude on one victim thread, zero elsewhere.

    Parameters
    ----------
    amplitude:
        Injected delay in seconds for the victim thread.
    victim:
        The perturbed thread id (reduced modulo the team size).
    """

    name = "single"

    def __init__(self, amplitude: float, sigma: float = 0.0, victim: int = 0):
        if amplitude < 0:
            raise ValueError("amplitude must be >= 0")
        self.amplitude = amplitude
        self.victim = victim

    def delay(self, thread_id, n_threads, rng):
        if thread_id == self.victim % n_threads:
            return self.amplitude
        return 0.0


class UniformNoise(NoiseModel):
    """Per-thread delay drawn from ``U(0, 2·amplitude)`` (mean = amplitude)."""

    name = "uniform"

    def __init__(self, amplitude: float, sigma: float = 0.0):
        if amplitude < 0:
            raise ValueError("amplitude must be >= 0")
        self.amplitude = amplitude

    def delay(self, thread_id, n_threads, rng):
        if self.amplitude == 0:
            return 0.0
        return float(rng.uniform(0.0, 2.0 * self.amplitude))


class GaussianNoise(NoiseModel):
    """Per-thread delay drawn from ``N(amplitude, sigma)``, truncated ≥ 0."""

    name = "gaussian"

    def __init__(self, amplitude: float, sigma: float = 0.0):
        if amplitude < 0 or sigma < 0:
            raise ValueError("amplitude and sigma must be >= 0")
        self.amplitude = amplitude
        self.sigma = sigma

    def delay(self, thread_id, n_threads, rng):
        if self.amplitude == 0 and self.sigma == 0:
            return 0.0
        return max(0.0, float(rng.normal(self.amplitude, self.sigma)))


#: Registry: noise key -> class.
NOISE_MODELS: Dict[str, Type[NoiseModel]] = {
    cls.name: cls for cls in (NoNoise, SingleNoise, UniformNoise, GaussianNoise)
}


def make_noise(name: str, amplitude: float, sigma: float = 0.0) -> NoiseModel:
    """Build a registered noise model from its key and parameters."""
    if name not in NOISE_MODELS:
        raise KeyError(
            f"unknown noise model {name!r}; choose from {sorted(NOISE_MODELS)}"
        )
    return NOISE_MODELS[name](amplitude, sigma)


class NoisyComputeModel(ComputeModel):
    """A base compute model with injected noise layered on top.

    ``compute_time`` is the base model's useful work plus the noise
    model's injected delay for the calling thread, drawn from the given
    seeded generator.
    """

    def __init__(
        self,
        base: ComputeModel,
        noise: NoiseModel,
        rng: Optional[np.random.Generator] = None,
    ):
        self.base = base
        self.noise = noise
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def compute_time(self, thread_id, partition, part_bytes, n_threads, theta):
        useful = self.base.compute_time(
            thread_id, partition, part_bytes, n_threads, theta
        )
        return useful + self.noise.delay(thread_id, n_threads, self.rng)

    def reset(self) -> None:
        self.base.reset()
