"""Pattern sweeps with JSON persistence (the ``BENCH_apps.json`` feed).

A :class:`PatternSweep` collects :class:`~repro.apps.base.PatternResult`
points across patterns × approaches × sizes × noise shapes, answers
cross-approach queries (speedup vs a baseline), and round-trips through
JSON so app-pattern runs feed the repo's performance trajectory the same
way the figure benchmarks do.

The serialized form captures the full :class:`PatternConfig` — including
the machine model (:class:`~repro.net.params.SystemParams`) and runtime
knobs (:class:`~repro.mpi.cvars.Cvars`), both flat dataclasses — plus
the raw per-iteration times, so statistics are recomputed on load rather
than trusted from the file.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from .base import PatternConfig, PatternResult, run_pattern

__all__ = ["PatternSweep", "DEFAULT_JSON_PATH", "sweep_patterns"]

#: Default persistence target (picked up by the perf trajectory).
DEFAULT_JSON_PATH = "BENCH_apps.json"

_SCHEMA = "repro.apps.sweep/v1"


class PatternSweep:
    """Results keyed by their full (frozen, hashable) config.

    Every config field is identity: two runs differing only in, say,
    ``noise_us`` or ``seed`` are distinct sweep points.  Address points
    exactly with :meth:`get` or by field filters with :meth:`find`.
    """

    def __init__(self) -> None:
        self._results: Dict[PatternConfig, PatternResult] = {}

    # -- collection ----------------------------------------------------------
    def add(self, result: PatternResult) -> None:
        self._results[result.config] = result

    def run(self, config: PatternConfig) -> PatternResult:
        """Run one point and record it."""
        result = run_pattern(config)
        self.add(result)
        return result

    def get(self, config: PatternConfig) -> PatternResult:
        """The result recorded for exactly this config."""
        return self._results[config]

    def find(self, **fields) -> List[PatternResult]:
        """All results whose config matches every given field value,
        e.g. ``sweep.find(pattern="halo3d", approach="pt2pt_part")``."""
        return [
            r
            for c, r in self._results.items()
            if all(getattr(c, name) == value for name, value in fields.items())
        ]

    def results(self) -> List[PatternResult]:
        """All results in insertion order."""
        return list(self._results.values())

    def patterns(self) -> List[str]:
        return sorted({c.pattern for c in self._results})

    def approaches(self, pattern: Optional[str] = None) -> List[str]:
        return sorted(
            {
                c.approach
                for c in self._results
                if pattern is None or c.pattern == pattern
            }
        )

    def speedup(
        self, config: PatternConfig, baseline: str = "pt2pt_single"
    ) -> float:
        """η = baseline mean / this config's mean (same point otherwise)."""
        base = self.get(dataclasses.replace(config, approach=baseline))
        subj = self.get(config)
        if subj.mean == 0:
            return float("inf")
        return base.mean / subj.mean

    def __len__(self) -> int:
        return len(self._results)

    # -- persistence ----------------------------------------------------------
    def to_json(self, backend: Optional[str] = None) -> dict:
        """A JSON-serializable snapshot of every recorded point.

        ``backend`` labels how the points were produced (``sim`` /
        ``analytic``), so a persisted sweep of model predictions can
        never masquerade as simulated measurements.
        """
        records = []
        for result in self._results.values():
            # asdict recurses into the nested params/cvars dataclasses.
            config = dataclasses.asdict(result.config)
            records.append(
                {
                    "config": config,
                    "times": list(result.times),
                    "bytes_per_iteration": result.bytes_per_iteration,
                    "n_links": result.n_links,
                }
            )
        payload = {"schema": _SCHEMA, "results": records}
        if backend is not None:
            payload["backend"] = backend
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "PatternSweep":
        """Rebuild a sweep from :meth:`to_json` output (stats recomputed).

        Config and result reconstruction delegate to the runner's
        scenario protocol, so this format and the
        :class:`~repro.runner.store.ResultStore` records can never
        silently diverge.
        """
        from ..runner.scenario import (
            SCHEMA as RUNNER_SCHEMA,
            Scenario,
            result_from_dict,
        )

        if payload.get("schema") != _SCHEMA:
            raise ValueError(
                f"unrecognized sweep schema {payload.get('schema')!r}"
            )
        sweep = cls()
        for record in payload["results"]:
            scenario = Scenario.from_dict(
                {
                    "schema": RUNNER_SCHEMA,
                    "kind": "pattern",
                    "spec": record["config"],
                }
            )
            sweep.add(result_from_dict(scenario, record))
        return sweep

    def save(
        self,
        path: str | Path = DEFAULT_JSON_PATH,
        backend: Optional[str] = None,
    ) -> Path:
        """Write the sweep to ``path`` (default ``BENCH_apps.json``)."""
        target = Path(path)
        target.write_text(
            json.dumps(self.to_json(backend=backend), indent=2) + "\n"
        )
        return target

    @classmethod
    def load(cls, path: str | Path = DEFAULT_JSON_PATH) -> "PatternSweep":
        """Read a sweep previously written by :meth:`save`."""
        return cls.from_json(json.loads(Path(path).read_text()))


def sweep_patterns(
    configs: Iterable[PatternConfig],
    jobs: int = 1,
    store=None,
    resume: bool = False,
    backend: str = "sim",
) -> PatternSweep:
    """Run every config into one sweep via the unified runner.

    The whole batch is submitted at once, so ``jobs > 1`` fans the
    configs out across cores; ``store``/``resume`` enable the runner's
    content-addressed cache (see :class:`repro.runner.ResultStore`);
    ``backend="analytic"`` uses the first-order pattern model instead
    of the simulator.
    """
    from ..runner import run_specs

    sweep = PatternSweep()
    for result in run_specs(
        list(configs), jobs=jobs, store=store, resume=resume, backend=backend
    ):
        sweep.add(result)
    return sweep
