"""The N-rank application-pattern framework.

Generalizes the two-rank Fig. 3 harness (:mod:`repro.bench.harness`) to
arbitrary communication *patterns*: a pattern is a directed graph of
point-to-point links over an ``n_ranks``-rank world, each link driven by
any registered :class:`~repro.bench.approaches.Approach` (partitioned,
per-partition sends, RMA, ...).  Every link gets its own pair
sub-communicator (group ordered sender-first, so the approaches' peer
literals hold) and — for RMA approaches — its own window-pairing keys,
so hundreds of links coexist in one simulated job.

Per iteration the harness runs the paper's tik/tok template on every
rank: a world barrier (*tik*), receive/send start calls from the master
thread, per-thread compute + noise per partition with ``ready`` as each
partition finishes, then master-thread completion (*tok* = the last rank
finishing its waits).  Patterns with wavefront dependencies (Sweep3D)
declare *blocking* receives that must complete before a rank's compute
phase.  The metric generalizes §2.1: iteration makespan minus the
slowest thread's total compute+noise time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Type

from ..bench.approaches import APPROACHES, Approach, ApproachConfig
from ..bench.stats import SampleStats, summarize
from ..mpi import Cvars, MPIWorld
from ..net import MELUXINA, SystemParams
from ..threads import ComputeModel, GaussianComputeModel, NoDelayModel, ThreadTeam
from .noise import NoisyComputeModel, NOISE_MODELS, make_noise

__all__ = [
    "Link",
    "PatternConfig",
    "Pattern",
    "PatternResult",
    "PATTERNS",
    "register_pattern",
    "build_pattern",
    "run_pattern",
    "align_bytes",
]


def align_bytes(nbytes: int, n_threads: int) -> int:
    """Round a message size up to a multiple of the partition count."""
    if nbytes < 1:
        raise ValueError("nbytes must be >= 1")
    rem = nbytes % n_threads
    return nbytes if rem == 0 else nbytes + (n_threads - rem)


@dataclass(frozen=True)
class Link:
    """One directed sender→receiver message of a pattern's iteration."""

    src: int
    dst: int
    nbytes: int
    #: Globally unique, stable identifier — names the link's pair
    #: sub-communicator context and RMA window keys.
    key: str

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"self-link at rank {self.src} ({self.key})")
        if self.nbytes < 1:
            raise ValueError(f"link {self.key} has no payload")


@dataclass(frozen=True)
class PatternConfig:
    """One application-pattern benchmark point."""

    pattern: str
    approach: str = "pt2pt_part"
    n_ranks: int = 8
    #: Threads per rank; each link message carries one partition per
    #: thread (the thread computes it, then marks it ready).
    n_threads: int = 4
    #: Nominal bytes per link message (patterns round up to a partition
    #: multiple; see :func:`align_bytes`).  The default sits in the
    #: large-message regime where pipelining pays off (§2.2).
    msg_bytes: int = 256 << 10
    iterations: int = 10
    warmup: int = 1
    #: Useful-work rate in µs/MB applied to every partition before its
    #: ``ready`` call; > 0 makes the workload overlap-friendly.
    compute_us_per_mb: float = 0.0
    #: Injected-noise shape: one of ``none``/``single``/``uniform``/
    #: ``gaussian`` (Temuçin et al.).
    noise: str = "none"
    #: Noise amplitude in µs (per thread compute quantum).
    noise_us: float = 0.0
    #: Gaussian noise std-dev in µs.
    noise_sigma_us: float = 0.0
    seed: int = 0
    params: SystemParams = MELUXINA
    cvars: Cvars = field(default_factory=Cvars)

    def __post_init__(self) -> None:
        if self.approach not in APPROACHES:
            raise KeyError(
                f"unknown approach {self.approach!r}; "
                f"choose from {sorted(APPROACHES)}"
            )
        if self.noise not in NOISE_MODELS:
            raise KeyError(
                f"unknown noise model {self.noise!r}; "
                f"choose from {sorted(NOISE_MODELS)}"
            )
        if self.n_ranks < 2:
            raise ValueError("patterns need n_ranks >= 2")
        if self.n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if self.msg_bytes < 1:
            raise ValueError("msg_bytes must be >= 1")
        if self.iterations < 1 or self.warmup < 0:
            raise ValueError("need iterations >= 1 and warmup >= 0")
        if self.compute_us_per_mb < 0:
            raise ValueError("compute_us_per_mb must be >= 0")
        if self.noise_us < 0 or self.noise_sigma_us < 0:
            raise ValueError("noise parameters must be >= 0")

    def compute_model(self, world: MPIWorld, rank: int) -> ComputeModel:
        """The per-rank compute model: deterministic useful work composed
        with this config's injected noise (per-rank seeded stream)."""
        if self.compute_us_per_mb > 0:
            base: ComputeModel = GaussianComputeModel(
                mu=self.compute_us_per_mb * 1e-6 / 1e6,
            )
        else:
            base = NoDelayModel()
        if self.noise == "none":
            return base
        noise = make_noise(
            self.noise,
            self.noise_us * 1e-6,
            self.noise_sigma_us * 1e-6,
        )
        rng = world.rng.stream(f"apps-noise-rank{rank}")
        return NoisyComputeModel(base, noise, rng)


class Pattern:
    """Base class: a pattern is a link graph plus optional dependencies."""

    #: Registry key.
    name = "abstract"
    #: True when :meth:`blocking_recvs` is non-trivial (wavefronts); the
    #: harness inserts the extra dependency-wait phase only then.
    has_dependencies = False

    def __init__(self, config: PatternConfig):
        self.config = config

    def links(self) -> List[Link]:
        """All links of one iteration, in a deterministic global order."""
        raise NotImplementedError

    def blocking_recvs(self, rank: int) -> List[str]:
        """Keys of incoming links that must complete before ``rank``'s
        compute phase (wavefront dependencies).  Default: none."""
        return []

    def describe(self) -> str:
        """One-line human-readable topology summary."""
        return self.name

    def bytes_per_iteration(self) -> int:
        """Total payload bytes moved per iteration (bandwidth metric)."""
        return sum(link.nbytes for link in self.links())


#: Registry: pattern key -> class.
PATTERNS: Dict[str, Type[Pattern]] = {}


def register_pattern(cls: Type[Pattern]) -> Type[Pattern]:
    """Class decorator adding a pattern to the registry."""
    if cls.name in PATTERNS:
        raise ValueError(f"duplicate pattern name {cls.name!r}")
    PATTERNS[cls.name] = cls
    return cls


def build_pattern(config: PatternConfig) -> Pattern:
    """Instantiate the registered pattern named by ``config.pattern``."""
    if config.pattern not in PATTERNS:
        raise KeyError(
            f"unknown pattern {config.pattern!r}; "
            f"choose from {sorted(PATTERNS)}"
        )
    return PATTERNS[config.pattern](config)


@dataclass
class PatternResult:
    """Outcome of one pattern benchmark point."""

    config: PatternConfig
    times: List[float]  # post-warmup per-iteration times (seconds)
    stats: SampleStats
    bytes_per_iteration: int
    n_links: int

    @property
    def mean(self) -> float:
        """Mean iteration communication time (seconds)."""
        return self.stats.mean

    @property
    def mean_us(self) -> float:
        """Mean iteration communication time (µs)."""
        return self.stats.mean * 1e6

    @property
    def bandwidth(self) -> float:
        """Perceived aggregate bandwidth in B/s."""
        if not self.stats.mean:
            return 0.0
        return self.bytes_per_iteration / self.stats.mean

    @property
    def bandwidth_gbs(self) -> float:
        """Perceived aggregate bandwidth in GB/s."""
        return self.bandwidth / 1e9


class _PatternRecorder:
    """Per-iteration makespan endpoints and per-(rank, thread) compute."""

    def __init__(self, total_iters: int, n_ranks: int, n_threads: int):
        self.t_start = [float("inf")] * total_iters
        self.t_end = [0.0] * total_iters
        self.compute = [
            [[0.0] * n_threads for _ in range(n_ranks)]
            for _ in range(total_iters)
        ]

    def mark_start(self, it: int, now: float) -> None:
        self.t_start[it] = min(self.t_start[it], now)

    def mark_end(self, it: int, now: float) -> None:
        self.t_end[it] = max(self.t_end[it], now)

    def removal(self, it: int) -> float:
        """The slowest thread's total compute+noise of the iteration."""
        return max(max(per_rank) for per_rank in self.compute[it])

    def iteration_time(self, it: int) -> float:
        return self.t_end[it] - self.t_start[it] - self.removal(it)


def _build_link_approaches(
    world: MPIWorld, pattern: Pattern, config: PatternConfig
) -> List[Tuple[Link, Approach]]:
    """One approach instance per link, each on its own pair communicator."""
    cls = APPROACHES[config.approach]
    out: List[Tuple[Link, Approach]] = []
    for link in pattern.links():
        comms = world.sub_comm((link.src, link.dst), key=link.key)
        acfg = ApproachConfig(
            total_bytes=link.nbytes,
            n_threads=config.n_threads,
            theta=1,
        )
        approach = cls(
            world,
            acfg,
            sender_rank=link.src,
            receiver_rank=link.dst,
            s_comm=comms[link.src],
            r_comm=comms[link.dst],
            win_key=link.key,
        )
        out.append((link, approach))
    return out


def _concurrent(world: MPIWorld, generators):
    """Generator: run several sub-generators concurrently and join them.

    Used for the untimed per-rank init/teardown phases so pairwise
    collectives (window barriers, RTS/CTS handshakes) of different links
    cannot deadlock on sequential ordering.
    """
    procs = [world.env.process(gen) for gen in generators]
    for proc in procs:
        if proc.is_alive:
            yield proc


def _rank_thread(world: MPIWorld, rank: int, tid: int, pattern: Pattern,
                 out_links: List[Tuple[Link, Approach]],
                 in_links: List[Tuple[Link, Approach]],
                 blocking_keys: List[str], team: ThreadTeam,
                 compute: ComputeModel, rec: _PatternRecorder,
                 total_iters: int):
    config = pattern.config
    world_comm = world.comm_world(rank)
    part_bytes = {
        link.key: link.nbytes // config.n_threads for link, _ in out_links
    }
    blocking = [
        (link, ap) for link, ap in in_links if link.key in blocking_keys
    ]
    nonblocking = [
        (link, ap) for link, ap in in_links if link.key not in blocking_keys
    ]

    # ---- persistent setup (untimed) -----------------------------------------
    if tid == 0:
        yield from _concurrent(
            world,
            [ap.s_init() for _, ap in out_links]
            + [ap.r_init() for _, ap in in_links],
        )
    yield from team.barrier()
    for _, ap in out_links:
        yield from ap.s_thread_init(tid)
    for _, ap in in_links:
        yield from ap.r_thread_init(tid)
    yield from team.barrier()

    # ---- iteration loop -----------------------------------------------------
    for it in range(total_iters):
        if tid == 0:
            yield from world_comm.barrier()  # tik
            rec.mark_start(it, world.env.now)
            for _, ap in in_links:
                yield from ap.r_start()
            for _, ap in out_links:
                yield from ap.s_start()
        yield from team.barrier()
        if pattern.has_dependencies:
            # Wavefront dependencies: upstream data gates this rank's
            # compute phase.
            if tid == 0:
                for _, ap in blocking:
                    yield from ap.r_wait()
            yield from team.barrier()
        for link, ap in out_links:
            dt = compute.compute_time(
                tid, tid, part_bytes[link.key], config.n_threads, 1
            )
            if dt > 0:
                yield world.env.timeout(dt)
            rec.compute[it][rank][tid] += dt
            # Thread tid owns partition tid of every outgoing link and
            # marks it ready the moment its compute finishes.
            yield from ap.s_ready(tid, tid)
        yield from team.barrier()
        if tid == 0:
            for _, ap in out_links:
                yield from ap.s_wait()
            for _, ap in nonblocking:
                yield from ap.r_wait()
            rec.mark_end(it, world.env.now)  # tok
    yield from team.barrier()

    # ---- teardown -----------------------------------------------------------
    if tid == 0:
        yield from _concurrent(
            world,
            [ap.s_free() for _, ap in out_links]
            + [ap.r_free() for _, ap in in_links],
        )


def build_world(config: PatternConfig) -> MPIWorld:
    """The N-rank world for a pattern config (AM fallback honored)."""
    cvars = config.cvars
    if APPROACHES[config.approach].requires_am and not cvars.part_force_am:
        cvars = cvars.with_updates(part_force_am=True)
    return MPIWorld(
        n_ranks=config.n_ranks,
        params=config.params,
        cvars=cvars,
        seed=config.seed,
    )


def run_pattern(config: PatternConfig) -> PatternResult:
    """Run one pattern benchmark point and summarize its timings."""
    pattern = build_pattern(config)
    world = build_world(config)
    link_approaches = _build_link_approaches(world, pattern, config)
    total = config.iterations + config.warmup
    rec = _PatternRecorder(total, config.n_ranks, config.n_threads)
    barrier_cost = config.params.barrier_time(config.n_threads)
    for rank in range(config.n_ranks):
        out_links = [
            (link, ap) for link, ap in link_approaches if link.src == rank
        ]
        in_links = [
            (link, ap) for link, ap in link_approaches if link.dst == rank
        ]
        blocking_keys = list(pattern.blocking_recvs(rank))
        team = ThreadTeam(world.env, config.n_threads, barrier_cost)
        compute = config.compute_model(world, rank)
        for tid in range(config.n_threads):
            world.launch(
                rank,
                _rank_thread(
                    world, rank, tid, pattern, out_links, in_links,
                    blocking_keys, team, compute, rec, total,
                ),
            )
    world.run()
    times = [rec.iteration_time(it) for it in range(config.warmup, total)]
    return PatternResult(
        config=config,
        times=times,
        stats=summarize(times),
        bytes_per_iteration=pattern.bytes_per_iteration(),
        n_links=len(link_approaches),
    )
