"""Sweep3D: a KBA wavefront over a 2-D rank decomposition.

The transport-sweep proxy of the Temuçin et al. suite: ranks tile a
non-periodic 2-D grid (the KBA decomposition keeps the third dimension
local), and one iteration performs one octant sweep from the (0,0)
corner — each rank *must* receive its upstream boundary planes from the
−x and −y neighbors before it can compute, then sends its own boundary
to +x and +y.  The framework's *blocking receive* hook expresses the
dependency, so the wavefront serializes across the grid's diagonals
exactly like the real code.

Partitioned communication helps twice here: downstream boundary planes
stream out plane-by-plane as threads finish them, and the shortened
per-hop send path compounds along the wavefront's critical path.
"""

from __future__ import annotations

from typing import List

from ..mpi import CartTopology
from .base import Link, Pattern, PatternConfig, align_bytes, register_pattern

__all__ = ["Sweep3D"]


@register_pattern
class Sweep3D(Pattern):
    name = "sweep3d"
    has_dependencies = True

    def __init__(self, config: PatternConfig):
        super().__init__(config)
        self.topo = CartTopology.create(config.n_ranks, 2, periodic=False)
        self.plane_bytes = align_bytes(config.msg_bytes, config.n_threads)

    def links(self) -> List[Link]:
        out: List[Link] = []
        for rank in range(self.config.n_ranks):
            for dim in range(self.topo.ndims):
                nbr = self.topo.shift(rank, dim, 1)
                if nbr is None:
                    continue
                out.append(
                    Link(
                        src=rank,
                        dst=nbr,
                        nbytes=self.plane_bytes,
                        key=f"sweep3d:{rank}->{nbr}:d{dim}",
                    )
                )
        return out

    def blocking_recvs(self, rank: int) -> List[str]:
        """The −x/−y boundary planes gate this rank's compute phase."""
        keys: List[str] = []
        for dim in range(self.topo.ndims):
            upstream = self.topo.shift(rank, dim, -1)
            if upstream is not None:
                keys.append(f"sweep3d:{upstream}->{rank}:d{dim}")
        return keys

    def describe(self) -> str:
        dims = "x".join(str(d) for d in self.topo.dims)
        return (
            f"sweep3d {dims} KBA wavefront, {self.plane_bytes} B/plane, "
            f"{len(self.links())} links"
        )
