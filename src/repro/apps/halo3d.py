"""Halo3D: 6-neighbor face exchange on a 3-D Cartesian decomposition.

The stencil workload of Temuçin et al. and Collom et al.: ranks tile a
periodic 3-D grid (``MPI_Dims_create`` factorization), and every
iteration each rank exchanges one ghost-face message with each of its
six face neighbors (±x, ±y, ±z).  Each face carries one partition per
thread; with a partitioned approach a face partition enters the network
the moment its thread finishes computing it, overlapping the pack/
compute phase with the wire time — the early-bird effect the paper
quantifies on 2 ranks, here at full topology fan-out (6 in + 6 out per
rank).

Grid dimensions of extent 1 contribute no links (the neighbor is the
rank itself); extent-2 periodic dimensions yield two distinct links to
the same neighbor (the +1 and −1 faces), which the framework keeps
apart by link key.
"""

from __future__ import annotations

from typing import List

from ..mpi import CartTopology
from .base import Link, Pattern, PatternConfig, align_bytes, register_pattern

__all__ = ["Halo3D"]


@register_pattern
class Halo3D(Pattern):
    name = "halo3d"

    def __init__(self, config: PatternConfig):
        super().__init__(config)
        self.topo = CartTopology.create(config.n_ranks, 3, periodic=True)
        self.face_bytes = align_bytes(config.msg_bytes, config.n_threads)

    def links(self) -> List[Link]:
        out: List[Link] = []
        for rank in range(self.config.n_ranks):
            for dim, disp, nbr in self.topo.neighbors(rank):
                sign = "+" if disp > 0 else "-"
                out.append(
                    Link(
                        src=rank,
                        dst=nbr,
                        nbytes=self.face_bytes,
                        key=f"halo3d:{rank}->{nbr}:d{dim}{sign}",
                    )
                )
        return out

    def describe(self) -> str:
        dims = "x".join(str(d) for d in self.topo.dims)
        return (
            f"halo3d {dims} periodic grid, {self.face_bytes} B/face, "
            f"{len(self.links())} links"
        )
