"""FFT transpose: all-to-all block redistribution rounds.

The communication kernel of a distributed pencil FFT: after the local
1-D transforms, every rank re-distributes its slab — one block to every
other rank (a personalized all-to-all, ``MPI_Alltoall`` over R·(R−1)
point-to-point links).  One iteration is one transpose round.

This is the densest pattern of the suite (every rank is both sender and
receiver on 2·(R−1) links), which stresses exactly what the paper's
congestion study (Fig. 5) isolates on two ranks: many concurrent
messages sharing each NIC's VCIs.  With a partitioned approach each
block streams out partition-by-partition as its thread finishes packing
it, so the transpose overlaps the pack compute instead of serializing
behind a bulk thread barrier.
"""

from __future__ import annotations

from typing import List

from .base import Link, Pattern, PatternConfig, align_bytes, register_pattern

__all__ = ["FFTTranspose"]


@register_pattern
class FFTTranspose(Pattern):
    name = "fft"

    def __init__(self, config: PatternConfig):
        super().__init__(config)
        self.block_bytes = align_bytes(config.msg_bytes, config.n_threads)

    def links(self) -> List[Link]:
        out: List[Link] = []
        for src in range(self.config.n_ranks):
            for dst in range(self.config.n_ranks):
                if src == dst:
                    continue
                out.append(
                    Link(
                        src=src,
                        dst=dst,
                        nbytes=self.block_bytes,
                        key=f"fft:{src}->{dst}",
                    )
                )
        return out

    def describe(self) -> str:
        n = self.config.n_ranks
        return (
            f"fft all-to-all transpose over {n} ranks, "
            f"{self.block_bytes} B/block, {n * (n - 1)} links"
        )
