"""Application communication patterns at N-rank scale.

The paper quantifies partitioned communication on a two-rank harness;
this subsystem replays its motivating *applications* on full topologies:

* :class:`~repro.apps.halo3d.Halo3D` — 3-D Cartesian 6-neighbor ghost
  face exchange (stencil codes);
* :class:`~repro.apps.sweep3d.Sweep3D` — KBA wavefront with upstream
  dependencies (transport sweeps);
* :class:`~repro.apps.fft.FFTTranspose` — all-to-all transpose rounds
  (distributed FFTs);

each runnable under every registered benchmark approach (partitioned,
per-partition sends, RMA, ...), with Single/Uniform/Gaussian noise
injection (Temuçin et al., ICPP'22) composing onto the compute model,
and JSON-persisted sweeps (``BENCH_apps.json``).

Quick start
-----------
>>> from repro.apps import PatternConfig, run_pattern
>>> cfg = PatternConfig(pattern="halo3d", approach="pt2pt_part",
...                     n_ranks=8, n_threads=2, msg_bytes=1 << 14,
...                     iterations=3, compute_us_per_mb=200.0)
>>> result = run_pattern(cfg)
>>> result.mean_us > 0
True
"""

from .base import (
    PATTERNS,
    Link,
    Pattern,
    PatternConfig,
    PatternResult,
    align_bytes,
    build_pattern,
    build_world,
    register_pattern,
    run_pattern,
)
from .fft import FFTTranspose
from .halo3d import Halo3D
from .noise import (
    NOISE_MODELS,
    GaussianNoise,
    NoiseModel,
    NoisyComputeModel,
    NoNoise,
    SingleNoise,
    UniformNoise,
    make_noise,
)
from .sweep import DEFAULT_JSON_PATH, PatternSweep, sweep_patterns
from .sweep3d import Sweep3D

__all__ = [
    "Link",
    "Pattern",
    "PatternConfig",
    "PatternResult",
    "PATTERNS",
    "register_pattern",
    "build_pattern",
    "build_world",
    "run_pattern",
    "align_bytes",
    "Halo3D",
    "Sweep3D",
    "FFTTranspose",
    "NoiseModel",
    "NoNoise",
    "SingleNoise",
    "UniformNoise",
    "GaussianNoise",
    "NoisyComputeModel",
    "NOISE_MODELS",
    "make_noise",
    "PatternSweep",
    "sweep_patterns",
    "DEFAULT_JSON_PATH",
]
