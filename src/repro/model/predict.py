"""End-to-end predictions for benchmark configurations.

Combines the wire model (:class:`SystemParams`) with the analytic
pipeline model to predict what the simulator should measure — used by
the validation tests (model vs simulation) and, through
:mod:`repro.model.approaches`, by the analytic execution backend whose
model-vs-simulation agreement is recorded in the cross-validation
report (``python -m repro figures --backend both``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..net import Protocol, SystemParams
from .pipeline import eta_large, t_bulk, t_pipelined

__all__ = ["MessagePrediction", "predict_message_time", "predict_eta"]


@dataclass(frozen=True)
class MessagePrediction:
    """Breakdown of a single point-to-point message's predicted time."""

    nbytes: int
    protocol: Protocol
    post: float
    copies: float
    wire: float
    latency: float
    handshake: float
    recv: float

    @property
    def total(self) -> float:
        return (
            self.post + self.copies + self.wire + self.latency
            + self.handshake + self.recv
        )


def predict_message_time(params: SystemParams, nbytes: int) -> MessagePrediction:
    """First-order prediction of one tag-matched message's latency.

    Mirrors the simulator's cost composition for an uncontended,
    pre-posted receive:

    * ``short``: post + wire + L + match;
    * ``bcopy``: + pack and unpack memcpys;
    * ``zcopy``: + RTS/CTS round trip (two extra wire latencies and the
      control handling), data at full bandwidth with no copies.
    """
    proto = params.protocol_for(nbytes)
    post = params.post_overhead
    recv = params.recv_overhead
    copies = 0.0
    handshake = 0.0
    wire = params.wire_time(nbytes)
    if proto is Protocol.BCOPY:
        copies = 2.0 * params.copy_time(nbytes)
    elif proto is Protocol.ZCOPY:
        # RTS: wire + latency + ctrl handling; CTS: ctrl post + wire +
        # latency + ctrl handling; then the data packet.
        handshake = (
            params.wire_time(0) + params.latency + params.ctrl_overhead
            + params.ctrl_overhead + params.wire_time(0) + params.latency
            + params.ctrl_overhead
        )
        recv = params.put_handler_overhead
        # data posted by the progress engine
        handshake += params.post_overhead
        post = params.post_overhead
    return MessagePrediction(
        nbytes=nbytes,
        protocol=proto,
        post=post,
        copies=copies,
        wire=wire,
        latency=params.latency,
        handshake=handshake,
        recv=recv,
    )


def predict_eta(
    n_threads: int,
    theta: int,
    gamma: float,
    params: SystemParams,
    part_bytes: Optional[float] = None,
) -> float:
    """Predicted pipelining gain for a benchmark configuration.

    With ``part_bytes`` given, uses the full Eqs. (2)/(3) ratio;
    otherwise the asymptotic Eq. (4).
    """
    if part_bytes is None:
        return eta_large(n_threads, theta, params.bandwidth, gamma)
    tb = t_bulk(n_threads, theta, part_bytes, params.bandwidth)
    tp = t_pipelined(n_threads, theta, part_bytes, params.bandwidth, gamma)
    return tb / tp if tp > 0 else float("inf")
