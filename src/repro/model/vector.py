"""Vectorized (numpy) evaluation of the closed-form models — the batch kernel.

The scalar predictors (:func:`repro.model.approaches.predict_bench_time`,
:func:`repro.model.patterns.predict_pattern_time`) remain the **single
source of truth** for every formula; this module re-expresses them over
numpy arrays so a whole parameter grid evaluates in a handful of array
operations instead of one Python call per point.  Every expression here
mirrors its scalar counterpart **operation for operation, in the same
order**, so the IEEE-754 result of each point is bitwise identical to
the scalar path — asserted, not assumed, by the batch-equivalence test
suite (``tests/model/test_vector.py``), which sweeps all 8 approaches
and all 3 application patterns.

Batching model
--------------
Points are grouped by the parameters that select *code paths* rather
than *values* — the approach (each has its own predictor), the frozen
:class:`~repro.net.params.SystemParams` (so every ``p.*`` cost is a
scalar inside a group), and the ``vci_method`` string.  Everything else
(sizes, thread counts, partition counts, VCI counts, compute rates)
varies per point as an int64/float64 column.  Data-dependent branches of
the scalar code (protocol ladder, zcopy queue-feedback regimes, pipeline
bounds) become boolean masks combined with ``np.where``.

Two entry points per family:

* :func:`bench_batch_times` / :func:`pattern_batch` — take spec
  dataclasses (the :meth:`~repro.backends.base.Backend.run_batch` path);
* :func:`bench_times_from_columns` — takes bare column arrays, so the
  campaign fast path can decode a million grid indices straight into
  parameter columns without ever constructing a spec object.

Sizes are assumed to stay below 2**53 bytes (exact int64→float64
conversion); every grid in the repo is far below that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..net import SystemParams
from ..telemetry import span
from .approaches import (
    _ctrl_path,
    _rendezvous_rtt,
    _token_path,
    _zcopy_queue_contenders,
    APPROACH_PREDICTORS,
)

__all__ = [
    "bench_batch_times",
    "bench_times_from_columns",
    "pattern_batch",
    "pattern_times_from_columns",
    "PatternBatch",
    "BENCH_COLUMN_FIELDS",
    "PATTERN_COLUMN_FIELDS",
]

#: BenchSpec fields the column-based bench kernel consumes (everything
#: else — iterations, warmup, seed, verify … — does not enter the model).
BENCH_COLUMN_FIELDS = (
    "approach",
    "total_bytes",
    "n_threads",
    "theta",
    "gamma_us_per_mb",
    "gaussian_mu_us_per_mb",
)

#: PatternConfig fields the column-based pattern kernel consumes.  The
#: first four shape the link topology (summarized once per unique
#: geometry); the rest enter the per-point arithmetic directly.
PATTERN_COLUMN_FIELDS = (
    "pattern",
    "n_ranks",
    "n_threads",
    "msg_bytes",
    "approach",
    "compute_us_per_mb",
    "noise",
    "noise_us",
    "noise_sigma_us",
)


# ---------------------------------------------------------------------------
# elementwise counterparts of the SystemParams helpers
# ---------------------------------------------------------------------------

def _mult_vec(p: SystemParams, contenders):
    """``SystemParams.contention_multiplier`` over an array."""
    n = np.maximum(0, contenders)
    return 1.0 + p.vci_contention_coeff * n + p.vci_contention_quad * n * n


def _wire_vec(p: SystemParams, nbytes):
    """``SystemParams.wire_time`` over an array."""
    return p.wire_gap + (nbytes + p.header_bytes) / p.bandwidth


def _copy_vec(p: SystemParams, nbytes):
    """``SystemParams.copy_time`` over an array."""
    return nbytes / p.copy_bandwidth


def _bit_length_vec(x: np.ndarray) -> np.ndarray:
    """``int.bit_length()`` elementwise (exact, no float log)."""
    v = np.asarray(x, dtype=np.int64).copy()
    r = np.zeros_like(v)
    for shift in (32, 16, 8, 4, 2, 1):
        mask = v >= (np.int64(1) << shift)
        r[mask] += shift
        v[mask] >>= shift
    r += (v > 0).astype(np.int64)
    return r


def _barrier_vec(p: SystemParams, parties) -> np.ndarray:
    """``SystemParams.barrier_time`` over an array.

    ``rounds = (parties - 1).bit_length()`` is 0 for ``parties <= 1``,
    so the scalar's early-return-0 branch folds into the product.
    """
    return p.thread_barrier_base * _bit_length_vec(
        np.maximum(np.asarray(parties, dtype=np.int64) - 1, 0)
    )


def _ceil_div(a, b):
    """Exact integer ``ceil(a / b)`` (matches ``math.ceil`` of the float
    quotient for every magnitude used by the models)."""
    return -(-np.asarray(a, dtype=np.int64) // np.asarray(b, dtype=np.int64))


def _chain_max(*terms):
    """Elementwise ``max(...)`` over mixed scalar/array terms."""
    out = terms[0]
    for term in terms[1:]:
        out = np.maximum(out, term)
    return out


# ---------------------------------------------------------------------------
# per-message stage costs (vector twins of _tag_msg_cost / _put_msg_cost)
# ---------------------------------------------------------------------------

@dataclass
class _MsgCostV:
    """Array-valued per-message stage costs (see ``_MsgCost``)."""

    post: Any
    wire: Any
    rx: Any
    path: Any


def _tag_msg_cost_vec(p: SystemParams, nbytes, mult) -> _MsgCostV:
    """Vector twin of ``approaches._tag_msg_cost``."""
    nbytes = np.asarray(nbytes, dtype=np.int64)
    zc = nbytes > p.eager_max
    bc = (nbytes > p.short_max) & ~zc
    wire0 = p.wire_time(0)
    wire_nb = _wire_vec(p, nbytes)
    # zcopy branch (RTS/CTS rendezvous)
    z_post = p.post_overhead * mult * 2.0
    z_wire = wire0 + wire_nb
    z_rx = p.ctrl_overhead + p.put_handler_overhead
    z_path = (
        p.post_overhead * mult + wire0 + p.latency
        + p.ctrl_overhead
        + p.ctrl_overhead + wire0 + p.latency
        + p.ctrl_overhead
        + p.post_overhead
        + wire_nb + p.latency + p.put_handler_overhead
    )
    # short/bcopy branch (eager)
    pack = np.where(bc, _copy_vec(p, nbytes), 0.0)
    e_post = p.post_overhead * mult + pack
    e_rx = p.recv_overhead + pack  # unpack == pack for bcopy, 0 for short
    e_path = e_post + wire_nb + p.latency + e_rx
    return _MsgCostV(
        post=np.where(zc, z_post, e_post),
        wire=np.where(zc, z_wire, wire_nb),
        rx=np.where(zc, z_rx, e_rx),
        path=np.where(zc, z_path, e_path),
    )


def _put_msg_cost_vec(p: SystemParams, nbytes, mult) -> _MsgCostV:
    """Vector twin of ``approaches._put_msg_cost``."""
    post = p.put_overhead * mult
    wire = _wire_vec(p, nbytes)
    rx = p.put_handler_overhead
    return _MsgCostV(
        post=post, wire=wire, rx=rx, path=post + wire + p.latency + rx
    )


# ---------------------------------------------------------------------------
# bench geometry columns
# ---------------------------------------------------------------------------

@dataclass
class _BenchCols:
    """Array twin of ``approaches._Geometry`` for one (params,
    vci_method) group — every field a column over the group's points."""

    params: SystemParams
    vci_method: str
    n_threads: np.ndarray
    theta: np.ndarray
    total_bytes: np.ndarray
    num_vcis: np.ndarray
    part_aggr_size: np.ndarray
    delay: np.ndarray
    compute_active: np.ndarray

    @property
    def n_parts(self) -> np.ndarray:
        return self.n_threads * self.theta

    @property
    def part_bytes(self) -> np.ndarray:
        return self.total_bytes // self.n_parts


def _negotiated_vec(cols: _BenchCols) -> np.ndarray:
    """``negotiate_message_count`` over columns (cached per unique
    (n_parts, total_bytes, aggr) triple — the function is pure Python)."""
    from ..mpi.partitioned import negotiate_message_count

    stacked = np.stack(
        [cols.n_parts, cols.total_bytes, cols.part_aggr_size]
    )
    uniq, inverse = np.unique(stacked, axis=1, return_inverse=True)
    values = np.array(
        [
            negotiate_message_count(int(n), int(n), int(tb), int(aggr))
            for n, tb, aggr in uniq.T
        ],
        dtype=np.int64,
    )
    return values[np.asarray(inverse).reshape(-1)]


def _tag_transfer_vec(
    cols: _BenchCols,
    n_msgs,
    nbytes,
    contenders,
    lanes,
    rx_lanes,
    rx_extra=0.0,
    path_extra=0.0,
    extra_serial=0.0,
) -> Tuple[np.ndarray, _MsgCostV]:
    """Vector twin of ``approaches._tag_transfer`` (all regimes)."""
    p = cols.params
    nbytes = np.asarray(nbytes, dtype=np.int64)
    contenders = np.asarray(contenders, dtype=np.float64)
    zsv = (
        np.asarray(lanes == 1)
        & np.asarray(n_msgs > 1)
        & (nbytes > p.eager_max)
    )
    wire_nb = _wire_vec(p, nbytes)
    rtt = _rendezvous_rtt(p)
    c_sat = np.maximum(
        contenders,
        np.minimum(_zcopy_queue_contenders(p), contenders + n_msgs / 2.0),
    )
    pair = 2.0 * p.post_overhead * _mult_vec(p, c_sat)
    saturated = zsv & ~cols.compute_active & (pair >= wire_nb)
    contenders = np.where(saturated, c_sat, contenders)
    burst = zsv & ~saturated
    prefix_msgs = np.where(
        burst, np.minimum(n_msgs, cols.n_threads), n_msgs
    )
    hump_window = (
        burst
        & ~cols.compute_active
        & (n_msgs > 2 * cols.n_threads)
        & (1.15 * rtt < wire_nb)
        & (wire_nb < 2.5 * rtt)
    )
    c2 = wire_nb / p.ctrl_overhead
    pair2 = 2.0 * p.post_overhead * _mult_vec(p, c2)
    hump_bn = np.where(
        hump_window & (pair2 > wire_nb), (pair + pair2) / 2.0, 0.0
    )
    mult = _mult_vec(p, contenders)
    msg = _tag_msg_cost_vec(p, nbytes, mult)
    rx = msg.rx + rx_extra
    path = msg.path + path_extra
    # zcopy-single-VCI regime: RTS prefix serializes ahead of the drain.
    post_half = p.post_overhead * mult
    z_bn = _chain_max(
        post_half, msg.wire, rx / rx_lanes, extra_serial, hump_bn
    )
    z_transfer = (
        np.maximum(prefix_msgs * post_half + (n_msgs - 1) * z_bn
                   - cols.delay, 0.0)
        + path
    )
    # generic stage-bottleneck pipeline
    e_bn = _chain_max(msg.post / lanes, msg.wire, rx / rx_lanes, extra_serial)
    e_transfer = np.maximum((n_msgs - 1) * e_bn - cols.delay, 0.0) + path
    return np.where(zsv, z_transfer, e_transfer), msg


def _pipeline_vec(n_msgs, cost: _MsgCostV, post_lanes, rx_lanes, delay,
                  extra_serial=0.0):
    """Vector twin of ``approaches._pipeline``."""
    bottleneck = _chain_max(
        cost.post / post_lanes, cost.wire, cost.rx / rx_lanes, extra_serial
    )
    return np.maximum((n_msgs - 1) * bottleneck - delay, 0.0) + cost.path


# ---------------------------------------------------------------------------
# per-approach vector predictors (twins of approaches._predict_*)
# ---------------------------------------------------------------------------

def _vec_pt2pt_single(cols: _BenchCols) -> np.ndarray:
    p = cols.params
    barrier = _barrier_vec(p, cols.n_threads)
    msg = _tag_msg_cost_vec(p, cols.total_bytes, 1.0)
    return 2.0 * barrier + msg.path


def _vec_pt2pt_many(cols: _BenchCols) -> np.ndarray:
    p = cols.params
    n, s = cols.n_parts, cols.part_bytes
    barrier = _barrier_vec(p, cols.n_threads)
    lanes = np.maximum(1, np.minimum(cols.n_threads, cols.num_vcis))
    per_vci = _ceil_div(cols.n_threads, lanes)
    transfer, msg = _tag_transfer_vec(
        cols, n, s, per_vci - 1, lanes, lanes
    )
    prepost = n * p.recv_post_overhead + msg.rx
    return barrier + np.maximum(transfer, prepost)


def _part_post_geometry_vec(cols: _BenchCols, n_msgs, msg_bytes):
    """Vector twin of ``approaches._part_post_geometry``."""
    p = cols.params
    if cols.vci_method == "comm":
        ones = np.ones_like(cols.n_threads)
        stagger = np.where(msg_bytes > p.eager_max, 1.0, 0.8)
        return ones, stagger * (cols.n_threads - 1), ones
    lanes = np.maximum(
        1, np.minimum(np.minimum(cols.n_threads, cols.num_vcis), n_msgs)
    )
    per_vci = _ceil_div(
        cols.n_threads,
        np.maximum(1, np.minimum(cols.num_vcis, cols.n_threads)),
    )
    rx_lanes = np.maximum(1, np.minimum(n_msgs, cols.num_vcis))
    return lanes, per_vci - 1.0, rx_lanes


def _pready_vec(p: SystemParams, n_threads) -> np.ndarray:
    """``pready_atomic_time(n_threads) + pready_overhead`` columns."""
    extra = np.maximum(0, n_threads - 1)
    return (
        p.atomic_overhead + p.pready_atomic_bounce * extra
    ) + p.pready_overhead


def _vec_pt2pt_part(cols: _BenchCols) -> np.ndarray:
    p = cols.params
    n_msgs = _negotiated_vec(cols)
    msg_bytes = cols.total_bytes // n_msgs
    barrier = _barrier_vec(p, cols.n_threads)
    lanes, contenders, rx_lanes = _part_post_geometry_vec(
        cols, n_msgs, msg_bytes
    )
    pready = _pready_vec(p, cols.n_threads)
    preadys_per_msg = cols.n_parts / n_msgs
    completion_atomic = (
        p.atomic_overhead + p.atomic_bounce_coeff * (rx_lanes - 1) / 2.0
    )
    transfer, msg = _tag_transfer_vec(
        cols, n_msgs, msg_bytes, contenders, lanes, rx_lanes,
        rx_extra=completion_atomic,
        path_extra=pready * preadys_per_msg + completion_atomic,
        extra_serial=np.maximum(pready * preadys_per_msg, completion_atomic),
    )
    prepost = n_msgs * p.recv_post_overhead + msg.rx + completion_atomic
    return (
        barrier + np.maximum(transfer, prepost) + p.part_completion_overhead
    )


def _vec_pt2pt_part_old(cols: _BenchCols) -> np.ndarray:
    p = cols.params
    n = cols.n_parts
    barrier = _barrier_vec(p, cols.n_threads)
    pready = _pready_vec(p, cols.n_threads)
    pready_chain = (
        np.maximum((n - 1) * pready - cols.delay, 0.0) + pready
    )
    am_path = (
        p.post_overhead
        + _copy_vec(p, cols.total_bytes)
        + _wire_vec(p, cols.total_bytes)
        + p.latency
        + p.am_dispatch_overhead
        + _copy_vec(p, np.minimum(cols.total_bytes, p.am_chunk_bytes))
    )
    cts = p.ctrl_overhead
    return (
        barrier
        + np.maximum(pready_chain, cts)
        + am_path
        + p.part_completion_overhead
    )


def _rma_stages_vec(cols: _BenchCols, many: bool):
    """(put cost, lanes, windows, mult) — twin of ``_rma_put_stages``."""
    p = cols.params
    windows = cols.n_threads if many else np.ones_like(cols.n_threads)
    lanes = np.maximum(1, np.minimum(windows, cols.num_vcis))
    actors_per_lane = _ceil_div(cols.n_threads, lanes)
    mult = _mult_vec(p, actors_per_lane - 1)
    return _put_msg_cost_vec(p, cols.part_bytes, mult), lanes, windows, mult


def _rma_scan_vec(cols: _BenchCols, windows) -> np.ndarray:
    sharing = _ceil_div(windows, np.minimum(windows, cols.num_vcis))
    return cols.params.rma_progress_scan * (sharing - 1)


def _vec_rma_passive(cols: _BenchCols, many: bool) -> np.ndarray:
    p = cols.params
    n = cols.n_parts
    barrier = _barrier_vec(p, cols.n_threads)
    put, lanes, windows, mult = _rma_stages_vec(cols, many)
    put_start = p.recv_overhead + barrier
    flushes = windows if many else 1
    post_work = (n * put.post + flushes * p.ctrl_overhead * mult) / lanes
    wire_work = n * put.wire + flushes * p.wire_time(0)
    rx_work = (n * put.rx + flushes * p.ctrl_overhead) / lanes
    serial = _chain_max(post_work, wire_work, rx_work)
    flush_handled = (
        put_start
        + np.maximum(serial - cols.delay, 0.0)
        + p.rma_sync_overhead
        + p.wire_time(0)
        + p.latency
        + p.ctrl_overhead
        + _rma_scan_vec(cols, windows)
    )
    ack = _ctrl_path(p)
    done = _token_path(p, p.post_overhead)
    return flush_handled + ack + done


def _vec_rma_active(cols: _BenchCols, many: bool) -> np.ndarray:
    p = cols.params
    n = cols.n_parts
    barrier = _barrier_vec(p, cols.n_threads)
    put, lanes, windows, _ = _rma_stages_vec(cols, many)
    tokens_avail = (
        p.rma_sync_overhead
        + p.ctrl_overhead
        + (windows - 1) * (p.rma_sync_overhead + p.ctrl_overhead)
    )
    open_epochs = windows * p.rma_sync_overhead
    put_start = np.maximum(tokens_avail, open_epochs) + barrier
    post_bn = put.post / lanes
    post_done = (
        put_start
        + np.maximum((n - 1) * post_bn - cols.delay, 0.0)
        + put.post
    )
    transfer_end = put_start + _pipeline_vec(n, put, lanes, lanes, cols.delay)
    complete_issued = (
        post_done + windows * (p.rma_sync_overhead + p.ctrl_overhead)
    )
    return (
        np.maximum(complete_issued + p.wire_time(0) + p.latency, transfer_end)
        + p.ctrl_overhead
    )


#: Registry: approach name -> vector predictor over a ``_BenchCols``.
_VECTOR_PREDICTORS = {
    "pt2pt_single": _vec_pt2pt_single,
    "pt2pt_many": _vec_pt2pt_many,
    "pt2pt_part": _vec_pt2pt_part,
    "pt2pt_part_old": _vec_pt2pt_part_old,
    "rma_single_passive": lambda c: _vec_rma_passive(c, many=False),
    "rma_many_passive": lambda c: _vec_rma_passive(c, many=True),
    "rma_single_active": lambda c: _vec_rma_active(c, many=False),
    "rma_many_active": lambda c: _vec_rma_active(c, many=True),
}

assert set(_VECTOR_PREDICTORS) == set(APPROACH_PREDICTORS), (
    "vector kernel out of sync with the scalar predictor registry"
)


# ---------------------------------------------------------------------------
# bench entry points
# ---------------------------------------------------------------------------

def _delay_columns(total_bytes, n_threads, theta, gamma, gaussian_mu):
    """Vector twin of ``predict_bench_time``'s delay/compute logic."""
    g = gamma * 1e-6 / 1e6
    raw_delay = g * (total_bytes // (n_threads * theta))
    gaussian = gaussian_mu > 0
    delay = np.where(gaussian, 0.0, raw_delay)
    compute_active = ~gaussian & (gamma > 0)
    return delay, compute_active


def _approach_codes(approach) -> Tuple[List[str], np.ndarray]:
    """Normalize a categorical column to ``(names, codes)``.

    Accepts a ready-made ``(names, codes)`` pair (the campaign fast
    path derives codes straight from the grid's axis digits — no string
    hashing over the batch), or any array of names (factorized here).
    Shared by every categorical pattern/bench column (approach,
    pattern, noise).
    """
    if isinstance(approach, tuple):
        names, codes = approach
        return list(names), np.asarray(codes, dtype=np.int64)
    approach = np.asarray(approach)
    names, codes = np.unique(approach.astype(str), return_inverse=True)
    return [str(name) for name in names], np.asarray(
        codes, dtype=np.int64
    ).reshape(-1)


def _dispatch_bench(
    params: SystemParams,
    vci_method: str,
    approach,
    n_threads: np.ndarray,
    theta: np.ndarray,
    total_bytes: np.ndarray,
    num_vcis: np.ndarray,
    part_aggr_size: np.ndarray,
    gamma: np.ndarray,
    gaussian_mu: np.ndarray,
) -> np.ndarray:
    """Route column arrays to the per-approach vector predictors."""
    delay, compute_active = _delay_columns(
        total_bytes, n_threads, theta, gamma, gaussian_mu
    )
    names, codes = _approach_codes(approach)
    times = np.empty(len(codes), dtype=np.float64)
    for code, name in enumerate(names):
        if name not in _VECTOR_PREDICTORS:
            raise KeyError(f"no analytic predictor for approach {name!r}")
        idx = np.nonzero(codes == code)[0]
        if not idx.size:
            continue
        cols = _BenchCols(
            params=params,
            vci_method=vci_method,
            n_threads=n_threads[idx],
            theta=theta[idx],
            total_bytes=total_bytes[idx],
            num_vcis=num_vcis[idx],
            part_aggr_size=part_aggr_size[idx],
            delay=delay[idx],
            compute_active=compute_active[idx],
        )
        times[idx] = _VECTOR_PREDICTORS[name](cols)
    return times


def bench_times_from_columns(
    params: SystemParams,
    num_vcis: int,
    vci_method: str,
    part_aggr_size: int,
    columns: Mapping[str, Any],
    n_points: int,
) -> np.ndarray:
    """Predicted times for ``n_points`` bench points given bare columns.

    ``columns`` maps :data:`BENCH_COLUMN_FIELDS` to per-point arrays (or
    scalars, broadcast to the batch); absent fields take the
    ``BenchSpec`` defaults.  The approach column may also be a
    ``(names, codes)`` pair (see :func:`_approach_codes`).  ``params``
    and the three cvar knobs are batch constants — callers with
    heterogeneous machine models group first (as
    :func:`bench_batch_times` does).  This is the campaign fast path:
    no spec objects are ever constructed.
    """
    def col(name, dtype, default):
        value = columns.get(name, default)
        if np.isscalar(value):
            return np.full(n_points, value, dtype=dtype)
        return np.asarray(value, dtype=dtype)

    approach = columns["approach"]
    if isinstance(approach, str):
        approach = ([approach], np.zeros(n_points, dtype=np.int64))
    with span("kernel.eval", kind="bench"):
        return _dispatch_bench(
            params,
            vci_method,
            approach,
            col("n_threads", np.int64, 1),
            col("theta", np.int64, 1),
            col("total_bytes", np.int64, 0),
            np.full(n_points, num_vcis, dtype=np.int64),
            np.full(n_points, part_aggr_size, dtype=np.int64),
            col("gamma_us_per_mb", np.float64, 0.0),
            col("gaussian_mu_us_per_mb", np.float64, 0.0),
        )


def bench_batch_times(specs: Sequence[Any]) -> np.ndarray:
    """Predicted times for a batch of ``BenchSpec``-shaped objects.

    Point ``i`` of the result is bitwise-equal to
    ``predict_bench_time(specs[i]).time``.
    """
    times = np.empty(len(specs), dtype=np.float64)
    groups: Dict[Any, List[int]] = {}
    for i, spec in enumerate(specs):
        key = (spec.params, spec.cvars.vci_method)
        groups.setdefault(key, []).append(i)
    with span("kernel.eval", kind="bench"):
        return _bench_batch_grouped(specs, times, groups)


def _bench_batch_grouped(
    specs: Sequence[Any],
    times: np.ndarray,
    groups: Dict[Any, List[int]],
) -> np.ndarray:
    for (params, vci_method), indices in groups.items():
        sub = [specs[i] for i in indices]
        times[np.array(indices)] = _dispatch_bench(
            params,
            vci_method,
            np.array([s.approach for s in sub], dtype=object),
            np.array([s.n_threads for s in sub], dtype=np.int64),
            np.array([s.theta for s in sub], dtype=np.int64),
            np.array([s.total_bytes for s in sub], dtype=np.int64),
            # cvar knobs can vary per point inside a (params, method)
            # group (cvar axes), so they are columns too.
            np.array([s.cvars.num_vcis for s in sub], dtype=np.int64),
            np.array(
                [s.cvars.part_aggr_size for s in sub], dtype=np.int64
            ),
            np.array([s.gamma_us_per_mb for s in sub], dtype=np.float64),
            np.array(
                [s.gaussian_mu_us_per_mb for s in sub], dtype=np.float64
            ),
        )
    return times


# ---------------------------------------------------------------------------
# pattern entry point
# ---------------------------------------------------------------------------

@dataclass
class PatternBatch:
    """Vectorized pattern predictions plus the per-point topology facts
    the native result object carries."""

    times: np.ndarray
    bytes_per_iteration: np.ndarray
    n_links: np.ndarray

    def store_columns(self) -> list:
        """The batch as campaign-store columns, store dtype order
        (``times`` float64, ``bytes_per_iteration``/``n_links`` int64)
        — contiguous arrays a binary segment can ``tobytes()`` without
        a copy and a JSONL segment can ``tolist()`` whole."""
        return [
            np.ascontiguousarray(self.times, dtype=np.float64),
            np.ascontiguousarray(self.bytes_per_iteration, dtype=np.int64),
            np.ascontiguousarray(self.n_links, dtype=np.int64),
        ]


#: Topology summaries keyed by the config fields that shape the link
#: graph: ``(pattern, n_ranks, n_threads, msg_bytes)``.  A summary is
#: everything the predictor needs from the graph:
#: (nbytes, max_out, max_in, max links per ordered pair, depth,
#: bytes_per_iteration, n_links).
_TOPOLOGY_CACHE: Dict[Tuple, Tuple] = {}


def _topology_summary_key(
    pattern_name: str, n_ranks: int, n_threads: int, msg_bytes: int
) -> Tuple:
    """The topology summary for one unique geometry key.

    Builds the link graph at most once per key (process-lifetime
    cache): the columns-first campaign path never constructs a config
    object, so the graph is reached through a throwaway
    ``PatternConfig`` carrying only the geometry fields.
    """
    key = (pattern_name, n_ranks, n_threads, msg_bytes)
    hit = _TOPOLOGY_CACHE.get(key)
    if hit is not None:
        return hit
    from ..apps.base import PatternConfig, build_pattern
    from .patterns import _dependency_depth

    pattern = build_pattern(
        PatternConfig(
            pattern=pattern_name,
            n_ranks=n_ranks,
            n_threads=n_threads,
            msg_bytes=msg_bytes,
        )
    )
    links = pattern.links()
    if not links:
        summary = (0, 0, 0, 0, 0, 0, 0)
    else:
        out_deg: Dict[int, int] = {}
        in_deg: Dict[int, int] = {}
        pair_links: Dict[Tuple[int, int], int] = {}
        for link in links:
            out_deg[link.src] = out_deg.get(link.src, 0) + 1
            in_deg[link.dst] = in_deg.get(link.dst, 0) + 1
            pair = (link.src, link.dst)
            pair_links[pair] = pair_links.get(pair, 0) + 1
        summary = (
            links[0].nbytes,
            max(out_deg.values()),
            max(in_deg.values()),
            max(pair_links.values()),
            _dependency_depth(pattern, n_ranks),
            # bytes_per_iteration, from the links already in hand (the
            # method would enumerate the O(ranks²) graph a second time).
            sum(link.nbytes for link in links),
            len(links),
        )
    _TOPOLOGY_CACHE[key] = summary
    return summary


def _topology_summary(config) -> Tuple:
    return _topology_summary_key(
        config.pattern, config.n_ranks, config.n_threads, config.msg_bytes
    )


def _pattern_link_messages(approach: str, nbytes, n_threads, aggr):
    """Vector twin of ``patterns._link_messages`` (approach constant)."""
    if approach == "pt2pt_single" or approach == "pt2pt_part_old":
        return np.ones_like(nbytes), nbytes
    if approach == "pt2pt_part":
        from ..mpi.partitioned import negotiate_message_count

        stacked = np.stack([n_threads, nbytes, aggr])
        uniq, inverse = np.unique(stacked, axis=1, return_inverse=True)
        values = np.array(
            [
                negotiate_message_count(int(t), int(t), int(nb), int(a))
                for t, nb, a in uniq.T
            ],
            dtype=np.int64,
        )
        n = values[np.asarray(inverse).reshape(-1)]
        return n, nbytes // n
    return n_threads, nbytes // n_threads


def _pattern_per_message_vec(p, approach: str, msg_bytes, mult):
    """Vector twin of ``patterns._per_message_costs``."""
    if approach.startswith("rma"):
        put = _put_msg_cost_vec(p, msg_bytes, mult)
        if "passive" in approach:
            per_link = (
                _token_path(p, p.post_overhead)
                + p.rma_sync_overhead
                + 2.0 * _ctrl_path(p)
            )
        else:
            per_link = p.rma_sync_overhead + _ctrl_path(p)
        return put, per_link
    if approach == "pt2pt_part_old":
        post = p.post_overhead * mult + _copy_vec(p, msg_bytes)
        wire = _wire_vec(p, msg_bytes)
        rx = p.am_dispatch_overhead + _copy_vec(
            p, np.minimum(msg_bytes, p.am_chunk_bytes)
        )
        msg = _MsgCostV(
            post=post, wire=wire, rx=rx,
            path=post + wire + p.latency + rx,
        )
        return msg, p.ctrl_overhead + 2.0 * p.part_completion_overhead
    msg = _tag_msg_cost_vec(p, msg_bytes, mult)
    per_link = 0.0
    if approach == "pt2pt_part":
        per_link = 2.0 * p.part_completion_overhead
    return msg, per_link


@dataclass
class _PatternCols:
    """Array twin of the scalar pattern predictor's inputs for one
    (approach, params) group — topology summaries already gathered to
    per-point columns, plus the per-point spec columns."""

    nbytes: np.ndarray
    max_out: np.ndarray
    max_in: np.ndarray
    max_pair_links: np.ndarray
    depth: np.ndarray
    n_links: np.ndarray
    n_threads: np.ndarray
    num_vcis: np.ndarray
    aggr: np.ndarray
    compute_rate: np.ndarray
    #: Expected slowest-thread injected delay per quantum (seconds) —
    #: ``patterns.noise_mean_quantum`` over the noise columns.
    noise_q: np.ndarray


def _pattern_times_cols(p, approach: str, cols: _PatternCols) -> np.ndarray:
    """Vector twin of ``patterns.predict_pattern_time`` for one
    (approach, params) group over bare columns."""
    n_threads = cols.n_threads
    nbytes = cols.nbytes
    max_out = cols.max_out
    max_in = cols.max_in

    n_msgs, msg_bytes = _pattern_link_messages(
        approach, nbytes, n_threads, cols.aggr
    )
    max_pair = cols.max_pair_links * n_msgs

    lanes = np.maximum(1, np.minimum(n_threads, cols.num_vcis))
    per_vci = _ceil_div(n_threads, lanes)
    contenders = (per_vci - 1).astype(np.float64)
    rank_msgs = max_out * n_msgs
    zcopy_approach = (
        not approach.startswith("rma") and approach != "pt2pt_part_old"
    )
    zcopy = (
        (msg_bytes > p.eager_max)
        if zcopy_approach
        else np.zeros(len(nbytes), dtype=bool)
    )
    queue = zcopy & (lanes == 1) & (rank_msgs > 1)
    contenders = np.where(
        queue,
        np.maximum(
            contenders,
            np.minimum(
                _zcopy_queue_contenders(p), contenders + rank_msgs / 2.0
            ),
        ),
        contenders,
    )
    mult = _mult_vec(p, contenders)
    msg, per_link_sync = _pattern_per_message_vec(p, approach, msg_bytes, mult)
    sync_tail = max_out * per_link_sync

    mu = cols.compute_rate * 1e-6 / 1e6
    compute = max_out * mu * (nbytes / n_threads)
    noise_rank = max_out * cols.noise_q

    post_work = max_out * n_msgs * msg.post / lanes
    post_work = post_work + np.where(
        zcopy, max_in * n_msgs * p.ctrl_overhead * mult / lanes, 0.0
    )
    wire_work = np.maximum(
        max_pair * msg.wire, max_out * n_msgs * msg.wire / lanes
    )
    rx_work = max_in * n_msgs * msg.rx / lanes
    bottleneck = _chain_max(post_work, wire_work, rx_work)
    from .patterns import STREAMING_APPROACHES

    if approach == "pt2pt_single":
        hop = max_out * msg.path + sync_tail
        hop_noise = noise_rank
    elif approach in STREAMING_APPROACHES:
        floor = np.maximum(
            bottleneck / rank_msgs, bottleneck / max_out - noise_rank
        )
        hop = (
            np.maximum(bottleneck - (compute + noise_rank), floor)
            + msg.path
            + sync_tail
        )
        hop_noise = cols.noise_q
    else:
        hop = (
            np.maximum(bottleneck - compute, bottleneck / max_out)
            + msg.path
            + sync_tail
        )
        hop_noise = noise_rank
    hop = hop + _barrier_vec(p, n_threads)
    times = np.where(
        cols.depth > 1,
        hop + (cols.depth - 1) * (hop + compute + hop_noise),
        hop,
    )
    return np.where(cols.n_links == 0, 0.0, times)


def _noise_quantum_column(noise, noise_us, noise_sigma_us) -> np.ndarray:
    """``patterns.noise_mean_quantum`` over columns, evaluated once per
    unique (noise, amplitude, sigma) triple through the *scalar*
    function — so the vector path is bitwise-equal by construction.

    ``noise`` is either a ``(names, codes)`` pair (the campaign fast
    path) or an array of shape names.
    """
    from .patterns import noise_mean_quantum

    names, codes = _approach_codes(noise)
    noise_us = np.asarray(noise_us, dtype=np.float64)
    noise_sigma_us = np.asarray(noise_sigma_us, dtype=np.float64)
    stacked = np.stack(
        [codes.astype(np.float64), noise_us, noise_sigma_us]
    )
    uniq, inverse = np.unique(stacked, axis=1, return_inverse=True)
    values = np.array(
        [
            noise_mean_quantum(names[int(code)], float(us), float(sigma))
            for code, us, sigma in uniq.T
        ],
        dtype=np.float64,
    )
    return values[np.asarray(inverse).reshape(-1)]


def _pattern_group_times(p, approach: str, configs) -> np.ndarray:
    """Vector twin of ``patterns.predict_pattern_time`` for one
    (approach, params) group of config objects."""
    topo = [_topology_summary(c) for c in configs]
    cols = _PatternCols(
        nbytes=np.array([t[0] for t in topo], dtype=np.int64),
        max_out=np.array([t[1] for t in topo], dtype=np.int64),
        max_in=np.array([t[2] for t in topo], dtype=np.int64),
        max_pair_links=np.array([t[3] for t in topo], dtype=np.int64),
        depth=np.array([t[4] for t in topo], dtype=np.int64),
        n_links=np.array([t[6] for t in topo], dtype=np.int64),
        n_threads=np.array([c.n_threads for c in configs], dtype=np.int64),
        num_vcis=np.array(
            [c.cvars.num_vcis for c in configs], dtype=np.int64
        ),
        aggr=np.array(
            [c.cvars.part_aggr_size for c in configs], dtype=np.int64
        ),
        compute_rate=np.array(
            [c.compute_us_per_mb for c in configs], dtype=np.float64
        ),
        noise_q=_noise_quantum_column(
            np.array([c.noise for c in configs], dtype=object),
            [c.noise_us for c in configs],
            [c.noise_sigma_us for c in configs],
        ),
    )
    return _pattern_times_cols(p, approach, cols)


def pattern_batch(configs: Sequence[Any]) -> PatternBatch:
    """Vectorized predictions for a batch of ``PatternConfig`` objects.

    Point ``i`` of ``times`` is bitwise-equal to
    ``predict_pattern_time(configs[i]).time``; ``bytes_per_iteration``
    and ``n_links`` match the pattern the scalar backend would build.
    """
    n = len(configs)
    times = np.empty(n, dtype=np.float64)
    groups: Dict[Any, List[int]] = {}
    for i, config in enumerate(configs):
        groups.setdefault((config.approach, config.params), []).append(i)
    with span("kernel.eval", kind="pattern"):
        for (approach, params), indices in groups.items():
            sub = [configs[i] for i in indices]
            times[np.array(indices)] = _pattern_group_times(
                params, approach, sub
            )
    with span("kernel.topology", kind="pattern"):
        topo = [_topology_summary(c) for c in configs]
    return PatternBatch(
        times=times,
        bytes_per_iteration=np.array([t[5] for t in topo], dtype=np.int64),
        n_links=np.array([t[6] for t in topo], dtype=np.int64),
    )


def pattern_times_from_columns(
    params: SystemParams,
    num_vcis: int,
    part_aggr_size: int,
    columns: Mapping[str, Any],
    n_points: int,
) -> PatternBatch:
    """Vectorized pattern predictions for ``n_points`` given bare columns.

    The pattern twin of :func:`bench_times_from_columns` — the campaign
    fast path never constructs a ``PatternConfig``.  ``columns`` maps
    :data:`PATTERN_COLUMN_FIELDS` to per-point arrays (or scalars,
    broadcast); absent fields take the ``PatternConfig`` defaults.  The
    categorical columns (``pattern``, ``approach``, ``noise``) may be
    ``(names, codes)`` pairs factorized straight from the grid digits
    (see :meth:`~repro.runner.scenario.ScenarioGrid.kernel_columns`), a
    bare name, or arrays of names.  ``params`` and the cvar knobs are
    batch constants, as in the bench twin.

    Topology link graphs are built once per unique
    ``(pattern, n_ranks, n_threads, msg_bytes)`` geometry
    (process-lifetime cache) and gathered to per-point columns; every
    per-point value is bitwise-equal to the scalar
    ``predict_pattern_time`` path.
    """
    def col(name, dtype, default):
        value = columns.get(name, default)
        if np.isscalar(value):
            return np.full(n_points, value, dtype=dtype)
        return np.asarray(value, dtype=dtype)

    def categorical(name, default):
        value = columns.get(name, default)
        if isinstance(value, str):
            return [value], np.zeros(n_points, dtype=np.int64)
        return _approach_codes(value)

    if "pattern" not in columns:
        raise KeyError("pattern column is required")
    pattern_names, pattern_codes = categorical("pattern", None)
    approach_names, approach_codes = categorical("approach", "pt2pt_part")
    n_ranks = col("n_ranks", np.int64, 8)
    n_threads = col("n_threads", np.int64, 4)
    msg_bytes = col("msg_bytes", np.int64, 256 << 10)

    # One link-graph build per unique geometry; gather to columns.
    with span("kernel.topology", kind="pattern"):
        geometry = np.stack(
            [pattern_codes, n_ranks, n_threads, msg_bytes]
        )
        uniq, inverse = np.unique(geometry, axis=1, return_inverse=True)
        summaries = [
            _topology_summary_key(
                pattern_names[int(code)], int(ranks), int(threads), int(size)
            )
            for code, ranks, threads, size in uniq.T
        ]
        gathered = np.asarray(summaries, dtype=np.int64)[
            np.asarray(inverse).reshape(-1)
        ]

    # Column prep is model work too (the noise-quantum column calls the
    # scalar model once per unique noise triple) — charged to the
    # kernel stage so the profile attribution covers it.
    with span("kernel.eval", kind="pattern"):
        cols = _PatternCols(
            nbytes=gathered[:, 0],
            max_out=gathered[:, 1],
            max_in=gathered[:, 2],
            max_pair_links=gathered[:, 3],
            depth=gathered[:, 4],
            n_links=gathered[:, 6],
            n_threads=n_threads,
            num_vcis=np.full(n_points, num_vcis, dtype=np.int64),
            aggr=np.full(n_points, part_aggr_size, dtype=np.int64),
            compute_rate=col("compute_us_per_mb", np.float64, 0.0),
            noise_q=_noise_quantum_column(
                categorical("noise", "none"),
                col("noise_us", np.float64, 0.0),
                col("noise_sigma_us", np.float64, 0.0),
            ),
        )
    times = np.empty(n_points, dtype=np.float64)
    with span("kernel.eval", kind="pattern"):
        for code, name in enumerate(approach_names):
            idx = np.nonzero(approach_codes == code)[0]
            if not idx.size:
                continue
            if name not in APPROACH_PREDICTORS:
                # Same contract as the bench twin: an unknown name must
                # fail loudly, not fall into the bulk-gated default
                # branch with a plausible wrong number.
                raise KeyError(
                    f"no analytic predictor for approach {name!r}"
                )
            sub = _PatternCols(
                **{
                    field: getattr(cols, field)[idx]
                    for field in cols.__dataclass_fields__
                }
            )
            times[idx] = _pattern_times_cols(params, name, sub)
    return PatternBatch(
        times=times,
        bytes_per_iteration=gathered[:, 5],
        n_links=gathered[:, 6],
    )
