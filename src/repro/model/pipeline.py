"""The paper's analytic performance model (§2.2, Eqs. 1–5).

All quantities in SI units: sizes in bytes, times in seconds, bandwidth
in B/s, delay rates γ in s/B (the paper quotes µs/MB; 1 µs/MB = 1e-12
s/B × 1e6 = 1e-12·… — use :func:`gamma_from_us_per_mb` to convert).
"""

from __future__ import annotations

__all__ = [
    "gamma_from_us_per_mb",
    "gamma_to_us_per_mb",
    "t_bulk",
    "t_pipelined",
    "eta_large",
    "eta_small",
    "crossover_bytes",
]


def gamma_from_us_per_mb(gamma_us_per_mb: float) -> float:
    """Convert a delay rate from µs/MB (paper units) to s/B."""
    return gamma_us_per_mb * 1e-6 / 1e6


def gamma_to_us_per_mb(gamma_si: float) -> float:
    """Convert a delay rate from s/B to µs/MB."""
    return gamma_si * 1e6 * 1e6


def t_bulk(n_threads: int, theta: int, part_bytes: float, beta: float) -> float:
    """Eq. (2): bulk-synchronized communication time.

    ``T_b ≈ N_part · S_part / β`` with ``N_part = N·θ``.
    """
    _validate(n_threads, theta, part_bytes, beta)
    return n_threads * theta * part_bytes / beta


def t_pipelined(
    n_threads: int,
    theta: int,
    part_bytes: float,
    beta: float,
    gamma: float,
) -> float:
    """Eq. (3): pipelined communication time.

    ``T_p ≈ max((N_part − 1)·S_part/β − D, 0) + S_part/β`` with the
    delay ``D = γ·θ·S_part`` hidden behind the first ``N_part − 1``
    transfers (γ here is the per-θ delay rate γ_θ of Eq. 9, applied as
    ``D = γ_θ · S_part`` — see Appendix A).
    """
    _validate(n_threads, theta, part_bytes, beta)
    if gamma < 0:
        raise ValueError("gamma must be >= 0")
    n_part = n_threads * theta
    delay = gamma * part_bytes
    overlap = max((n_part - 1) * part_bytes / beta - delay, 0.0)
    return overlap + part_bytes / beta


def eta_large(n_threads: int, theta: int, beta: float, gamma: float) -> float:
    """Eq. (4): the large-message gain of pipelining.

    ``η = N·θ / max(N·θ − γ_θ·β, 1)`` — independent of the partition
    size because both numerator and denominator scale with it.
    """
    if n_threads < 1 or theta < 1:
        raise ValueError("need n_threads >= 1 and theta >= 1")
    if beta <= 0:
        raise ValueError("beta must be positive")
    if gamma < 0:
        raise ValueError("gamma must be >= 0")
    n_part = n_threads * theta
    return n_part / max(n_part - gamma * beta, 1.0)


def eta_small(n_threads: int, theta: int) -> float:
    """Eq. (5): the latency-dominated small-message "gain".

    ``η = 1/(N·θ)`` — pipelining *loses* by the number of messages when
    latency dominates and delay is negligible.
    """
    if n_threads < 1 or theta < 1:
        raise ValueError("need n_threads >= 1 and theta >= 1")
    return 1.0 / (n_threads * theta)


def crossover_bytes(
    n_threads: int,
    theta: int,
    beta: float,
    gamma: float,
    latency: float,
) -> float:
    """Estimated total message size where pipelining starts to win.

    Below the crossover, the extra per-message latencies of ``N·θ``
    messages dominate; above it, the early-bird overlap does.  Setting
    the latency penalty ``(N·θ − 1)·L`` against the overlap gain
    ``min(γ_θ·β, N·θ − 1)·S_part/β`` and solving for the total size
    ``N·θ·S_part`` gives a closed form.  The paper observes ≈100 kB for
    the Fig. 8 configuration.
    """
    if latency < 0:
        raise ValueError("latency must be >= 0")
    n_part = n_threads * theta
    if n_part == 1:
        return 0.0
    effective = min(gamma * beta, float(n_part - 1))
    if effective <= 0:
        return float("inf")
    part_bytes = (n_part - 1) * latency * beta / effective
    return n_part * part_bytes


def _validate(n_threads: int, theta: int, part_bytes: float, beta: float) -> None:
    if n_threads < 1 or theta < 1:
        raise ValueError("need n_threads >= 1 and theta >= 1")
    if part_bytes < 0:
        raise ValueError("part_bytes must be >= 0")
    if beta <= 0:
        raise ValueError("beta must be positive")
