"""Closed-form cost models for every benchmark approach (the analytic backend).

Extends the single-message predictor of :mod:`repro.model.predict` to the
full two-rank benchmark template of :mod:`repro.bench.harness`: for each
of the eight registered approaches this module composes the simulator's
calibrated costs (:class:`~repro.net.params.SystemParams`, honoring the
:class:`~repro.mpi.cvars.Cvars` runtime knobs) into a first-order
prediction of the *measured communication time* — time-to-solution minus
compute removal, exactly the §2.1 metric the simulator reports.

The composition mirrors the simulated pipeline stage by stage:

* **sender injection** — per-message critical-section time under the VCI
  lock, inflated by :meth:`SystemParams.contention_multiplier` for the
  threads sharing each VCI (Fig. 5's congestion), over ``min(threads,
  vcis)`` parallel lanes;
* **wire serialization** — every forward packet (handshakes included)
  occupies the single directional wire for
  :meth:`SystemParams.wire_time` (Fig. 6's residual bound);
* **receiver processing** — per-message RX work serialized per VCI,
  plus the partitioned path's shared completion-counter atomics
  (Fig. 6's ≈×4 residual);
* **pipelining** — with ``n`` messages and a compute delay ``D`` on the
  last partition, the measured time is ``max((n-1)·bottleneck - D, 0)``
  plus one full message path (Eq. 3 generalized to per-stage
  bottlenecks).

Accuracy is first-order by design: the discrete-event simulator resolves
transient queueing, lock-handoff interleavings, and barrier skew that a
closed form cannot.  The per-approach agreement is measured — not
assumed — by ``python -m repro figures --backend both`` (the
cross-validation report); the enforced tolerances live in
:data:`repro.backends.crossval.TOLERANCES`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from ..net import Protocol, SystemParams

__all__ = [
    "BenchPrediction",
    "predict_bench_time",
    "predict_bench_times",
    "APPROACH_PREDICTORS",
]


@dataclass(frozen=True)
class BenchPrediction:
    """Predicted measured communication time for one benchmark point."""

    approach: str
    time: float
    #: Named additive/bottleneck contributions (seconds) for reports.
    breakdown: Dict[str, float]


@dataclass(frozen=True)
class _Geometry:
    """Spec fields the predictors consume (decoupled from BenchSpec)."""

    params: SystemParams
    n_threads: int
    theta: int
    total_bytes: int
    num_vcis: int
    vci_method: str
    part_aggr_size: int
    #: Compute delay of the last partition (s); overlappable by pipelining.
    delay: float
    #: True when any compute model staggers the threads' posts (even a
    #: delay-free one): a busy producer never saturates the VCI lock.
    compute_active: bool = False

    @property
    def n_parts(self) -> int:
        return self.n_threads * self.theta

    @property
    def part_bytes(self) -> int:
        return self.total_bytes // self.n_parts


@dataclass(frozen=True)
class _MsgCost:
    """Per-message stage costs of one transfer protocol."""

    #: Sender critical-section time (VCI lock held), incl. eager pack.
    post: float
    #: Forward-wire occupancy (data + any forward handshake packets).
    wire: float
    #: Receiver-side processing (RX loop), incl. eager unpack.
    rx: float
    #: One-message end-to-end path, posting to receive completion.
    path: float


def _tag_msg_cost(p: SystemParams, nbytes: int, mult: float) -> _MsgCost:
    """Stage costs of one tag-matched message (short/bcopy/zcopy)."""
    proto = p.protocol_for(nbytes)
    if proto is Protocol.ZCOPY:
        # RTS -> (match) -> CTS -> data; the CTS crosses the reverse
        # wire, so only RTS + data load the forward direction.  The
        # progress engine's data injection contends on the same VCI
        # lock as the threads' RTS posts.
        post = p.post_overhead * mult * 2.0
        wire = p.wire_time(0) + p.wire_time(nbytes)
        rx = p.ctrl_overhead + p.put_handler_overhead
        path = (
            p.post_overhead * mult + p.wire_time(0) + p.latency
            + p.ctrl_overhead                      # RTS handled
            + p.ctrl_overhead + p.wire_time(0) + p.latency
            + p.ctrl_overhead                      # CTS answered + handled
            + p.post_overhead                      # data injected
            + p.wire_time(nbytes) + p.latency + p.put_handler_overhead
        )
        return _MsgCost(post=post, wire=wire, rx=rx, path=path)
    pack = p.copy_time(nbytes) if proto is Protocol.BCOPY else 0.0
    unpack = p.copy_time(nbytes) if proto is Protocol.BCOPY else 0.0
    post = p.post_overhead * mult + pack
    wire = p.wire_time(nbytes)
    rx = p.recv_overhead + unpack
    return _MsgCost(
        post=post, wire=wire, rx=rx, path=post + wire + p.latency + rx
    )


def _put_msg_cost(p: SystemParams, nbytes: int, mult: float) -> _MsgCost:
    """Stage costs of one RMA put (no matching at the target)."""
    post = p.put_overhead * mult
    wire = p.wire_time(nbytes)
    rx = p.put_handler_overhead
    return _MsgCost(
        post=post, wire=wire, rx=rx, path=post + wire + p.latency + rx
    )


def _token_path(p: SystemParams, send_overhead: float) -> float:
    """One 0-byte notification message end to end."""
    return send_overhead + p.wire_time(0) + p.latency + p.recv_overhead


def _ctrl_path(p: SystemParams) -> float:
    """One 0-byte control packet end to end (posted at ctrl cost)."""
    return p.ctrl_overhead + p.wire_time(0) + p.latency + p.ctrl_overhead


def _rendezvous_rtt(p: SystemParams) -> float:
    """The RTS→CTS handshake round trip that paces rendezvous data
    injections (RTS wire + handling, CTS answer + wire + handling)."""
    return 2.0 * (p.wire_time(0) + p.latency) + 3.0 * p.ctrl_overhead


def _lanes(geo: _Geometry, actors: int) -> int:
    """Parallel posting/processing lanes for ``actors`` concurrent
    contexts spread over the configured VCIs."""
    return max(1, min(actors, geo.num_vcis))


def _post_mult(geo: _Geometry, actors: int) -> float:
    """Contention multiplier for ``actors`` threads over the VCIs."""
    per_vci = math.ceil(actors / _lanes(geo, actors))
    return geo.params.contention_multiplier(per_vci - 1)


def _zcopy_queue_contenders(p: SystemParams) -> float:
    """Steady-state VCI-lock contender count of a saturated rendezvous
    pipeline on a single VCI.

    Each in-flight message spawns a progress-engine data injection that
    queues on the same lock as the threads' RTS posts; the queue (and
    with it the episode-peak contender count) grows until the two posts
    per message cost as much as the RTS/CTS round trip that feeds them.
    Solving ``2·post·M(c) = 0.8·rtt`` for the quadratic multiplier
    ``M(c) = 1 + a·c + b·c²`` gives the saturation point (the 0.8
    calibrates the partially-overlapped ramp-up)."""
    if p.post_overhead <= 0:
        return 0.0  # free posts never saturate the lock
    target = 0.8 * _rendezvous_rtt(p) / (2.0 * p.post_overhead)
    if target <= 1.0:
        return 0.0
    a, b = p.vci_contention_coeff, p.vci_contention_quad
    if b <= 0:
        return (target - 1.0) / a if a > 0 else 0.0
    return (-a + math.sqrt(a * a + 4.0 * b * (target - 1.0))) / (2.0 * b)


def _tag_transfer(
    geo: _Geometry,
    n_msgs: int,
    nbytes: int,
    contenders: float,
    lanes: int,
    rx_lanes: int,
    rx_extra: float = 0.0,
    path_extra: float = 0.0,
    extra_serial: float = 0.0,
):
    """Last-message completion time of a tag-matched message pipeline,
    net of the overlappable compute delay, plus the per-message cost.

    Returns ``(transfer, msg)``.  Beyond the generic stage-bottleneck
    pipeline this captures the single-VCI rendezvous regime: every
    progress-engine data injection queues on the VCI lock *behind* the
    threads' already-enqueued RTS posts (the lock grants FIFO), so the
    RTS prefix serializes in front of the data drain instead of
    overlapping it — and the queue feedback saturates the contender
    count (see :func:`_zcopy_queue_contenders`).
    """
    p = geo.params
    zcopy_single_vci = (
        lanes == 1
        and n_msgs > 1
        and p.protocol_for(nbytes) is Protocol.ZCOPY
    )
    prefix_msgs = n_msgs
    hump_bn = 0.0
    if zcopy_single_vci:
        # The queue feedback only sustains itself while the saturated
        # double post still outpaces the wire and no compute delay
        # staggers the producers; otherwise the lock queue drains and
        # only the initial thread burst serializes ahead of the data.
        # The queue can only build as far as the messages feeding it:
        # short pipelines never reach the steady-state contender count.
        c_sat = max(
            contenders,
            min(_zcopy_queue_contenders(p), contenders + n_msgs / 2.0),
        )
        pair = 2.0 * p.post_overhead * p.contention_multiplier(c_sat)
        wire = p.wire_time(nbytes)
        rtt = _rendezvous_rtt(p)
        if not geo.compute_active and pair >= wire:
            contenders = c_sat
        else:
            prefix_msgs = min(n_msgs, geo.n_threads)
            if (
                not geo.compute_active
                and n_msgs > 2 * geo.n_threads
                and 1.15 * rtt < wire < 2.5 * rtt
            ):
                # Escalated episode-peak regime: while one data packet
                # crosses the wire, ~wire/ctrl_overhead CTS-spawned
                # injections pile onto the never-idle lock, so its
                # sticky peak climbs to that count and later posts pay
                # the inflated multiplier — the run splits between the
                # base and the escalated plateau.  The hump only ignites
                # once a wire slot clearly exceeds the handshake RTT
                # (below that the base feedback already keeps pace), and
                # beyond ~2.5 RTT per slot the CTS stream starves, the
                # lock idles, and the peak resets (the plain wire bound
                # is then exact).
                c2 = wire / p.ctrl_overhead
                pair2 = 2.0 * p.post_overhead * p.contention_multiplier(c2)
                if pair2 > wire:
                    hump_bn = (pair + pair2) / 2.0
    mult = p.contention_multiplier(contenders)
    msg = _tag_msg_cost(p, nbytes, mult)
    rx = msg.rx + rx_extra
    path = msg.path + path_extra
    if zcopy_single_vci:
        post_half = p.post_overhead * mult
        prefix = prefix_msgs * post_half
        bn = max(post_half, msg.wire, rx / rx_lanes, extra_serial, hump_bn)
        transfer = max(prefix + (n_msgs - 1) * bn - geo.delay, 0.0) + path
        return transfer, msg
    bn = max(msg.post / lanes, msg.wire, rx / rx_lanes, extra_serial)
    transfer = max((n_msgs - 1) * bn - geo.delay, 0.0) + path
    return transfer, msg


def _pipeline(
    n_msgs: int,
    cost: _MsgCost,
    post_lanes: int,
    rx_lanes: int,
    delay: float,
    extra_serial: float = 0.0,
) -> float:
    """Last-message completion time of an ``n_msgs`` pipeline.

    ``extra_serial`` is additional globally-serialized per-message work
    (e.g. the partitioned path's shared-counter atomics).  The delayed
    last partition overlaps the ``n_msgs - 1`` earlier transfers (Eq. 3
    generalized); one full message path closes the pipeline.
    """
    bottleneck = max(
        cost.post / post_lanes,
        cost.wire,
        cost.rx / rx_lanes,
        extra_serial,
    )
    return max((n_msgs - 1) * bottleneck - delay, 0.0) + cost.path


# ---------------------------------------------------------------------------
# per-approach predictors
# ---------------------------------------------------------------------------

def _predict_pt2pt_single(geo: _Geometry) -> BenchPrediction:
    p = geo.params
    barrier = p.barrier_time(geo.n_threads)
    msg = _tag_msg_cost(p, geo.total_bytes, 1.0)
    # Bulk semantics: both team barriers precede the single send, and
    # the compute delay is fully removed by the metric.
    time = 2.0 * barrier + msg.path
    return BenchPrediction(
        "pt2pt_single", time,
        {"barriers": 2.0 * barrier, "message": msg.path},
    )


def _predict_pt2pt_many(geo: _Geometry) -> BenchPrediction:
    p = geo.params
    n, s = geo.n_parts, geo.part_bytes
    barrier = p.barrier_time(geo.n_threads)
    # Each thread duplicates the communicator: one VCI per thread when
    # available, otherwise threads share and pay the lock contention.
    lanes = _lanes(geo, geo.n_threads)
    per_vci = math.ceil(geo.n_threads / lanes)
    transfer, msg = _tag_transfer(geo, n, s, per_vci - 1, lanes, lanes)
    # The receiver's master pre-posts all n receives before its team
    # barrier; a huge partition count can outlast the arrivals.
    prepost = n * p.recv_post_overhead + msg.rx
    time = barrier + max(transfer, prepost)
    return BenchPrediction(
        "pt2pt_many", time,
        {"barrier": barrier, "transfer": transfer, "prepost_bound": prepost},
    )


def _negotiated_msgs(geo: _Geometry) -> int:
    from ..mpi.partitioned import negotiate_message_count

    return negotiate_message_count(
        geo.n_parts, geo.n_parts, geo.total_bytes, geo.part_aggr_size
    )


def _part_post_geometry(geo: _Geometry, n_msgs: int, msg_bytes: int):
    """(lanes, base contenders, rx lanes) for partitioned messages."""
    if geo.vci_method == "comm":
        # Partitioned traffic follows its communicator's single VCI.
        # The serialized pready chain staggers the threads' arrivals at
        # the lock, so the episode peak ramps up instead of starting at
        # N - 1 (measured ≈ 0.8·(N-1) effective contenders) — except on
        # the rendezvous path, where the progress engine's data posts
        # keep the queue saturated at the full thread count.
        proto = geo.params.protocol_for(msg_bytes)
        stagger = 1.0 if proto is Protocol.ZCOPY else 0.8
        return 1, stagger * (geo.n_threads - 1), 1
    # tag_rr / thread: messages spread round-robin over the VCIs.
    lanes = max(1, min(geo.n_threads, geo.num_vcis, n_msgs))
    per_vci = math.ceil(geo.n_threads / max(1, min(geo.num_vcis, geo.n_threads)))
    rx_lanes = max(1, min(n_msgs, geo.num_vcis))
    return lanes, per_vci - 1.0, rx_lanes


def _predict_pt2pt_part(geo: _Geometry) -> BenchPrediction:
    p = geo.params
    n_msgs = _negotiated_msgs(geo)
    msg_bytes = geo.total_bytes // n_msgs
    barrier = p.barrier_time(geo.n_threads)
    lanes, contenders, rx_lanes = _part_post_geometry(geo, n_msgs, msg_bytes)
    # Every Pready serializes on the request's shared counters; every
    # internal-message completion serializes on the receiver's shared
    # counter, whose episode peak ramps with the delivering contexts
    # (average ≈ half the lane count over a figure-sized burst).
    pready = p.pready_atomic_time(geo.n_threads) + p.pready_overhead
    preadys_per_msg = geo.n_parts / n_msgs
    completion_atomic = (
        p.atomic_overhead + p.atomic_bounce_coeff * (rx_lanes - 1) / 2.0
    )
    # A message leaves only after *all* its partitions' Pready calls
    # cleared the globally-serialized shared counter, so the closing
    # path carries its whole pready share.
    transfer, msg = _tag_transfer(
        geo, n_msgs, msg_bytes, contenders, lanes, rx_lanes,
        rx_extra=completion_atomic,
        path_extra=pready * preadys_per_msg + completion_atomic,
        extra_serial=max(pready * preadys_per_msg, completion_atomic),
    )
    prepost = n_msgs * p.recv_post_overhead + msg.rx + completion_atomic
    time = (
        barrier + max(transfer, prepost) + p.part_completion_overhead
    )
    return BenchPrediction(
        "pt2pt_part", time,
        {
            "barrier": barrier,
            "transfer": transfer,
            "prepost_bound": prepost,
            "completion": p.part_completion_overhead,
        },
    )


def _predict_pt2pt_part_old(geo: _Geometry) -> BenchPrediction:
    p = geo.params
    n = geo.n_parts
    barrier = p.barrier_time(geo.n_threads)
    # Every partition of every thread hammers one shared counter; the
    # final decrement injects the whole buffer as a single active
    # message (bounce copies on both sides, no early-bird overlap).
    pready = p.pready_atomic_time(geo.n_threads) + p.pready_overhead
    pready_chain = max((n - 1) * pready - geo.delay, 0.0) + pready
    # The single AM injection is the iteration's only VCI post — the
    # threads contend on the shared Pready counter, not the lock.
    am_path = (
        p.post_overhead
        + p.copy_time(geo.total_bytes)           # sender bounce copy
        + p.wire_time(geo.total_bytes)
        + p.latency
        + p.am_dispatch_overhead
        + p.copy_time(min(geo.total_bytes, p.am_chunk_bytes))
    )
    # The receiver exits the inter-rank barrier early (it was the
    # previous iteration's straggler), so its per-iteration CTS is
    # already in flight at t_start: only its RX handling is exposed.
    cts = p.ctrl_overhead
    time = (
        barrier
        + max(pready_chain, cts)
        + am_path
        + p.part_completion_overhead
    )
    return BenchPrediction(
        "pt2pt_part_old", time,
        {
            "barrier": barrier,
            "pready_chain": pready_chain,
            "am_path": am_path,
            "completion": p.part_completion_overhead,
        },
    )


def _rma_windows(geo: _Geometry, many: bool) -> int:
    return geo.n_threads if many else 1


def _rma_scan(geo: _Geometry, many: bool) -> float:
    """Progress-engine scan paid per flush ack: every extra window
    sharing the acking VCI is scanned (Fig. 5's RMA-many shift)."""
    windows = _rma_windows(geo, many)
    sharing = math.ceil(windows / min(windows, geo.num_vcis))
    return geo.params.rma_progress_scan * (sharing - 1)


def _rma_put_stages(geo: _Geometry, many: bool):
    """(put cost, lanes, windows) for the RMA approaches' data phase."""
    p = geo.params
    windows = _rma_windows(geo, many)
    lanes = _lanes(geo, windows)
    actors_per_lane = math.ceil(geo.n_threads / lanes)
    mult = p.contention_multiplier(actors_per_lane - 1)
    return _put_msg_cost(p, geo.part_bytes, mult), lanes, windows


def _predict_rma_passive(geo: _Geometry, many: bool) -> BenchPrediction:
    p = geo.params
    n = geo.n_parts
    barrier = p.barrier_time(geo.n_threads)
    put, lanes, windows = _rma_put_stages(geo, many)
    actors_per_lane = math.ceil(geo.n_threads / lanes)
    mult = p.contention_multiplier(actors_per_lane - 1)
    # The receiver exits the inter-rank barrier early, so its exposure
    # token is in flight at t_start: only its RX handling is exposed.
    put_start = p.recv_overhead + barrier
    # Total per-stage work of the puts *and* the flush request(s): with
    # thread-local flushes (RMA many) every flush's control post pays
    # the same contended lock as the puts.
    flushes = windows if many else 1
    post_work = (n * put.post + flushes * p.ctrl_overhead * mult) / lanes
    wire_work = n * put.wire + flushes * p.wire_time(0)
    rx_work = (n * put.rx + flushes * p.ctrl_overhead) / lanes
    serial = max(post_work, wire_work, rx_work)
    flush_handled = (
        put_start
        + max(serial - geo.delay, 0.0)
        + p.rma_sync_overhead
        + p.wire_time(0)
        + p.latency
        + p.ctrl_overhead
        + _rma_scan(geo, many)
    )
    ack = _ctrl_path(p)
    done = _token_path(p, p.post_overhead)
    time = flush_handled + ack + done
    name = "rma_many_passive" if many else "rma_single_passive"
    return BenchPrediction(
        name, time,
        {
            "put_start": put_start,
            "stage_work": serial,
            "flush_handled": flush_handled,
            "ack": ack,
            "completion_token": done,
        },
    )


def _predict_rma_active(geo: _Geometry, many: bool) -> BenchPrediction:
    p = geo.params
    n = geo.n_parts
    barrier = p.barrier_time(geo.n_threads)
    put, lanes, windows = _rma_put_stages(geo, many)
    # PSCW: the receiver's exposure epochs (one per window, master
    # serial) start ahead of t_start thanks to the barrier skew; the
    # sender's own per-window Start sync runs concurrently.
    tokens_avail = (
        p.rma_sync_overhead
        + p.ctrl_overhead
        + (windows - 1) * (p.rma_sync_overhead + p.ctrl_overhead)
    )
    open_epochs = windows * p.rma_sync_overhead
    put_start = max(tokens_avail, open_epochs) + barrier
    post_bn = put.post / lanes
    post_done = put_start + max((n - 1) * post_bn - geo.delay, 0.0) + put.post
    transfer_end = put_start + _pipeline(n, put, lanes, lanes, geo.delay)
    # Completion tokens (one per window, each with its own epoch-close
    # sync) trail the puts; the last one's arrival ends the iteration.
    complete_issued = (
        post_done + windows * (p.rma_sync_overhead + p.ctrl_overhead)
    )
    time = (
        max(complete_issued + p.wire_time(0) + p.latency, transfer_end)
        + p.ctrl_overhead
    )
    name = "rma_many_active" if many else "rma_single_active"
    return BenchPrediction(
        name, time,
        {
            "put_start": put_start,
            "transfer_end": transfer_end,
            "complete_issued": complete_issued,
        },
    )


#: Registry: approach name -> predictor over a :class:`_Geometry`.
APPROACH_PREDICTORS = {
    "pt2pt_single": _predict_pt2pt_single,
    "pt2pt_many": _predict_pt2pt_many,
    "pt2pt_part": _predict_pt2pt_part,
    "pt2pt_part_old": _predict_pt2pt_part_old,
    "rma_single_passive": lambda g: _predict_rma_passive(g, many=False),
    "rma_many_passive": lambda g: _predict_rma_passive(g, many=True),
    "rma_single_active": lambda g: _predict_rma_active(g, many=False),
    "rma_many_active": lambda g: _predict_rma_active(g, many=True),
}


def predict_bench_time(spec) -> BenchPrediction:
    """Predict the measured communication time of one ``BenchSpec``.

    Accepts any object with the ``BenchSpec`` fields (the model layer
    stays import-independent of the bench layer).
    """
    if spec.approach not in APPROACH_PREDICTORS:
        raise KeyError(f"no analytic predictor for approach {spec.approach!r}")
    params = spec.params
    # The delay of the last partition (FixedDelayModel); the Gaussian
    # model contributes its mean total per-thread compute instead.
    if getattr(spec, "gaussian_mu_us_per_mb", 0.0) > 0:
        # The harness computes *all* of a thread's partitions before
        # marking any ready, and the mean-rate Gaussian model keeps the
        # threads in lockstep — every message becomes ready in one burst
        # exactly when the compute removal ends, so the measured time
        # matches the compute-free transfer.
        delay = 0.0
        compute_active = False
    else:
        gamma = getattr(spec, "gamma_us_per_mb", 0.0) * 1e-6 / 1e6
        delay = gamma * (spec.total_bytes // (spec.n_threads * spec.theta))
        compute_active = gamma > 0
    geo = _Geometry(
        params=params,
        n_threads=spec.n_threads,
        theta=spec.theta,
        total_bytes=spec.total_bytes,
        num_vcis=spec.cvars.num_vcis,
        vci_method=spec.cvars.vci_method,
        part_aggr_size=spec.cvars.part_aggr_size,
        delay=delay,
        compute_active=compute_active,
    )
    return APPROACH_PREDICTORS[spec.approach](geo)


def predict_bench_times(specs):
    """Vectorized :func:`predict_bench_time` over a whole batch.

    Returns a float64 numpy array; point ``i`` is bitwise-equal to
    ``predict_bench_time(specs[i]).time``.  The formulas stay here (the
    scalar path is the single source of truth); the numpy re-expression
    lives in :mod:`repro.model.vector` and is held point-identical by
    the batch-equivalence test suite.
    """
    from .vector import bench_batch_times

    return bench_batch_times(specs)
