"""The delay-rate model of Appendix A (Eqs. 6–9).

The delay between the first and last partition becoming ready is
``D = γ_θ · S_part`` where the delay rate

    γ_θ = µ · (θ + σ·(√θ + 1) − 1)          (Eq. 9)

with ``σ = (ε + δ)/2`` and the average compute rate

    µ = (AI / CI) · 1 / (8·F)               (Eq. 6)

for arithmetic intensity AI (flop/B), communication intensity CI (bytes
moved per byte of memory used), CPU frequency F (Hz), and 8 flops per
cycle.
"""

from __future__ import annotations

import math

__all__ = ["mu_rate", "sigma_noise", "gamma_theta", "delay_time"]


def mu_rate(ai: float, ci: float, frequency_hz: float, flops_per_cycle: int = 8) -> float:
    """Eq. (6): average compute rate µ in s/B.

    ``µ = (AI/CI) / (flops_per_cycle · F)``.
    """
    if ai <= 0 or ci <= 0:
        raise ValueError("AI and CI must be positive")
    if frequency_hz <= 0 or flops_per_cycle <= 0:
        raise ValueError("frequency and flops/cycle must be positive")
    return (ai / ci) / (flops_per_cycle * frequency_hz)


def sigma_noise(epsilon: float, delta: float) -> float:
    """σ = (ε + δ)/2: accumulated relative noise (Eq. 7)."""
    if epsilon < 0 or delta < 0:
        raise ValueError("epsilon and delta must be >= 0")
    return (epsilon + delta) / 2.0


def gamma_theta(mu: float, theta: int, epsilon: float, delta: float) -> float:
    """Eq. (9): the delay rate γ_θ in s/B.

    ``γ_θ = µ·(θ + (ε+δ)/2 · (√θ + 1) − 1)``: the last of a thread's θ
    partitions finishes after ``µ·S·(θ + √θ·σ)`` while the first
    partition anywhere finishes after ``µ·S·(1 − σ)``.
    """
    if mu < 0:
        raise ValueError("mu must be >= 0")
    if theta < 1:
        raise ValueError("theta must be >= 1")
    sigma = sigma_noise(epsilon, delta)
    return mu * (theta + sigma * (math.sqrt(theta) + 1.0) - 1.0)


def delay_time(gamma: float, part_bytes: float) -> float:
    """``D = γ_θ · S_part`` (Eq. 8)."""
    if gamma < 0 or part_bytes < 0:
        raise ValueError("gamma and part_bytes must be >= 0")
    return gamma * part_bytes
