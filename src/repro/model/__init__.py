"""Analytic performance models of the paper (§2.2 and Appendix A).

Beyond the paper's closed forms, :mod:`repro.model.approaches` and
:mod:`repro.model.patterns` extend the single-message predictor into
full benchmark coverage — every registered approach and application
pattern — powering the analytic execution backend
(:class:`repro.backends.AnalyticBackend`).
"""

from .approaches import (
    BenchPrediction,
    predict_bench_time,
    predict_bench_times,
)
from .delay import delay_time, gamma_theta, mu_rate, sigma_noise
from .patterns import (
    PatternPrediction,
    predict_pattern_time,
    predict_pattern_times,
)
from .pipeline import (
    crossover_bytes,
    eta_large,
    eta_small,
    gamma_from_us_per_mb,
    gamma_to_us_per_mb,
    t_bulk,
    t_pipelined,
)
from .predict import MessagePrediction, predict_eta, predict_message_time
from .workloads import (
    FFT,
    PAPER_FFT_TABLE,
    PAPER_STENCIL_GAMMAS,
    STENCIL,
    Workload,
)

__all__ = [
    "t_bulk",
    "t_pipelined",
    "eta_large",
    "eta_small",
    "crossover_bytes",
    "gamma_from_us_per_mb",
    "gamma_to_us_per_mb",
    "mu_rate",
    "sigma_noise",
    "gamma_theta",
    "delay_time",
    "Workload",
    "FFT",
    "STENCIL",
    "PAPER_FFT_TABLE",
    "PAPER_STENCIL_GAMMAS",
    "MessagePrediction",
    "predict_message_time",
    "predict_eta",
    "BenchPrediction",
    "predict_bench_time",
    "predict_bench_times",
    "PatternPrediction",
    "predict_pattern_time",
    "predict_pattern_times",
]
