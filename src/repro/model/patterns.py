"""First-order analytic predictor for N-rank application patterns.

Extends the per-approach two-rank models of
:mod:`repro.model.approaches` to the :mod:`repro.apps` pattern harness:
a pattern is a directed link graph, and the predicted iteration time
composes per-link message predictions with the pattern's topology —

* **per-rank injection** — every rank posts one message per thread per
  outgoing link, serialized over its VCIs with the same contention
  multiplier as the two-rank model;
* **per-pair wire serialization** — each ordered rank pair owns one
  directional wire; all messages between the pair share it;
* **per-rank receive processing** — incoming messages serialize on the
  destination's VCIs;
* **compute overlap** — the per-partition useful work
  (``compute_us_per_mb``) is interleaved with the ready calls in the
  apps harness, so it overlaps the injection bottleneck before being
  removed by the §2.1 metric;
* **wavefront depth** — patterns with blocking receives (Sweep3D)
  serialize along the dependency DAG's longest chain: one hop's
  receive must complete before the next rank's compute phase starts.

This is deliberately coarser than the two-rank model (the simulator
resolves per-link transients the closed form cannot), which is why the
pattern tolerance in :data:`repro.backends.crossval.TOLERANCES` is wider
than any bench tolerance.

**Injected noise** (``noise != "none"``) enters as a first-order mean
shift calibrated against the simulator:

* the expected slowest-thread delay per compute quantum
  (:func:`noise_mean_quantum`: the Single victim's amplitude, the
  Uniform mean, the truncated-Gaussian mean) accumulates to
  ``max_out`` quanta per rank per iteration;
* **streaming approaches** (partitioned, per-partition sends, the AM
  fallback) absorb that budget like extra overlappable compute — the
  staggered ready calls de-contend injection, down to a per-message
  drain floor — and wavefront hops are gated per *link* (one quantum);
* **bulk-gated approaches** (``pt2pt_single``, RMA epochs: nothing
  completes before the noisy compute phase ends) see the §2.1 metric
  remove the whole shift at depth 1, while every extra wavefront hop
  accumulates one full un-removed rank budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..net import Protocol
from .approaches import (
    _MsgCost,
    _ctrl_path,
    _put_msg_cost,
    _tag_msg_cost,
    _token_path,
    _zcopy_queue_contenders,
)

__all__ = [
    "PatternPrediction",
    "STREAMING_APPROACHES",
    "noise_mean_quantum",
    "predict_pattern_time",
    "predict_pattern_times",
]

#: Approaches whose partitions leave as each ``ready`` lands, so
#: injected noise staggers (and thereby overlaps) the injection instead
#: of gating it: partitioned sends, one-send-per-thread, and the AM
#: single-active-message fallback.  Everything else — the bulk-
#: synchronous baseline and the RMA epochs, whose completion waits for
#: the noisy compute phase end — is bulk-gated.
STREAMING_APPROACHES = ("pt2pt_part", "pt2pt_many", "pt2pt_part_old")


def noise_mean_quantum(
    noise: str, noise_us: float, noise_sigma_us: float
) -> float:
    """Expected slowest-thread injected delay (seconds) per compute
    quantum, per noise shape (:mod:`repro.apps.noise`).

    Single puts its whole amplitude on one victim thread — which is
    then the slowest — so the quantum is the amplitude itself; Uniform
    draws from ``U(0, 2a)`` with mean ``a``; Gaussian draws from
    ``N(a, σ)`` truncated at zero, whose mean is
    ``a·Φ(a/σ) + σ·φ(a/σ)``.
    """
    amplitude = noise_us * 1e-6
    sigma = noise_sigma_us * 1e-6
    if noise == "none" or (amplitude <= 0 and sigma <= 0):
        return 0.0
    if noise in ("single", "uniform"):
        return amplitude
    if noise == "gaussian":
        if sigma == 0:
            return amplitude
        z = amplitude / sigma
        phi = math.exp(-0.5 * z * z) / math.sqrt(2.0 * math.pi)
        cdf = 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))
        return amplitude * cdf + sigma * phi
    raise KeyError(f"unknown noise model {noise!r}")


@dataclass(frozen=True)
class PatternPrediction:
    """Predicted per-iteration communication time for one pattern."""

    pattern: str
    approach: str
    time: float
    breakdown: Dict[str, float]


def _link_messages(config, nbytes: int) -> Tuple[int, int]:
    """(messages, bytes per message) one link contributes per iteration."""
    if config.approach == "pt2pt_single":
        return 1, nbytes
    if config.approach in ("pt2pt_part", "pt2pt_part_old"):
        if config.approach == "pt2pt_part_old":
            return 1, nbytes  # single active message
        from ..mpi.partitioned import negotiate_message_count

        n = negotiate_message_count(
            config.n_threads, config.n_threads, nbytes,
            config.cvars.part_aggr_size,
        )
        return n, nbytes // n
    # pt2pt_many and every RMA approach: one message per thread.
    return config.n_threads, nbytes // config.n_threads


def _per_message_costs(config, msg_bytes: int, mult: float):
    """(cost, per_link_sync) of one link message under the approach.

    ``per_link_sync`` is serialized master-thread work *per link* — the
    blocking synchronization round trips the apps harness issues
    link-by-link in its start/wait loops.
    """
    p = config.params
    if config.approach.startswith("rma"):
        put = _put_msg_cost(p, msg_bytes, mult)
        if "passive" in config.approach:
            # Per link: exposure-token wait, a blocking flush round
            # trip, and the completion token.
            per_link = (
                _token_path(p, p.post_overhead)
                + p.rma_sync_overhead
                + 2.0 * _ctrl_path(p)
            )
        else:
            # Per link: the PSCW epoch-open sync plus one token round;
            # the close-side tokens overlap the next link's epoch.
            per_link = p.rma_sync_overhead + _ctrl_path(p)
        return put, per_link
    if config.approach == "pt2pt_part_old":
        # One active message per link: bounce copies on both sides, AM
        # dispatch at the target, a per-iteration CTS.
        post = p.post_overhead * mult + p.copy_time(msg_bytes)
        wire = p.wire_time(msg_bytes)
        rx = p.am_dispatch_overhead + p.copy_time(
            min(msg_bytes, p.am_chunk_bytes)
        )
        msg = _MsgCost(
            post=post, wire=wire, rx=rx,
            path=post + wire + p.latency + rx,
        )
        return msg, p.ctrl_overhead + 2.0 * p.part_completion_overhead
    msg = _tag_msg_cost(p, msg_bytes, mult)
    per_link = 0.0
    if config.approach == "pt2pt_part":
        per_link = 2.0 * p.part_completion_overhead
    return msg, per_link


def _dependency_depth(pattern, n_ranks: int) -> int:
    """Longest chain (in hops) of the pattern's blocking-receive DAG."""
    if not pattern.has_dependencies:
        return 0
    upstream: Dict[int, List[int]] = {}
    link_src = {link.key: link.src for link in pattern.links()}
    for rank in range(n_ranks):
        upstream[rank] = [
            link_src[key]
            for key in pattern.blocking_recvs(rank)
            if key in link_src
        ]
    depth: Dict[int, int] = {}

    def visit(rank: int) -> int:
        if rank in depth:
            return depth[rank]
        depth[rank] = 0  # cycle guard; the DAGs here are acyclic
        ups = upstream.get(rank, [])
        depth[rank] = 1 + max((visit(u) for u in ups), default=-1)
        return depth[rank]

    return max((visit(r) for r in range(n_ranks)), default=0)


def predict_pattern_time(config, pattern=None) -> PatternPrediction:
    """Predict the measured per-iteration time of one ``PatternConfig``.

    Accepts any object with the ``PatternConfig`` fields; the pattern
    topology is built through the apps registry (imported lazily — the
    model layer has no import-time dependency on it) unless the caller
    passes a prebuilt ``pattern`` (the analytic backend does, to avoid
    enumerating an O(ranks²) link graph twice per grid point).
    """
    p = config.params
    if pattern is None:
        from ..apps.base import build_pattern

        pattern = build_pattern(config)
    links = pattern.links()
    if not links:
        return PatternPrediction(
            config.pattern, config.approach, 0.0, {"links": 0.0}
        )
    nbytes = links[0].nbytes  # patterns use one aligned size per link
    n_msgs, msg_bytes = _link_messages(config, nbytes)

    out_deg: Dict[int, int] = {}
    in_deg: Dict[int, int] = {}
    pair_msgs: Dict[Tuple[int, int], int] = {}
    for link in links:
        out_deg[link.src] = out_deg.get(link.src, 0) + 1
        in_deg[link.dst] = in_deg.get(link.dst, 0) + 1
        key = (link.src, link.dst)
        pair_msgs[key] = pair_msgs.get(key, 0) + n_msgs
    max_out = max(out_deg.values())
    max_in = max(in_deg.values())
    max_pair = max(pair_msgs.values())

    # Every link has its own context, so messages spread over the VCIs
    # context-wise; the threads contend per VCI exactly as in the
    # two-rank model, with the spawned progress agents (rendezvous data
    # injections, CTS answers for the incoming links) inflating the
    # episode peak toward the saturated queue count.
    lanes = max(1, min(config.n_threads, config.cvars.num_vcis))
    per_vci = math.ceil(config.n_threads / lanes)
    contenders = float(per_vci - 1)
    rank_msgs = max_out * n_msgs
    zcopy = (
        not config.approach.startswith("rma")
        and config.approach != "pt2pt_part_old"
        and p.protocol_for(msg_bytes) is Protocol.ZCOPY
    )
    if zcopy and lanes == 1 and rank_msgs > 1:
        contenders = max(
            contenders,
            min(_zcopy_queue_contenders(p), contenders + rank_msgs / 2.0),
        )
    mult = p.contention_multiplier(contenders)
    msg, per_link_sync = _per_message_costs(config, msg_bytes, mult)
    sync_tail = max_out * per_link_sync

    # Per-iteration useful work of one thread (overlappable with the
    # transfers, and removed by the metric): one partition per outgoing
    # link, computed immediately before that link's ready call.
    mu = config.compute_us_per_mb * 1e-6 / 1e6
    compute = max_out * mu * (nbytes / config.n_threads)

    # Injected-noise budget: the slowest thread's expected extra delay
    # over its max_out quanta (see the module docstring).
    noise_q = noise_mean_quantum(
        getattr(config, "noise", "none"),
        getattr(config, "noise_us", 0.0),
        getattr(config, "noise_sigma_us", 0.0),
    )
    noise_rank = max_out * noise_q

    post_work = max_out * n_msgs * msg.post / lanes
    if zcopy:
        # Incoming rendezvous traffic posts its CTS answers on the same
        # contended lock as the outgoing RTS/data injections.
        post_work += max_in * n_msgs * p.ctrl_overhead * mult / lanes
    # The per-VCI TX loop blocks while each packet crosses its wire, so
    # a rank's whole outgoing traffic serializes over its lanes even
    # when it targets distinct pair wires.
    wire_work = max(max_pair * msg.wire, max_out * n_msgs * msg.wire / lanes)
    rx_work = max_in * n_msgs * msg.rx / lanes
    bottleneck = max(post_work, wire_work, rx_work)
    if config.approach == "pt2pt_single":
        # Bulk semantics: the master starts and *blocks on* each link's
        # send in turn after the compute phase — nothing overlaps, and
        # the metric's removal cancels the noisy phase at depth 1.  An
        # extra wavefront hop re-pays the full un-removed rank budget.
        hop = max_out * msg.path + sync_tail
        hop_noise = noise_rank
    elif config.approach in STREAMING_APPROACHES:
        # The compute phase *and the staggered noise* hide the
        # bottleneck work, down to the stagger-limited drain floor
        # (one message's share once the readies spread out, but never
        # more than the noise budget below the lockstep floor).
        # Downstream hops are gated per link: only the last quantum
        # before that link's ready survives the overlap.
        floor = max(
            bottleneck / rank_msgs, bottleneck / max_out - noise_rank
        )
        hop = (
            max(bottleneck - (compute + noise_rank), floor)
            + msg.path
            + sync_tail
        )
        hop_noise = noise_q
    else:
        # RMA: the puts stream, but the epoch close (and thereby the
        # receiver's wait) is gated by the noisy phase end — absorbed
        # at depth 1 by the removal, re-paid per extra hop.
        hop = (
            max(bottleneck - compute, bottleneck / max_out)
            + msg.path
            + sync_tail
        )
        hop_noise = noise_rank
    hop += p.barrier_time(config.n_threads)

    depth = _dependency_depth(pattern, config.n_ranks)
    if depth > 1:
        # Wavefront: each hop's blocking receive gates the next rank's
        # compute phase, whose useful work and injected noise are *not*
        # removed for the downstream ranks (only one thread's total is
        # subtracted by the metric).
        time = hop + (depth - 1) * (hop + compute + hop_noise)
    else:
        time = hop
    return PatternPrediction(
        config.pattern, config.approach, time,
        {
            "post_work": post_work,
            "wire_work": wire_work,
            "rx_work": rx_work,
            "compute_overlap": compute,
            "noise_shift": noise_rank,
            "sync_tail": sync_tail,
            "depth": float(max(depth, 1)),
        },
    )


def predict_pattern_times(configs):
    """Vectorized :func:`predict_pattern_time` over a whole batch.

    Returns a :class:`repro.model.vector.PatternBatch` whose ``times``
    entry ``i`` is bitwise-equal to
    ``predict_pattern_time(configs[i]).time`` (plus the per-point
    ``bytes_per_iteration``/``n_links`` topology facts).  Link graphs
    are summarized once per unique topology instead of rebuilt per
    point.
    """
    from .vector import pattern_batch

    return pattern_batch(configs)
