"""The numerical workloads of Appendix A.2 with the paper's published values.

Two application models parameterize the delay-rate formula:

* **Distributed FFT** (A.2.1): AI ≈ 5, CI = 1, δ = 0, ε = 0.04.
* **3-D finite-difference stencil** (A.2.2): one 64³ block with two ghost
  layers → CI = (66/64)³ − 1 ≈ 0.1, AI ≈ 1/13 (4th order), δ = 0.5,
  ε = 0.04.

The CPU frequency is not stated in the paper; F = 3.5 GHz reproduces the
published FFT γ values exactly (and is a plausible boost clock for the
EPYC 7H12 testbed).

Known paper inconsistency (documented in DESIGN.md)
----------------------------------------------------
The published *stencil* gains (η = 1.1060/1.1718/1.2169) do not follow
from Eq. (4) with the published γ values; they match Eq. (4) only when
the ``γ·β`` term is doubled — i.e. as if σ = ε + δ had been used instead
of σ = (ε + δ)/2.  The FFT example is self-consistent.  We expose both:
:meth:`Workload.eta` (Eq. 4, exact) and
:meth:`Workload.eta_as_published_stencil` (doubled term).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .delay import gamma_theta, mu_rate
from .pipeline import eta_large

__all__ = ["Workload", "FFT", "STENCIL", "PAPER_FFT_TABLE", "PAPER_STENCIL_GAMMAS"]

#: CPU frequency used in the paper's numeric examples (see module doc).
PAPER_FREQUENCY_HZ = 3.5e9
#: Network bandwidth of the testbed (25 GB/s).
PAPER_BETA = 25e9


@dataclass(frozen=True)
class Workload:
    """An application model for the Appendix-A delay-rate analysis."""

    name: str
    ai: float
    ci: float
    epsilon: float
    delta: float
    frequency_hz: float = PAPER_FREQUENCY_HZ

    @property
    def mu(self) -> float:
        """Average compute rate µ (s/B, Eq. 6)."""
        return mu_rate(self.ai, self.ci, self.frequency_hz)

    def gamma(self, theta: int) -> float:
        """Delay rate γ_θ (s/B, Eq. 9)."""
        return gamma_theta(self.mu, theta, self.epsilon, self.delta)

    def gamma_us_per_mb(self, theta: int) -> float:
        """γ_θ in the paper's µs/MB units."""
        return self.gamma(theta) * 1e12

    def eta(self, n_threads: int, theta: int, beta: float = PAPER_BETA) -> float:
        """Pipelining gain η from Eq. (4)."""
        return eta_large(n_threads, theta, beta, self.gamma(theta))

    def eta_as_published_stencil(
        self, n_threads: int, theta: int, beta: float = PAPER_BETA
    ) -> float:
        """Gain with the γ·β term doubled — reproduces the published
        stencil η values (see the module docstring)."""
        return eta_large(n_threads, theta, beta, 2.0 * self.gamma(theta))


def _stencil_ci(block: int = 64, ghosts: int = 2) -> float:
    """CI of a cubic stencil block: ((b+g)/b)³ − 1 for g ghost points."""
    ratio = (block + ghosts) / block
    return ratio**3 - 1.0


#: Distributed FFT (Appendix A.2.1); AI ≈ 5 per Ibeid et al. [7].
FFT = Workload(name="fft", ai=5.0, ci=1.0, epsilon=0.04, delta=0.0)

#: 3-D 4th-order finite-difference stencil (Appendix A.2.2).
STENCIL = Workload(
    name="stencil",
    ai=1.0 / 13.0,
    ci=_stencil_ci(),
    epsilon=0.04,
    delta=0.5,
)

#: Published FFT values: θ -> (γ_θ in µs/MB, η for N=8).
PAPER_FFT_TABLE: Dict[int, Tuple[float, float]] = {
    1: (7.1428, 1.0228),
    2: (187.1936, 1.4134),
    8: (1263.67, 1.9748),
}

#: Published stencil γ values: θ -> γ_θ in µs/MB (N=8).
PAPER_STENCIL_GAMMAS: Dict[int, float] = {
    1: 15.3398,
    2: 46.92385411,
    8: 228.21310932,
}

#: Published stencil gains (N=8); see the module docstring for why these
#: require the doubled γ·β term.
PAPER_STENCIL_ETAS: Dict[int, float] = {1: 1.1060, 2: 1.1718, 8: 1.2169}
