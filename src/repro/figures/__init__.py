"""Per-figure experiment drivers regenerating every table and figure.

Each module exposes ``run(iterations=..., quick=...) -> FigureData`` and
``report(data) -> str``:

* :mod:`.fig4_improvement` — improved vs old implementation (Fig. 4);
* :mod:`.fig5_congestion` — 32-thread congestion, one VCI (Fig. 5);
* :mod:`.fig6_vcis` — congestion relief with 32 VCIs (Fig. 6);
* :mod:`.fig7_aggregation` — message aggregation (Fig. 7);
* :mod:`.fig8_earlybird` — early-bird bandwidth gain (Fig. 8);
* :mod:`.tables` — the approach/operation matrices (Tables 1-2).
"""

from . import (
    fig4_improvement,
    fig5_congestion,
    fig6_vcis,
    fig7_aggregation,
    fig8_earlybird,
    tables,
)
from .common import FigureData

__all__ = [
    "FigureData",
    "fig4_improvement",
    "fig5_congestion",
    "fig6_vcis",
    "fig7_aggregation",
    "fig8_earlybird",
    "tables",
]
