"""Figure 4: improved vs. existing partitioned implementation (§4.1).

Setup: N = 1 thread, θ = 1 partition, no delay (γ = 0); time across
message sizes for all eight approaches plus the theoretical-bandwidth
reference line.

Expected shapes (paper):

* the improved ``Pt2Pt part`` matches ``Pt2Pt single``;
* the old AM path is slower at every size (÷3.18 where the copy path
  saturates);
* protocol jumps: short→bcopy between 1024 and 2048 B, bcopy→zcopy
  (rendezvous) between 8192 and 16384 B;
* the RMA family pays extra synchronization at small sizes and
  converges above the rendezvous threshold.
"""

from __future__ import annotations

from ..bench import BenchSpec, format_us_table
from .common import FigureData, paper_sizes, run_grid

__all__ = ["APPROACHES", "run", "report"]

#: Legend order of the paper's Fig. 4.
APPROACHES = (
    "rma_single_passive",
    "rma_many_passive",
    "rma_single_active",
    "rma_many_active",
    "pt2pt_many",
    "pt2pt_single",
    "pt2pt_part_old",
    "pt2pt_part",
)

MIN_BYTES = 16
MAX_BYTES = 16 << 20  # 16 MiB ~ the paper's 10^7 B axis end


def run(iterations: int = 30, quick: bool = False, jobs: int = 1,
        store=None, resume: bool = False,
        backend: str = "sim") -> FigureData:
    """Regenerate Fig. 4's data."""
    sizes = paper_sizes(MIN_BYTES, MAX_BYTES, n_parts=1, quick=quick)
    base = BenchSpec(
        approach="pt2pt_single",
        total_bytes=sizes[0],
        n_threads=1,
        theta=1,
        iterations=iterations,
    )
    data = run_grid("fig4", APPROACHES, sizes, base,
                    jobs=jobs, store=store, resume=resume, backend=backend)
    small, large = sizes[0], sizes[-1]
    sweep = data.sweep
    data.headline = {
        "old_over_new_small": sweep.ratio("pt2pt_part_old", "pt2pt_part", small),
        "old_over_new_large": sweep.ratio("pt2pt_part_old", "pt2pt_part", large),
        "part_over_single_small": sweep.ratio("pt2pt_part", "pt2pt_single", small),
        "rma_over_pt2pt_small": sweep.ratio(
            "rma_single_passive", "pt2pt_single", small
        ),
        "rma_over_pt2pt_large": sweep.ratio(
            "rma_single_passive", "pt2pt_single", large
        ),
    }
    data.notes = [
        "paper: old AM path ~/3.18 slower; improved path matches Pt2Pt single",
        "paper: RMA approaches pay extra sync at small sizes, converge at large",
    ]
    return data


def report(data: FigureData) -> str:
    """Printable reproduction of Fig. 4."""
    lines = [
        format_us_table(
            data.sweep,
            APPROACHES,
            title="Figure 4 — time [us] across message sizes (N=1, theta=1)",
        ),
        "",
        f"old/new (small): x{data.headline['old_over_new_small']:.2f}",
        f"old/new (large): x{data.headline['old_over_new_large']:.2f}"
        "   [paper: ~3.18]",
        f"part/single (small): x{data.headline['part_over_single_small']:.2f}"
        "   [paper: ~1]",
        f"RMA/pt2pt (small): x{data.headline['rma_over_pt2pt_small']:.2f}"
        "   [paper: >2]",
        f"RMA/pt2pt (large): x{data.headline['rma_over_pt2pt_large']:.2f}"
        "   [paper: ~1]",
    ]
    return "\n".join(lines)
