"""Figure 8: the early-bird effect for large messages (§4.3).

Setup: N = 4 threads, θ = 1 (4 partitions), delay rate γ = 100 µs/MB
applied to the **last** partition (standing in for a θ > 1 workload per
Appendix A); perceived bandwidth across message sizes for four
approaches.

Expected shapes (paper):

* gain ≈ ×2.54 at the largest sizes against bulk synchronization
  (theory: ×2.67 from Eq. 4 — the difference is latency and thread
  congestion, which the model leaves out);
* the gain is *approach-agnostic* (pt2pt and RMA pipelines overlap the
  same delay);
* pipelining loses below the crossover at ≈ 100 kB.
"""

from __future__ import annotations

from ..bench import BenchSpec, format_bandwidth_table
from ..model import eta_large, gamma_from_us_per_mb
from ..net import MELUXINA
from .common import FigureData, paper_sizes, run_grid

__all__ = ["APPROACHES", "GAMMA_US_PER_MB", "N_THREADS", "run", "report"]

APPROACHES = (
    "rma_single_passive",
    "pt2pt_many",
    "pt2pt_single",
    "pt2pt_part",
)

N_THREADS = 4
GAMMA_US_PER_MB = 100.0
MIN_BYTES = 128
MAX_BYTES = 16 << 20


def theoretical_gain() -> float:
    """Eq. (4) for this configuration (the paper quotes 2.67)."""
    return eta_large(
        N_THREADS, 1, MELUXINA.bandwidth, gamma_from_us_per_mb(GAMMA_US_PER_MB)
    )


def run(iterations: int = 30, quick: bool = False, jobs: int = 1,
        store=None, resume: bool = False,
        backend: str = "sim") -> FigureData:
    """Regenerate Fig. 8's data."""
    sizes = paper_sizes(MIN_BYTES, MAX_BYTES, n_parts=N_THREADS, quick=quick)
    base = BenchSpec(
        approach="pt2pt_single",
        total_bytes=sizes[0],
        n_threads=N_THREADS,
        theta=1,
        iterations=iterations,
        gamma_us_per_mb=GAMMA_US_PER_MB,
    )
    data = run_grid("fig8", APPROACHES, sizes, base,
                    jobs=jobs, store=store, resume=resume, backend=backend)
    sweep = data.sweep
    large = sizes[-1]
    # Gain of each pipelined approach over bulk synchronization.
    gains = {
        name: sweep.ratio("pt2pt_single", name, large)
        for name in APPROACHES
        if name != "pt2pt_single"
    }
    # Crossover: the first size where the partitioned pipeline wins.
    crossover = None
    for size in sweep.sizes("pt2pt_part"):
        if sweep.ratio("pt2pt_single", "pt2pt_part", size) > 1.0:
            crossover = size
            break
    data.headline = {
        "gain_part": gains["pt2pt_part"],
        "gain_many": gains["pt2pt_many"],
        "gain_rma": gains["rma_single_passive"],
        "gain_theory": theoretical_gain(),
        "crossover_bytes": float(crossover) if crossover else float("nan"),
    }
    data.notes = [
        "paper: measured gain ~2.54 vs theory 2.67; crossover ~100 kB",
        "paper: gain independent of the approach used",
    ]
    return data


def report(data: FigureData) -> str:
    """Printable reproduction of Fig. 8."""
    h = data.headline
    return "\n".join(
        [
            format_bandwidth_table(
                data.sweep,
                APPROACHES,
                title=(
                    "Figure 8 — early-bird effect: perceived bandwidth "
                    "[GB/s], 4 threads, 4 partitions, gamma=100 us/MB"
                ),
            ),
            "",
            f"gain part/single (large): x{h['gain_part']:.4f}"
            "   [paper: ~2.5417]",
            f"gain many/single (large): x{h['gain_many']:.4f}",
            f"gain rma/single (large): x{h['gain_rma']:.4f}",
            f"theoretical gain (Eq. 4): x{h['gain_theory']:.4f}"
            "   [paper: 2.67]",
            f"crossover: ~{h['crossover_bytes'] / 1e3:.0f} kB"
            "   [paper: ~100 kB]",
        ]
    )
