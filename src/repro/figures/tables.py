"""Tables 1 and 2: the MPI operations each approach maps to each phase.

These tables are the paper's specification of the benchmark approaches;
here they double as machine-checkable documentation: the integration
tests assert that each approach's implementation actually performs the
listed operations (via runtime call counters and wire traffic).

Unlike the ``figN_*`` drivers, the tables are static text — there is no
scenario grid to submit to :mod:`repro.runner`, so regeneration is free
and ignores ``--jobs``/``--store``/``--resume``.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["TABLE1_SENDER", "TABLE2_RECEIVER", "table1", "table2"]

#: Sender-side operations by approach and phase (paper Table 1).
TABLE1_SENDER: Dict[str, Dict[str, List[str]]] = {
    "pt2pt_part": {
        "init": ["MPI_Psend_init"],
        "start": ["MPI_Start"],
        "ready": ["MPI_Pready"],
        "wait": ["MPI_Wait"],
    },
    "pt2pt_single": {
        "init": ["MPI_Send_init"],
        "start": [],
        "ready": [],
        "wait": ["MPI_Start", "MPI_Wait"],
    },
    "pt2pt_many": {
        "init": ["MPI_Comm_dup", "MPI_Send_init"],
        "start": [],
        "ready": ["MPI_Start"],
        "wait": ["MPI_Wait"],
    },
    "rma_single_passive": {
        "init": ["MPI_Comm_dup", "MPI_Win_create", "MPI_Win_lock"],
        "start": ["MPI_Recv"],
        "ready": ["MPI_Put"],
        "wait": ["MPI_Win_flush", "MPI_Send"],
    },
    "rma_many_passive": {
        "init": ["MPI_Win_create", "MPI_Win_lock"],
        "start": ["MPI_Recv"],
        "ready": ["MPI_Put", "MPI_Win_flush"],
        "wait": ["MPI_Send"],
    },
    "rma_single_active": {
        "init": ["MPI_Comm_dup", "MPI_Win_create"],
        "start": ["MPI_Start"],
        "ready": ["MPI_Put"],
        "wait": ["MPI_Complete"],
    },
    "rma_many_active": {
        "init": ["MPI_Win_create"],
        "start": ["MPI_Start"],
        "ready": ["MPI_Put"],
        "wait": ["MPI_Complete"],
    },
}

#: Receiver-side operations by approach and phase (paper Table 2).
TABLE2_RECEIVER: Dict[str, Dict[str, List[str]]] = {
    "pt2pt_part": {
        "init": ["MPI_Precv_init"],
        "start": ["MPI_Start"],
        "ready": ["MPI_Parrived"],
        "wait": ["MPI_Wait"],
    },
    "pt2pt_single": {
        "init": ["MPI_Recv_init"],
        "start": ["MPI_Start"],
        "ready": [],
        "wait": ["MPI_Wait"],
    },
    "pt2pt_many": {
        "init": ["MPI_Comm_dup", "MPI_Recv_init"],
        "start": ["MPI_Start"],
        "ready": [],
        "wait": ["MPI_Wait"],
    },
    "rma_single_passive": {
        "init": ["MPI_Win_create"],
        "start": ["MPI_Send"],
        "ready": [],
        "wait": ["MPI_Recv"],
    },
    "rma_many_passive": {
        "init": ["MPI_Win_create"],
        "start": ["MPI_Send"],
        "ready": [],
        "wait": ["MPI_Recv"],
    },
    "rma_single_active": {
        "init": ["MPI_Win_create"],
        "start": ["MPI_Post"],
        "ready": [],
        "wait": ["MPI_Wait"],
    },
    "rma_many_active": {
        "init": ["MPI_Win_create"],
        "start": ["MPI_Post"],
        "ready": [],
        "wait": ["MPI_Wait"],
    },
}

_PHASES = ("init", "start", "ready", "wait")


def _render(table: Dict[str, Dict[str, List[str]]], title: str) -> str:
    width = 24
    lines = [title]
    header = f"{'approach':<22}" + "".join(f"{p:<{width}}" for p in _PHASES)
    lines.append(header)
    lines.append("-" * len(header))
    for name, phases in table.items():
        cells = "".join(
            f"{' + '.join(phases[p]) or '-':<{width}}" for p in _PHASES
        )
        lines.append(f"{name:<22}" + cells)
    return "\n".join(lines)


def table1() -> str:
    """Printable reproduction of Table 1 (sender side)."""
    return _render(TABLE1_SENDER, "Table 1 — MPI operations, sender side")


def table2() -> str:
    """Printable reproduction of Table 2 (receiver side)."""
    return _render(TABLE2_RECEIVER, "Table 2 — MPI operations, receiver side")
