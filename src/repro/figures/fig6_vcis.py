"""Figure 6: congestion relief with one VCI per thread (§4.2.1).

Same setup as Fig. 5 but with ``MPIR_CVAR_NUM_VCIS = 32`` and the
experimental tag-encoded round-robin VCI mapping for partitioned
messages (``--enable-vci-method=tag``).

Expected shapes (paper):

* ``Pt2Pt many`` reaches ``Pt2Pt single`` (duplicated communicators map
  to distinct VCIs; the single approach keeps its thread-barrier
  penalty);
* ``Pt2Pt part`` improves by ≈ ×7 vs Fig. 5 but keeps a ≈ ×4.04
  residual (shared completion-counter atomics);
* the RMA ordering flips: many windows (one VCI each) now beat the
  single shared window.
"""

from __future__ import annotations

from ..bench import BenchSpec, format_us_table
from ..mpi import Cvars, VCI_METHOD_TAG_RR
from .common import FigureData, paper_sizes, run_grid
from .fig5_congestion import APPROACHES, MAX_BYTES, MIN_BYTES, N_THREADS

__all__ = ["APPROACHES", "N_VCIS", "run", "report"]

N_VCIS = 32


def run(iterations: int = 30, quick: bool = False, jobs: int = 1,
        store=None, resume: bool = False,
        backend: str = "sim") -> FigureData:
    """Regenerate Fig. 6's data."""
    sizes = paper_sizes(MIN_BYTES, MAX_BYTES, n_parts=N_THREADS, quick=quick)
    base = BenchSpec(
        approach="pt2pt_single",
        total_bytes=sizes[0],
        n_threads=N_THREADS,
        theta=1,
        iterations=iterations,
        cvars=Cvars(num_vcis=N_VCIS, vci_method=VCI_METHOD_TAG_RR),
    )
    data = run_grid("fig6", APPROACHES, sizes, base,
                    jobs=jobs, store=store, resume=resume, backend=backend)
    small = sizes[0]
    sweep = data.sweep
    data.headline = {
        "part_penalty_small": sweep.ratio("pt2pt_part", "pt2pt_single", small),
        "many_penalty_small": sweep.ratio("pt2pt_many", "pt2pt_single", small),
        "rma_many_over_single_win": sweep.ratio(
            "rma_many_passive", "rma_single_passive", small
        ),
    }
    data.notes = [
        "paper: part penalty drops to ~x4.04; many matches single",
        "paper: RMA many-passive now *faster* than RMA single-passive",
    ]
    return data


def report(data: FigureData) -> str:
    """Printable reproduction of Fig. 6."""
    h = data.headline
    return "\n".join(
        [
            format_us_table(
                data.sweep,
                APPROACHES,
                title=(
                    "Figure 6 — thread congestion with 32 VCIs: time [us], "
                    "32 threads, 32 partitions"
                ),
            ),
            "",
            f"part/single (small): x{h['part_penalty_small']:.2f}"
            "   [paper: ~4.04]",
            f"many/single (small): x{h['many_penalty_small']:.2f}"
            "   [paper: ~1]",
            f"RMA many/RMA single (small): x{h['rma_many_over_single_win']:.2f}"
            "   [paper: <1 (ordering flips)]",
        ]
    )
