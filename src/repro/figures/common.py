"""Shared scaffolding for the per-figure experiment drivers.

Each ``figN_*`` module exposes

* ``SIZES`` / configuration constants matching the paper's setup,
* ``run(iterations=..., quick=..., jobs=..., store=..., resume=...)``
  returning a :class:`FigureData`,
* ``report(data)`` returning the printable reproduction of the figure.

``quick=True`` shrinks the size grid (used by the pytest-benchmark
drivers so a full regeneration stays tractable); the full grid matches
the paper's axis ranges.

Every driver builds its approaches × sizes grid and submits it to the
unified scenario runner (:mod:`repro.runner`) as one batch, which
routes it through the chunked execution pipeline: simulated points fan
out across cores in per-backend chunks (``jobs > 1``; tiny grids
auto-fall back to serial), analytic points evaluate through the
vectorized model kernel in one ``run_batch`` call, and a
:class:`~repro.runner.store.ResultStore` plus ``resume=True`` skips
points that were already computed by an earlier invocation.  The
drivers themselves never see the difference: results come back in
submission order either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..bench import BenchSpec, SweepResult, sweep_approaches

__all__ = ["FigureData", "run_grid", "run_labeled_grid", "paper_sizes"]


@dataclass
class FigureData:
    """One figure's regenerated data plus its headline comparisons."""

    figure: str
    sweep: SweepResult
    #: Named scalar findings (penalty factors, gains, crossovers).
    headline: Dict[str, float] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)


def paper_sizes(min_bytes: int, max_bytes: int, n_parts: int,
                quick: bool = False) -> List[int]:
    """Log-2 size grid divisible by the partition count.

    ``quick`` keeps ~4 sizes spanning the range (for CI benchmarks).
    """
    sizes: List[int] = []
    size = n_parts
    while size < min_bytes:
        size *= 2
    while size <= max_bytes:
        sizes.append(size)
        size *= 2
    if quick and len(sizes) > 4:
        stride = (len(sizes) - 1) / 3.0
        picked = {sizes[round(i * stride)] for i in range(4)}
        sizes = sorted(picked)
    return sizes


def run_labeled_grid(
    figure: str,
    labeled_specs: Sequence[tuple],
    jobs: int = 1,
    store=None,
    resume: bool = False,
    backend: str = "sim",
) -> FigureData:
    """Run explicit ``(label, BenchSpec)`` points as one runner batch.

    The general entry point for figures whose series are not plain
    approach names (e.g. Fig. 7's cvar variants): every spec goes out in
    a single submission, and each result lands in the sweep under its
    label.
    """
    from ..runner import run_specs

    specs = [spec for _, spec in labeled_specs]
    results = run_specs(
        specs, jobs=jobs, store=store, resume=resume, backend=backend
    )
    sweep = SweepResult()
    for (label, _), result in zip(labeled_specs, results):
        sweep.add_as(label, result)
    return FigureData(figure=figure, sweep=sweep)


def run_grid(
    figure: str,
    approaches: Sequence[str],
    sizes: Sequence[int],
    base: BenchSpec,
    jobs: int = 1,
    store=None,
    resume: bool = False,
    backend: str = "sim",
) -> FigureData:
    """Sweep approaches × sizes under ``backend`` and wrap the result."""
    sweep = sweep_approaches(
        base, approaches, sizes,
        jobs=jobs, store=store, resume=resume, backend=backend,
    )
    return FigureData(figure=figure, sweep=sweep)
