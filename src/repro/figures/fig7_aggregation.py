"""Figure 7: message aggregation (§4.2.2).

Setup: N = 4 threads, θ = 32 partitions per thread (128 partitions), no
delay, partitions ready immediately and processed in order; the
aggregation bound ``MPIR_CVAR_PART_AGGR_SIZE`` sweeps
{off, 512, 1024, 4096, 16384} bytes.

Expected shapes (paper):

* without aggregation, ``Pt2Pt part`` performs like ``Pt2Pt many``
  (128 individual messages);
* with aggregation, small-message overhead collapses toward the
  single-message latency, leaving a ≈ ×3.13 floor of per-partition
  atomic updates;
* aggregation stops helping once the buffer exceeds
  ``N_part × aggr_size`` (the message count saturates at 128), so each
  aggregated curve rejoins the no-aggregation curve there.
"""

from __future__ import annotations

from dataclasses import replace
from ..bench import BenchSpec, format_us_table
from ..mpi import Cvars
from .common import FigureData, paper_sizes, run_labeled_grid

__all__ = ["AGGR_SIZES", "N_THREADS", "THETA", "run", "report"]

N_THREADS = 4
THETA = 32
N_PARTS = N_THREADS * THETA
#: Aggregation bounds benchmarked in the paper's Fig. 7 (0 = off).
AGGR_SIZES = (0, 512, 1024, 4096, 16384)
MIN_BYTES = 1 << 11
MAX_BYTES = 16 << 20


def _key(aggr: int) -> str:
    return "pt2pt_part" if aggr == 0 else f"pt2pt_part(aggr={aggr})"


def run(iterations: int = 30, quick: bool = False, jobs: int = 1,
        store=None, resume: bool = False,
        backend: str = "sim") -> FigureData:
    """Regenerate Fig. 7's data.

    The sweep result keys partitioned variants as
    ``pt2pt_part(aggr=N)``; baselines keep their registry names.  The
    baselines and every aggregation variant go to the runner as one
    labeled grid, so the whole figure fans out in a single batch.
    """
    sizes = paper_sizes(MIN_BYTES, MAX_BYTES, n_parts=N_PARTS, quick=quick)
    base = BenchSpec(
        approach="pt2pt_single",
        total_bytes=sizes[0],
        n_threads=N_THREADS,
        theta=THETA,
        iterations=iterations,
    )
    labeled = [
        (name, replace(base, approach=name, total_bytes=size))
        for name in ("pt2pt_single", "pt2pt_many")
        for size in sizes
    ]
    labeled += [
        (
            _key(aggr),
            replace(
                base,
                approach="pt2pt_part",
                total_bytes=size,
                cvars=Cvars(part_aggr_size=aggr),
            ),
        )
        for aggr in AGGR_SIZES
        for size in sizes
    ]
    data = run_labeled_grid(
        "fig7", labeled, jobs=jobs, store=store, resume=resume, backend=backend)
    sweep = data.sweep
    small = sizes[0]
    data.headline = {
        "noaggr_penalty": sweep.ratio(_key(0), "pt2pt_single", small),
        "many_penalty": sweep.ratio("pt2pt_many", "pt2pt_single", small),
        "aggr512_penalty": sweep.ratio(_key(512), "pt2pt_single", small),
        "aggr16384_penalty": sweep.ratio(_key(16384), "pt2pt_single", small),
    }
    data.notes = [
        "paper: no-aggregation part ~= many; aggregated floor ~x3.13",
        f"aggregation benefit ends at N_part*aggr (N_part={N_PARTS})",
    ]
    return data


def report(data: FigureData) -> str:
    """Printable reproduction of Fig. 7."""
    h = data.headline
    cols = ["pt2pt_many", "pt2pt_single"] + [_key(a) for a in AGGR_SIZES]
    return "\n".join(
        [
            format_us_table(
                data.sweep,
                cols,
                title=(
                    "Figure 7 — message aggregation: time [us], 4 threads, "
                    "theta=32 (128 partitions)"
                ),
            ),
            "",
            f"no-aggr/single (small): x{h['noaggr_penalty']:.2f}"
            "   [paper: ~x10, ~= many]",
            f"many/single (small): x{h['many_penalty']:.2f}",
            f"aggr=512/single (small): x{h['aggr512_penalty']:.2f}"
            "   [paper: ~3.13]",
            f"aggr=16384/single (small): x{h['aggr16384_penalty']:.2f}",
        ]
    )
