"""Figure 5: thread congestion at 32 threads on one VCI (§4.2.1).

Setup: N = 32 threads, θ = 1, one VCI, no delay; time across message
sizes for the five approaches the paper plots.

Expected shapes (paper):

* ``Pt2Pt single`` wins at small sizes (one message, no contention;
  slightly above its Fig. 4 latency because of the thread barrier);
* ``Pt2Pt part`` and ``Pt2Pt many`` pay ≈ ×29.76 at the smallest size,
  with little difference between them;
* ``RMA many - passive`` sits above ``RMA single - passive`` (progress
  engine scans many windows on the single VCI);
* everything converges at bandwidth-dominated sizes.
"""

from __future__ import annotations

from ..bench import BenchSpec, format_us_table
from .common import FigureData, paper_sizes, run_grid

__all__ = ["APPROACHES", "N_THREADS", "run", "report"]

APPROACHES = (
    "rma_single_passive",
    "rma_many_passive",
    "pt2pt_many",
    "pt2pt_single",
    "pt2pt_part",
)

N_THREADS = 32
MIN_BYTES = 1 << 10
MAX_BYTES = 16 << 20


def run(iterations: int = 30, quick: bool = False, jobs: int = 1,
        store=None, resume: bool = False,
        backend: str = "sim") -> FigureData:
    """Regenerate Fig. 5's data."""
    sizes = paper_sizes(MIN_BYTES, MAX_BYTES, n_parts=N_THREADS, quick=quick)
    base = BenchSpec(
        approach="pt2pt_single",
        total_bytes=sizes[0],
        n_threads=N_THREADS,
        theta=1,
        iterations=iterations,
    )
    data = run_grid("fig5", APPROACHES, sizes, base,
                    jobs=jobs, store=store, resume=resume, backend=backend)
    small, large = sizes[0], sizes[-1]
    sweep = data.sweep
    data.headline = {
        "part_penalty_small": sweep.ratio("pt2pt_part", "pt2pt_single", small),
        "many_penalty_small": sweep.ratio("pt2pt_many", "pt2pt_single", small),
        "part_penalty_large": sweep.ratio("pt2pt_part", "pt2pt_single", large),
        "rma_many_over_single_win": sweep.ratio(
            "rma_many_passive", "rma_single_passive", small
        ),
    }
    data.notes = [
        "paper: part/many ~x29.76 over single at the smallest size",
        "paper: RMA many-passive shifted above RMA single-passive",
    ]
    return data


def report(data: FigureData) -> str:
    """Printable reproduction of Fig. 5."""
    h = data.headline
    return "\n".join(
        [
            format_us_table(
                data.sweep,
                APPROACHES,
                title=(
                    "Figure 5 — thread congestion: time [us], 32 threads, "
                    "32 partitions, 1 VCI"
                ),
            ),
            "",
            f"part/single (small): x{h['part_penalty_small']:.2f}"
            "   [paper: ~29.76]",
            f"many/single (small): x{h['many_penalty_small']:.2f}"
            "   [paper: ~part]",
            f"part/single (large): x{h['part_penalty_large']:.2f}"
            "   [paper: ~1 (converged)]",
            f"RMA many/RMA single (small): x{h['rma_many_over_single_win']:.2f}"
            "   [paper: >1 (window-scan overhead)]",
        ]
    )
