"""Process-local campaign telemetry: metrics, spans, and a JSONL sink.

The campaign pipeline (planner → executor → kernel → store) is fast
because of claims that used to live in comments — "the single-thread
serialization is what holds the fast path under 1M points/s".  This
module turns those claims into artifacts: a dependency-free
:class:`MetricsRegistry` (counters, gauges, histograms with fixed
log-spaced bins) plus a :func:`span` context manager that records
wall-time regions with nesting, cheap enough to leave compiled into the
hot path permanently.

Design constraints, in order:

* **Disabled is the default and costs ≈ one global read.**  No
  registry is active unless something (the ``--metrics`` CLI flag, a
  test, a benchmark) activates one; every instrumentation point then
  short-circuits through a module-global ``None`` check and a shared
  no-op span singleton.  The campaign-bench CI gate holds the
  instrumented-but-disabled path to the PR-5 throughput floor.
* **No dependencies, no threads.**  Pure stdlib, process-local state.
  Worker processes run their *own* registry; their snapshots ride the
  existing chunk-result channel back to the parent and merge there
  (:meth:`MetricsRegistry.merge_snapshot`), so pooled campaigns
  aggregate without any extra IPC machinery.
* **Schema-versioned artifacts.**  :func:`write_metrics_jsonl` emits a
  JSON-lines snapshot — header with producer provenance, counters,
  gauges, histograms, per-name span totals, and the raw span tree —
  that ``campaign profile`` renders into a stage-attribution table.
  The same sink accepts streamed :class:`~repro.sim.trace.TraceRecord`
  rows (the ``--trace`` bridge), so simulator traces land in a file
  instead of dying in memory.
"""

from __future__ import annotations

import json
import math
import os
import platform
import threading
import time
from pathlib import Path
from typing import Any, Dict, IO, Iterator, List, Mapping, Optional, Tuple

__all__ = [
    "TELEMETRY_SCHEMA",
    "Histogram",
    "MetricsRegistry",
    "Stopwatch",
    "active_registry",
    "count",
    "environment_provenance",
    "gauge",
    "observe",
    "read_metrics_jsonl",
    "set_registry",
    "set_thread_registry",
    "set_trace_sink",
    "span",
    "stopwatch",
    "trace_sink",
    "using_registry",
    "write_metrics_jsonl",
]

#: Version tag of the metrics JSONL artifact (header ``schema`` field).
TELEMETRY_SCHEMA = "repro.telemetry/v1"

#: Histogram bin edges are ``2**e`` for e in [_HIST_EXP_LO, _HIST_EXP_HI]:
#: fixed log-spaced bins from ~1 µs to ~4096 (seconds, bytes — any
#: positive magnitude), with explicit underflow/overflow buckets
#: outside the range.  Fixed edges (not data-dependent) are what make
#: worker→parent bin merges a plain elementwise add.
_HIST_EXP_LO = -20
_HIST_EXP_HI = 12
HISTOGRAM_EDGES: Tuple[float, ...] = tuple(
    2.0 ** e for e in range(_HIST_EXP_LO, _HIST_EXP_HI + 1)
)

#: Raw spans kept per registry; per-name totals keep accumulating past
#: the cap, so attribution never loses time — only tree detail.
MAX_RAW_SPANS = 20_000


class Histogram:
    """Fixed log₂-spaced-bin histogram with count/sum/min/max.

    Bin ``i`` covers ``[2**(LO+i-1), 2**(LO+i))`` for ``i >= 1``;
    bin 0 is the underflow bucket (values below ``2**LO``, including
    zero and negatives) and the last bin is the overflow bucket.
    """

    __slots__ = ("bins", "count", "total", "min", "max")

    #: Number of buckets: underflow + one per edge gap + overflow.
    N_BINS = len(HISTOGRAM_EDGES) + 1

    def __init__(self) -> None:
        self.bins = [0] * self.N_BINS
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    @staticmethod
    def bin_index(value: float) -> int:
        """Bucket index for ``value`` (floor-log₂, clamped).

        ``math.frexp`` gives the exact binary exponent — no float-log
        rounding at the edges: ``v = m * 2**e`` with ``m in [0.5, 1)``,
        so ``floor(log2(v)) == e - 1`` exactly.
        """
        if value < HISTOGRAM_EDGES[0]:
            return 0
        if value >= HISTOGRAM_EDGES[-1]:
            return Histogram.N_BINS - 1
        return math.frexp(value)[1] - 1 - _HIST_EXP_LO + 1

    def observe(self, value: float) -> None:
        value = float(value)
        self.bins[self.bin_index(value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, snap: Mapping[str, Any]) -> None:
        """Fold a snapshot dict of another histogram into this one."""
        for i, n in enumerate(snap["bins"]):
            self.bins[i] += int(n)
        self.count += int(snap["count"])
        self.total += float(snap["sum"])
        self.min = min(self.min, float(snap["min"]))
        self.max = max(self.max, float(snap["max"]))

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "bins": list(self.bins),
        }


class _NullSpan:
    """The shared disabled-path span: enter/exit do nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """One live wall-time region.  Exception-safe: ``__exit__`` always
    records the duration and never swallows the exception."""

    __slots__ = ("registry", "name", "tags", "span_id", "parent", "depth", "t0")

    def __init__(self, registry: "MetricsRegistry", name: str, tags: dict):
        self.registry = registry
        self.name = name
        self.tags = tags

    def __enter__(self) -> "_Span":
        reg = self.registry
        stack = reg._stack
        self.parent = stack[-1] if stack else None
        self.depth = len(stack)
        reg._next_span_id += 1
        self.span_id = reg._next_span_id
        stack.append(self.span_id)
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> bool:
        duration = time.perf_counter() - self.t0
        reg = self.registry
        if reg._stack and reg._stack[-1] == self.span_id:
            reg._stack.pop()
        total = reg.span_totals.setdefault(self.name, [0, 0.0])
        total[0] += 1
        total[1] += duration
        if len(reg.spans) < MAX_RAW_SPANS:
            record = {
                "id": self.span_id,
                "parent": self.parent,
                "name": self.name,
                "depth": self.depth,
                "t0": self.t0 - reg._epoch,
                "dur": duration,
            }
            if self.tags:
                record["tags"] = self.tags
            reg.spans.append(record)
        return False


def _key(name: str, tags: dict) -> str:
    """Flatten ``name`` + tags into one metric key (Prometheus-style)."""
    if not tags:
        return name
    inner = ",".join(f"{k}={tags[k]}" for k in sorted(tags))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Process-local counters, gauges, histograms, and finished spans.

    A disabled registry (``enabled=False``) accepts every call as a
    no-op, so instrumented code never branches on configuration.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        #: name -> [count, total_seconds]
        self.span_totals: Dict[str, List[float]] = {}
        self.spans: List[dict] = []
        self._stack: List[int] = []
        self._next_span_id = 0
        self._epoch = time.perf_counter()

    # -- recording -----------------------------------------------------------
    def count(self, name: str, value: float = 1, **tags: Any) -> None:
        if not self.enabled:
            return
        key = _key(name, tags)
        self.counters[key] = self.counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **tags: Any) -> None:
        if not self.enabled:
            return
        self.gauges[_key(name, tags)] = value

    def observe(self, name: str, value: float, **tags: Any) -> None:
        if not self.enabled:
            return
        key = _key(name, tags)
        hist = self.histograms.get(key)
        if hist is None:
            hist = self.histograms[key] = Histogram()
        hist.observe(value)

    def span(self, name: str, **tags: Any):
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, tags)

    # -- aggregation ---------------------------------------------------------
    def snapshot(self, spans: bool = True) -> dict:
        """The registry's state as a JSON-safe dict (the worker→parent
        wire form and the sink's source of truth)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: hist.to_dict()
                for name, hist in self.histograms.items()
            },
            "span_totals": {
                name: {"count": int(c), "total_s": t}
                for name, (c, t) in self.span_totals.items()
            },
            "spans": list(self.spans) if spans else [],
        }

    def snapshot_and_reset(self) -> dict:
        """Snapshot, then zero — each pooled chunk ships only its own
        delta back to the parent."""
        snap = self.snapshot(spans=False)
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.span_totals.clear()
        self.spans.clear()
        return snap

    def merge_snapshot(self, snap: Optional[Mapping[str, Any]]) -> None:
        """Fold a worker snapshot into this registry: counters, bins,
        and span totals add; gauges last-write-wins.  Raw worker spans
        are *not* grafted into the parent tree (their clocks are not
        comparable) — their time is preserved via ``span_totals``."""
        if not self.enabled or not snap:
            return
        for name, value in snap.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + value
        self.gauges.update(snap.get("gauges", {}))
        for name, hist_snap in snap.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            if hist_snap["count"]:
                hist.merge(hist_snap)
        for name, total in snap.get("span_totals", {}).items():
            mine = self.span_totals.setdefault(name, [0, 0.0])
            mine[0] += total["count"]
            mine[1] += total["total_s"]


# ---------------------------------------------------------------------------
# module-level switchboard (the hot-path entry points)
# ---------------------------------------------------------------------------

_ACTIVE: Optional[MetricsRegistry] = None
_TRACE_SINK: Optional[Any] = None

#: Per-thread registry override.  A :class:`MetricsRegistry` is not
#: thread-safe (the span stack is one plain list), so a helper thread
#: recording into the process-global registry would corrupt span
#: nesting.  Instead a thread installs its *own* registry here
#: (:func:`set_thread_registry`), records locally, and its owner merges
#: the snapshot into the parent registry when the thread finishes —
#: the same delta-merge protocol pool workers already use.
_THREAD_LOCAL = threading.local()


def active_registry() -> Optional[MetricsRegistry]:
    """The registry instrumentation currently records into (or None):
    the calling thread's override if one is installed, else the
    process-global registry."""
    reg = getattr(_THREAD_LOCAL, "registry", None)
    return reg if reg is not None else _ACTIVE


def set_registry(registry: Optional[MetricsRegistry]):
    """Install ``registry`` as the active one; returns the previous."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


def set_thread_registry(registry: Optional[MetricsRegistry]):
    """Install ``registry`` as *this thread's* override; returns the
    previous override.  ``None`` removes the override (falling back to
    the process-global registry)."""
    previous = getattr(_THREAD_LOCAL, "registry", None)
    _THREAD_LOCAL.registry = registry
    return previous


class using_registry:
    """``with using_registry(reg):`` — scoped activation (tests)."""

    def __init__(self, registry: Optional[MetricsRegistry]):
        self.registry = registry

    def __enter__(self) -> Optional[MetricsRegistry]:
        self._previous = set_registry(self.registry)
        return self.registry

    def __exit__(self, *exc: Any) -> bool:
        set_registry(self._previous)
        return False


def span(name: str, **tags: Any):
    """A wall-time region under the active registry.

    The disabled path — no active registry — is one thread-local
    getattr, one module-global read, and a shared no-op singleton,
    cheap enough for the campaign hot loop (gated in CI against the
    campaign-bench throughput floor).
    """
    reg = getattr(_THREAD_LOCAL, "registry", None)
    if reg is None:
        reg = _ACTIVE
        if reg is None:
            return _NULL_SPAN
    return reg.span(name, **tags)


def count(name: str, value: float = 1, **tags: Any) -> None:
    reg = active_registry()
    if reg is not None:
        reg.count(name, value, **tags)


def gauge(name: str, value: float, **tags: Any) -> None:
    reg = active_registry()
    if reg is not None:
        reg.gauge(name, value, **tags)


def observe(name: str, value: float, **tags: Any) -> None:
    reg = active_registry()
    if reg is not None:
        reg.observe(name, value, **tags)


def set_trace_sink(sink: Optional[Any]):
    """Install a callable receiving simulator
    :class:`~repro.sim.trace.TraceRecord` objects (the ``--trace``
    bridge target); returns the previous sink.  ``None`` disables."""
    global _TRACE_SINK
    previous = _TRACE_SINK
    _TRACE_SINK = sink
    return previous


def trace_sink() -> Optional[Any]:
    """The active trace sink callable, or None."""
    return _TRACE_SINK


# ---------------------------------------------------------------------------
# timing helper (the campaign-bench t0/wall idiom, consolidated)
# ---------------------------------------------------------------------------

class Stopwatch:
    """``with stopwatch() as sw: ... ; sw.wall`` — one wall-clock region.

    Replaces the hand-rolled ``t0 = time.perf_counter() / wall = ...``
    pairs; ``sw.wall`` reads live inside the block and freezes on exit.
    """

    __slots__ = ("t0", "_wall")

    def __enter__(self) -> "Stopwatch":
        self._wall = None
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> bool:
        self._wall = time.perf_counter() - self.t0
        return False

    @property
    def wall(self) -> float:
        if self._wall is not None:
            return self._wall
        return time.perf_counter() - self.t0


def stopwatch() -> Stopwatch:
    """A fresh :class:`Stopwatch` (context manager)."""
    return Stopwatch()


def environment_provenance() -> dict:
    """Uniform environment stamp for benchmark payloads and metrics
    headers: interpreter, platform, and CPU count."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }


# ---------------------------------------------------------------------------
# the JSONL sink
# ---------------------------------------------------------------------------

def _dump(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class MetricsSink:
    """An open metrics JSONL file: header first, then streamed trace
    records (if any), then the final metrics snapshot.

    Streaming matters for the ``--trace`` bridge — a simulator trace
    can be millions of records, so each one goes straight to disk
    instead of accumulating in a ``Tracer``'s list.
    """

    def __init__(self, path: str | Path, producer: Optional[dict] = None):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: IO[str] = self.path.open("w")
        self.n_trace_records = 0
        header = {
            "type": "header",
            "schema": TELEMETRY_SCHEMA,
            "producer": dict(producer or {}),
            "env": environment_provenance(),
        }
        self._handle.write(_dump(header) + "\n")

    def write_trace(self, record: Any) -> None:
        """Stream one simulator TraceRecord (duck-typed: ``time``,
        ``category``, ``event``, ``fields``)."""
        self.n_trace_records += 1
        self._handle.write(
            _dump(
                {
                    "type": "trace",
                    "t": record.time,
                    "category": record.category,
                    "event": record.event,
                    "fields": dict(record.fields),
                }
            )
            + "\n"
        )

    def write_snapshot(self, snap: Mapping[str, Any]) -> None:
        """Append a registry snapshot as typed metric records."""
        write = self._handle.write
        for name, value in sorted(snap.get("counters", {}).items()):
            write(_dump({"type": "counter", "name": name, "value": value}) + "\n")
        for name, value in sorted(snap.get("gauges", {}).items()):
            write(_dump({"type": "gauge", "name": name, "value": value}) + "\n")
        for name, hist in sorted(snap.get("histograms", {}).items()):
            write(_dump({"type": "histogram", "name": name, **hist}) + "\n")
        for name, total in sorted(snap.get("span_totals", {}).items()):
            write(_dump({"type": "span_total", "name": name, **total}) + "\n")
        for record in snap.get("spans", []):
            write(_dump({"type": "span", **record}) + "\n")

    def close(self, summary: Optional[dict] = None) -> None:
        if self._handle.closed:
            return
        if summary is not None:
            self._handle.write(
                _dump({"type": "summary", **summary}) + "\n"
            )
        self._handle.close()

    def __enter__(self) -> "MetricsSink":
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.close()
        return False


def write_metrics_jsonl(
    path: str | Path,
    registry: MetricsRegistry,
    producer: Optional[dict] = None,
    summary: Optional[dict] = None,
) -> Path:
    """One-shot dump of ``registry`` to a metrics JSONL file."""
    with MetricsSink(path, producer=producer) as sink:
        sink.write_snapshot(registry.snapshot())
        sink.close(summary=summary)
    return Path(path)


def read_metrics_jsonl(path: str | Path) -> dict:
    """Parse a metrics JSONL file back into one dict:
    ``{header, counters, gauges, histograms, span_totals, spans,
    traces, summary}``.  Unknown record types are ignored (forward
    compatibility)."""
    out: dict = {
        "header": None,
        "counters": {},
        "gauges": {},
        "histograms": {},
        "span_totals": {},
        "spans": [],
        "traces": [],
        "summary": None,
    }
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            rtype = record.get("type")
            if rtype == "header":
                out["header"] = record
            elif rtype == "counter":
                out["counters"][record["name"]] = record["value"]
            elif rtype == "gauge":
                out["gauges"][record["name"]] = record["value"]
            elif rtype == "histogram":
                out["histograms"][record["name"]] = {
                    k: v for k, v in record.items()
                    if k not in ("type", "name")
                }
            elif rtype == "span_total":
                out["span_totals"][record["name"]] = {
                    "count": record["count"],
                    "total_s": record["total_s"],
                }
            elif rtype == "span":
                out["spans"].append(
                    {k: v for k, v in record.items() if k != "type"}
                )
            elif rtype == "trace":
                out["traces"].append(
                    {k: v for k, v in record.items() if k != "type"}
                )
            elif rtype == "summary":
                out["summary"] = {
                    k: v for k, v in record.items() if k != "type"
                }
    if out["header"] is None:
        raise ValueError(f"{path}: not a metrics JSONL file (no header)")
    return out


def iter_span_tree(spans: List[dict]) -> Iterator[Tuple[int, dict]]:
    """Yield ``(depth, span)`` in tree order (pre-order by start time)."""
    children: Dict[Optional[int], List[dict]] = {}
    for record in spans:
        children.setdefault(record.get("parent"), []).append(record)
    for siblings in children.values():
        siblings.sort(key=lambda r: r["t0"])

    def walk(parent: Optional[int], depth: int) -> Iterator[Tuple[int, dict]]:
        for record in children.get(parent, []):
            yield depth, record
            yield from walk(record["id"], depth + 1)

    yield from walk(None, 0)
