"""The legacy AM-based partitioned implementation (§3.1) — "Pt2Pt part - old".

This is the pre-improvement MPICH path the paper benchmarks as the
baseline in Fig. 4: the whole buffer travels as **one active message**,
with a counter of ``N_partitions + 1`` — the "+1" accounts for the
mandatory per-iteration clear-to-send from the receiver, which prevents
the sender from overrunning a receiver still in the previous iteration.

Costs that make it slow (and that the improved path removes):

* every iteration blocks on a CTS round trip before data can move;
* the data crosses bounce buffers on **both** sides (AM copies) plus an
  AM dispatch on delivery, so large messages run at the memcpy rate,
  not the wire rate;
* no early-bird effect: nothing is sent until *all* partitions are ready.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..net import Packet, PacketKind
from ..sim import CountdownLatch
from .communicator import Comm
from .contention import ContendedAtomic
from .errors import PartitionError, RequestStateError
from .partitioned import PartitionedRecvRequest, _part_registry
from .request import PersistentRequest
from .status import Status

__all__ = ["AmPartitionedSendRequest", "AmPartitionedRecvRequest"]

#: The receive side is shared with the improved path: it discovers the
#: sender's code path from the RTS and switches to AM mode (§3.2.1's
#: fallback makes the paths interchangeable from the receiver's view).
AmPartitionedRecvRequest = PartitionedRecvRequest


class AmPartitionedSendRequest(PersistentRequest):
    """``MPI_Psend_init`` on the legacy single-active-message path."""

    def __init__(
        self,
        comm: Comm,
        dest: int,
        tag: int,
        partitions: int,
        nbytes: int,
        data: Optional[np.ndarray] = None,
    ):
        rt = comm.rt
        super().__init__(rt.env)
        if partitions < 1:
            raise PartitionError("partitions must be >= 1")
        if nbytes % partitions != 0:
            raise PartitionError(
                f"buffer of {nbytes} B not divisible into {partitions} partitions"
            )
        self.rt = rt
        self.comm = comm
        self.dest = comm.world_rank(dest)
        self.tag = tag
        self.partitions = partitions
        self.nbytes = nbytes
        self.data = data
        _part_registry(rt)  # install handlers
        self._latch: Optional[CountdownLatch] = None
        #: CTS packets that arrived while no iteration was active.
        self._banked_cts = 0
        # Single shared counter: every Pready serializes on its cache line.
        self._atomic = ContendedAtomic(
            rt.env, rt.params, name=f"psend_am{self.rid}.counter",
            bounce=rt.params.pready_atomic_bounce,
        )
        rt._part_send_registry[self.rid] = self

    # ------------------------------------------------------------------
    def init(self):
        """Generator: ``MPI_Psend_init`` sends the AM ready-to-send with
        the basic buffer/partition information (§3.1)."""
        yield from self.rt.post_ctrl(
            self.dest,
            "part_am_rts",
            vci=self.comm.vci,
            kind=PacketKind.AM,
            ctx=self.comm.context_id,
            tag=self.tag,
            sreq=self.rid,
            n_send=self.partitions,
            nbytes=self.nbytes,
            am=True,
        )

    def _absorb_cts(self, pkt: Packet) -> None:
        """Per-iteration CTS from the receiver (counter's "+1", §3.1)."""
        if self._latch is None or self._latch.count == 0:
            self._banked_cts += 1
            return
        if self._latch.count_down():
            self.rt.spawn(self._send_data())

    def _start(self):
        # Counter = number of partitions + 1 for the mandatory CTS.
        self._latch = CountdownLatch(self.env, self.partitions + 1)
        if self._banked_cts > 0:
            self._banked_cts -= 1
            self._latch.count_down()
        return
        yield  # pragma: no cover

    # ------------------------------------------------------------------
    def pready(self, partition: int, thread_id: Optional[int] = None):
        """Generator: decrement the request's single shared counter.

        Every partition of every thread hammers the *same* atomic, and
        the caller that reaches zero pays the full buffer's AM injection
        (bounce-buffer copy included) inline.
        """
        if not self.active:
            raise RequestStateError("Pready before MPI_Start")
        if not 0 <= partition < self.partitions:
            raise PartitionError(
                f"partition {partition} out of range [0, {self.partitions})"
            )
        yield from self._atomic.update(
            extra_cost=self.rt.params.pready_overhead
        )
        if self._latch.count_down():
            yield from self._send_data()

    def _send_data(self):
        """Generator: inject the whole buffer as one active message."""
        payload = None
        if self.rt.cvars.verify_payloads and self.data is not None:
            payload = np.array(self.data, dtype=np.uint8, copy=True).ravel()
        yield from self.rt.post_ctrl(
            self.dest,
            "part_am_data",
            vci=self.comm.vci,
            kind=PacketKind.AM,
            nbytes=self.nbytes,
            payload=payload,
            ctx=self.comm.context_id,
            tag=self.tag,
            sreq=self.rid,
        )
        self.complete(Status(self.rt.rank, self.tag, self.nbytes))

    def _finish_wait(self):
        yield self.env.timeout(self.rt.params.part_completion_overhead)
