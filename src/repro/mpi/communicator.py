"""Communicators: isolated matching contexts mapped onto VCIs.

``Comm_dup`` is the MPI-3.1 contention-avoidance tool the paper's
``Pt2Pt many`` approach uses: each thread duplicates the communicator,
each duplicate gets a fresh context id, and with ``MPIR_CVAR_NUM_VCIS``
> 1 different context ids land on different VCIs, removing the shared
command-queue lock (Zambre et al. [14], §4.2.1).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .errors import MPIError
from .p2p import (
    PersistentRecvRequest,
    PersistentSendRequest,
    RecvRequest,
    SendRequest,
)
from .runtime import BARRIER_TAG, TAG_UB, RankRuntime
from .status import ANY_SOURCE, ANY_TAG, Status
from .vci import vci_for_comm

__all__ = ["Comm"]

#: Cost of the local bookkeeping in ``MPI_Comm_dup`` (context allocation,
#: hash insertion).  The collective agreement itself is resolved through
#: the world-level context table, so no wire traffic is simulated; dup is
#: called in the untimed init phase of every benchmark.
_DUP_LOCAL_COST = 1.0e-6


class Comm:
    """A communicator handle bound to one rank."""

    def __init__(self, rt: RankRuntime, context_id: int, group: Tuple[int, ...]):
        self.rt = rt
        self.context_id = context_id
        self.group = tuple(group)
        if rt.rank not in self.group:
            raise MPIError(f"rank {rt.rank} not in group {self.group}")
        #: The VCI this communicator's traffic uses.
        self.vci = vci_for_comm(rt.cvars, context_id)
        self._dup_seq = 0

    # -- group accessors ---------------------------------------------------------
    @property
    def rank(self) -> int:
        """This process's rank within the communicator."""
        return self.group.index(self.rt.rank)

    @property
    def size(self) -> int:
        return len(self.group)

    def world_rank(self, comm_rank: int) -> int:
        """Translate a communicator rank to a world rank."""
        return self.group[comm_rank]

    # -- point-to-point -------------------------------------------------------------
    def _check_tag(self, tag: int, allow_any: bool = False) -> None:
        if allow_any and tag == ANY_TAG:
            return
        if not (0 <= tag < TAG_UB):
            raise MPIError(f"tag {tag} out of range [0, {TAG_UB})")

    def isend(
        self,
        dest: int,
        tag: int,
        nbytes: int,
        data: Optional[np.ndarray] = None,
    ):
        """Generator: start a nonblocking send; returns the request."""
        self._check_tag(tag)
        req = SendRequest(
            self.rt,
            self.context_id,
            self.world_rank(dest),
            tag,
            nbytes,
            self.vci,
            data,
        )
        yield from req.start()
        return req

    def irecv(
        self,
        source: int,
        tag: int,
        nbytes: int,
        buffer: Optional[np.ndarray] = None,
    ):
        """Generator: post a nonblocking receive; returns the request."""
        self._check_tag(tag, allow_any=True)
        src = source if source == ANY_SOURCE else self.world_rank(source)
        req = RecvRequest(
            self.rt, self.context_id, src, tag, nbytes, self.vci, buffer
        )
        yield from req.start()
        return req

    def send(self, dest: int, tag: int, nbytes: int, data=None):
        """Generator: blocking send."""
        req = yield from self.isend(dest, tag, nbytes, data)
        result = yield from req.wait()
        return result

    def recv(self, source: int, tag: int, nbytes: int, buffer=None) -> Status:
        """Generator: blocking receive; returns the :class:`Status`."""
        req = yield from self.irecv(source, tag, nbytes, buffer)
        status = yield from req.wait()
        return status

    # -- persistent ---------------------------------------------------------------------
    def send_init(
        self, dest: int, tag: int, nbytes: int, data=None
    ) -> PersistentSendRequest:
        """``MPI_Send_init`` (no wire traffic; free to create)."""
        self._check_tag(tag)
        return PersistentSendRequest(
            self.rt,
            self.context_id,
            self.world_rank(dest),
            tag,
            nbytes,
            self.vci,
            data,
        )

    def recv_init(
        self, source: int, tag: int, nbytes: int, buffer=None
    ) -> PersistentRecvRequest:
        """``MPI_Recv_init``."""
        self._check_tag(tag, allow_any=True)
        src = source if source == ANY_SOURCE else self.world_rank(source)
        return PersistentRecvRequest(
            self.rt, self.context_id, src, tag, nbytes, self.vci, buffer
        )

    # -- partitioned (MPI 4.0) -------------------------------------------------------------
    def psend_init(self, dest: int, tag: int, partitions: int, nbytes: int,
                   data=None):
        """Generator: ``MPI_Psend_init``.

        Returns an improved-path request unless the runtime is configured
        for the legacy AM path (``Cvars.part_force_am``) or the internal
        tag space toward ``dest`` is exhausted — both fall back to the
        single-active-message implementation (§3.2.1).
        """
        from .partitioned import PartitionedSendRequest
        from .partitioned_am import AmPartitionedSendRequest

        self._check_tag(tag)
        if self.rt.cvars.part_force_am:
            req = AmPartitionedSendRequest(
                self, dest, tag, partitions, nbytes, data
            )
        else:
            req = PartitionedSendRequest(
                self, dest, tag, partitions, nbytes, data
            )
            if req.fell_back_to_am:
                del self.rt._part_send_registry[req.rid]
                req = AmPartitionedSendRequest(
                    self, dest, tag, partitions, nbytes, data
                )
        yield from req.init()
        return req

    def precv_init(self, source: int, tag: int, partitions: int, nbytes: int,
                   buffer=None):
        """Generator: ``MPI_Precv_init``.

        The receive side serves both code paths; it learns the sender's
        path (tag-matched or AM) from the RTS.
        """
        from .partitioned import PartitionedRecvRequest

        self._check_tag(tag)
        req = PartitionedRecvRequest(
            self, source, tag, partitions, nbytes, buffer
        )
        yield from req.init()
        return req

    # -- collectives ----------------------------------------------------------------------
    def dup(self, key: Optional[int] = None):
        """Generator: duplicate the communicator (``MPI_Comm_dup``).

        Context ids are agreed through the world's deterministic context
        table; with no ``key`` the ranks must perform dup calls in the
        same order (the MPI requirement for collectives).  When threads
        of different ranks dup concurrently, pass a stable ``key``
        (e.g. the thread id) so interleaving differences cannot pair
        mismatched contexts.
        """
        if key is None:
            key = self._dup_seq
            self._dup_seq += 1
        ctx = self.rt.world.alloc_context(self.context_id, key)
        yield self.rt.env.timeout(_DUP_LOCAL_COST)
        return Comm(self.rt, ctx, self.group)

    def barrier(self):
        """Generator: dissemination barrier over the communicator.

        ``ceil(log2(P))`` rounds of 0-byte token exchanges on this
        communicator's VCI; for the paper's two-rank benchmark this is a
        single token swap (one round trip of half-duplex latency each
        way, overlapped).
        """
        size = self.size
        if size == 1:
            return
        me = self.rank
        distance = 1
        while distance < size:
            peer_to = self.world_rank((me + distance) % size)
            peer_from = self.world_rank((me - distance) % size)
            rreq = RecvRequest(
                self.rt, self.context_id, peer_from, BARRIER_TAG, 0, self.vci
            )
            yield from rreq.start()
            sreq = SendRequest(
                self.rt, self.context_id, peer_to, BARRIER_TAG, 0, self.vci
            )
            yield from sreq.start()
            yield from rreq.wait()
            yield from sreq.wait()
            distance *= 2

    def __repr__(self) -> str:  # pragma: no cover - debug repr
        return (
            f"<Comm ctx={self.context_id} rank={self.rank}/{self.size} "
            f"vci={self.vci}>"
        )
