"""Minimal MPI datatype system.

The benchmark study only needs contiguous byte counts, but the paper's
discussion of the sender-decides protocol (§3.2.1) hinges on
*noncontiguous datatypes* making partial-datatype reception hard, so we
model enough of the datatype system to express that: contiguous base
types and strided vectors, with packed size vs extent.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Datatype", "BYTE", "INT32", "INT64", "FLOAT32", "FLOAT64", "vector"]


@dataclass(frozen=True)
class Datatype:
    """A datatype with a packed size and a memory extent.

    ``size`` is the number of bytes actually transferred per element;
    ``extent`` is the span the element occupies in memory.  For
    contiguous types these are equal; for vectors the extent includes
    stride gaps.
    """

    name: str
    size: int
    extent: int

    def __post_init__(self) -> None:
        if self.size < 0 or self.extent < self.size:
            raise ValueError("need 0 <= size <= extent")

    @property
    def contiguous(self) -> bool:
        """True when packing is a plain memcpy."""
        return self.size == self.extent

    def packed_bytes(self, count: int) -> int:
        """Bytes on the wire for ``count`` elements."""
        return self.size * count

    def span_bytes(self, count: int) -> int:
        """Bytes of memory spanned by ``count`` elements."""
        if count == 0:
            return 0
        return self.extent * (count - 1) + self.size


BYTE = Datatype("byte", 1, 1)
INT32 = Datatype("int32", 4, 4)
INT64 = Datatype("int64", 8, 8)
FLOAT32 = Datatype("float32", 4, 4)
FLOAT64 = Datatype("float64", 8, 8)


def vector(base: Datatype, blocklength: int, stride: int, count: int) -> Datatype:
    """Strided vector type: ``count`` blocks of ``blocklength`` elements
    separated by ``stride`` elements (in units of ``base``).

    Mirrors ``MPI_Type_vector``: the resulting type is noncontiguous
    whenever ``stride > blocklength`` and ``count > 1``.
    """
    if blocklength < 1 or count < 1:
        raise ValueError("blocklength and count must be >= 1")
    if stride < blocklength:
        raise ValueError("stride must be >= blocklength")
    size = base.size * blocklength * count
    extent = base.extent * (stride * (count - 1) + blocklength)
    return Datatype(
        f"vector({base.name},{blocklength},{stride},{count})", size, extent
    )
