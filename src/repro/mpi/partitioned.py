"""MPI 4.0 partitioned communication — the *improved* MPICH path (§3.2).

This module implements the paper's contribution: partitioned requests
carried over multiple internal **tag-matched** messages instead of the
legacy single active-message transfer (see :mod:`.partitioned_am` for
the old path it replaces).

Protocol (§3.2.1–3.2.2)
-----------------------
* ``Psend_init`` reserves internal tag space toward the destination; if
  the reserved space per peer is exhausted, the request silently falls
  back to the AM path.  An RTS carrying the sender's partition count and
  tag base is sent at init time.
* The **receiver decides** the message count once it has both the RTS
  and its own ``Precv_init``:  ``gcd(N_send, N_recv)`` messages, then
  aggregated under ``MPIR_CVAR_PART_AGGR_SIZE`` so that every partition
  contributes to exactly one message.  The count travels back in a CTS;
  the sender must hold ready messages until the CTS arrives — **first
  iteration only**.
* Each outgoing message owns an atomic counter initialized to the number
  of contributing partitions; ``MPI_Pready`` decrements it and the
  decrementing thread that reaches zero posts the message (paying the
  send cost in its own timeline — the early-bird effect).
* Message *m* maps onto a VCI by the configured policy (round-robin by
  default, ``MPIX_Stream``-style thread binding optionally).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..net import Packet
from ..sim import CountdownLatch, Event
from .communicator import Comm
from .contention import ContendedAtomic
from .errors import PartitionError, RequestStateError
from .p2p import RecvRequest, SendRequest
from .request import PersistentRequest
from .status import Status
from .vci import vci_for_partition_message

__all__ = [
    "negotiate_message_count",
    "PartitionedSendRequest",
    "PartitionedRecvRequest",
]


def negotiate_message_count(
    n_send: int, n_recv: int, total_bytes: int, aggr_size: int
) -> int:
    """The receiver-side message-count decision of §3.2.1.

    ``gcd(N_send, N_recv)`` guarantees every partition contributes to a
    single message; aggregation then merges whole messages while the
    aggregate stays within ``aggr_size`` bytes (0 disables aggregation).
    The result always divides the gcd, keeping messages uniform.
    """
    if n_send < 1 or n_recv < 1:
        raise PartitionError("partition counts must be >= 1")
    g = math.gcd(n_send, n_recv)
    if aggr_size <= 0:
        return g
    msg_bytes = total_bytes // g
    if msg_bytes > aggr_size or msg_bytes == 0:
        return g
    # Largest k dividing g with k * msg_bytes <= aggr_size.
    k_max = min(g, aggr_size // msg_bytes) if msg_bytes else g
    best = 1
    for k in range(1, k_max + 1):
        if g % k == 0:
            best = k
    return g // best


def _part_registry(rt) -> Dict[Tuple[int, int, int], Any]:
    """Receiver-side registry of partitioned receives by (ctx, src, tag).

    First use installs every partitioned-protocol handler on the rank:
    the improved path's RTS/CTS, and the legacy AM path's RTS/CTS/data
    (shared, since a receiver discovers the sender's path from the RTS).
    """
    if not hasattr(rt, "_part_recv_registry"):
        rt._part_recv_registry = {}
        rt._part_pending_rts = {}
        rt._part_send_registry = {}
        rt.register_ctrl_handler("part_rts", lambda pkt: _on_part_rts(rt, pkt))
        rt.register_ctrl_handler("part_cts", lambda pkt: _on_part_cts(rt, pkt))
        rt.register_ctrl_handler(
            "part_am_cts", lambda pkt: _on_part_cts(rt, pkt)
        )
        rt.register_am_handler(
            "part_am_rts", lambda pkt: _on_part_rts(rt, pkt)
        )
        rt.register_am_handler(
            "part_am_data", lambda pkt: _on_part_am_data(rt, pkt)
        )
    return rt._part_recv_registry


def _on_part_rts(rt, pkt: Packet) -> None:
    key = (pkt.header["ctx"], pkt.src, pkt.header["tag"])
    rreq = _part_registry(rt).get(key)
    if rreq is None:
        rt._part_pending_rts[key] = pkt
    else:
        rreq._absorb_rts(pkt)


def _on_part_cts(rt, pkt: Packet) -> None:
    sreq = rt._part_send_registry[pkt.header["sreq"]]
    sreq._absorb_cts(pkt)


def _on_part_am_data(rt, pkt: Packet) -> None:
    key = (pkt.header["ctx"], pkt.src, pkt.header["tag"])
    rreq = _part_registry(rt)[key]
    rreq.am_data_arrived(pkt)


class PartitionedSendRequest(PersistentRequest):
    """``MPI_Psend_init`` on the improved tag-matched path."""

    def __init__(
        self,
        comm: Comm,
        dest: int,
        tag: int,
        partitions: int,
        nbytes: int,
        data: Optional[np.ndarray] = None,
    ):
        rt = comm.rt
        super().__init__(rt.env)
        if partitions < 1:
            raise PartitionError("partitions must be >= 1")
        if nbytes % partitions != 0:
            raise PartitionError(
                f"buffer of {nbytes} B not divisible into {partitions} partitions"
            )
        self.rt = rt
        self.comm = comm
        self.dest = comm.world_rank(dest)
        self.tag = tag
        self.partitions = partitions
        self.nbytes = nbytes
        self.data = data
        self.part_bytes = nbytes // partitions
        _part_registry(rt)  # ensure handlers exist
        self.tag_base: Optional[int] = rt.alloc_part_tags(self.dest, partitions)
        #: Filled by the CTS (receiver decides, §3.2.1) — unless the
        #: first-iteration synchronization removal (the paper's §5
        #: future-work item) is enabled, in which case both sides
        #: pre-agree assuming symmetric partition counts.
        self.n_msgs: Optional[int] = None
        if rt.cvars.part_skip_first_cts and self.tag_base is not None:
            self.n_msgs = negotiate_message_count(
                partitions, partitions, nbytes, rt.cvars.part_aggr_size
            )
        self._cts_event: Event = rt.env.event()
        self._latches: List[CountdownLatch] = []
        self._msg_reqs: List[Optional[SendRequest]] = []
        self._early_ready: List[Tuple[int, Optional[int]]] = []
        self._completed_msgs = 0
        # The request's counters share cache lines; concurrent Pready
        # calls serialize on their ownership (§4.2.2's atomic cost).
        self._atomic = ContendedAtomic(
            rt.env, rt.params, name=f"psend{self.rid}.counters",
            bounce=rt.params.pready_atomic_bounce,
        )
        rt._part_send_registry[self.rid] = self

    @property
    def fell_back_to_am(self) -> bool:
        """True when tag space was exhausted (AM fallback, §3.2.1)."""
        return self.tag_base is None

    # ------------------------------------------------------------------
    def init(self):
        """Generator: the wire work of ``MPI_Psend_init`` (send the RTS)."""
        yield from self.rt.post_ctrl(
            self.dest,
            "part_rts",
            vci=self.comm.vci,
            ctx=self.comm.context_id,
            tag=self.tag,
            sreq=self.rid,
            n_send=self.partitions,
            nbytes=self.nbytes,
            tag_base=self.tag_base,
        )

    def _absorb_cts(self, pkt: Packet) -> None:
        self.n_msgs = pkt.header["n_msgs"]
        self._cts_event.succeed()
        if self.active:
            self._setup_iteration()
            early, self._early_ready = self._early_ready, []
            for partition, thread_id in early:
                became_zero = self._count_down(partition)
                if became_zero:
                    m = self._msg_of(partition)
                    self.rt.spawn(self._post_message(m, thread_id))

    # ------------------------------------------------------------------
    def _setup_iteration(self) -> None:
        per_msg = self.partitions // self.n_msgs
        self._latches = [
            CountdownLatch(self.env, per_msg) for _ in range(self.n_msgs)
        ]
        self._msg_reqs = [None] * self.n_msgs
        self._completed_msgs = 0

    def _msg_of(self, partition: int) -> int:
        return partition * self.n_msgs // self.partitions

    def _count_down(self, partition: int) -> bool:
        return self._latches[self._msg_of(partition)].count_down()

    def _start(self):
        if self.n_msgs is not None:
            self._setup_iteration()
        # First iteration: message layout unknown until the CTS; Pready
        # calls buffer their readiness in _early_ready.
        return
        yield  # pragma: no cover

    # ------------------------------------------------------------------
    def pready(self, partition: int, thread_id: Optional[int] = None):
        """Generator: mark ``partition`` ready (``MPI_Pready``).

        Pays the partition bookkeeping plus one shared-counter atomic
        whose cost grows with the number of threads concurrently inside
        ``Pready`` on this request (cache-line bouncing, §4.2.2).  The
        thread whose decrement empties a message counter posts that
        message inline.
        """
        if not self.active:
            raise RequestStateError("Pready before MPI_Start")
        if not 0 <= partition < self.partitions:
            raise PartitionError(
                f"partition {partition} out of range [0, {self.partitions})"
            )
        yield from self._atomic.update(
            extra_cost=self.rt.params.pready_overhead
        )
        if self.n_msgs is None:
            self._early_ready.append((partition, thread_id))
            return
        if self._count_down(partition):
            yield from self._post_message(self._msg_of(partition), thread_id)

    def _post_message(self, m: int, thread_id: Optional[int]):
        """Generator: inject internal message ``m`` (caller's timeline)."""
        msg_bytes = self.nbytes // self.n_msgs
        data = None
        if self.data is not None:
            flat = np.asarray(self.data).reshape(-1).view(np.uint8)
            data = flat[m * msg_bytes : (m + 1) * msg_bytes]
        vci = vci_for_partition_message(
            self.rt.cvars, self.comm.vci, m, thread_id
        )
        req = SendRequest(
            self.rt,
            self.comm.context_id,
            self.dest,
            self.tag_base + m,
            msg_bytes,
            vci,
            data,
        )
        # The receiver posted its internal receive for message m using
        # the thread-agnostic mapping (it cannot know the sending
        # thread), so address that VCI explicitly.
        req.dst_vci = vci_for_partition_message(self.rt.cvars, self.comm.vci, m)
        req.offset = m * msg_bytes
        self._msg_reqs[m] = req
        req._done.callbacks.append(lambda ev: self._msg_done())
        yield from req.start()

    def _msg_done(self) -> None:
        self._completed_msgs += 1
        if self._completed_msgs == self.n_msgs:
            self.complete()

    # ------------------------------------------------------------------
    def _finish_wait(self):
        yield self.env.timeout(self.rt.params.part_completion_overhead)

    def wait(self):
        """Generator: complete the activation (``MPI_Wait``).

        On the first iteration this also waits out the CTS handshake.
        """
        if not self.active:
            raise RequestStateError("wait() while inactive")
        if self.n_msgs is None:
            yield self._cts_event
        result = yield self.completion_event
        yield from self._finish_wait()
        self.active = False
        return result


class PartitionedRecvRequest(PersistentRequest):
    """``MPI_Precv_init``: the receive side of partitioned communication.

    Operates in one of two modes, decided by the sender's RTS:

    * ``"tag"`` — the improved path: posts one internal receive per
      negotiated message; answers the CTS on the first ``Start``.
    * ``"am"`` — the sender fell back to (or was configured for) the
      active-message path: sends a CTS *every* iteration and waits for a
      single AM transfer (see :mod:`.partitioned_am`).
    """

    def __init__(
        self,
        comm: Comm,
        source: int,
        tag: int,
        partitions: int,
        nbytes: int,
        buffer: Optional[np.ndarray] = None,
    ):
        rt = comm.rt
        super().__init__(rt.env)
        if partitions < 1:
            raise PartitionError("partitions must be >= 1")
        if nbytes % partitions != 0:
            raise PartitionError(
                f"buffer of {nbytes} B not divisible into {partitions} partitions"
            )
        self.rt = rt
        self.comm = comm
        self.source = comm.world_rank(source)
        self.tag = tag
        self.partitions = partitions
        self.nbytes = nbytes
        self.buffer = buffer
        self.mode: Optional[str] = None
        self.n_msgs: Optional[int] = None
        self.tag_base: Optional[int] = None
        self._sender_rid: Optional[int] = None
        self._n_send: Optional[int] = None
        self._rts_event: Event = rt.env.event()
        self._cts_sent = False
        self._msg_reqs: List[RecvRequest] = []
        self._completed_msgs = 0
        self._am_arrived: Optional[Event] = None
        # The receive-side completion counter is shared by every VCI's
        # progress context delivering internal messages; updates bounce
        # its cache line and serialize (the partitioned residual of
        # Fig. 6: present even with one VCI per thread).
        self._atomic = ContendedAtomic(
            rt.env, rt.params, name=f"precv{self.rid}.counter"
        )
        key = (comm.context_id, self.source, tag)
        registry = _part_registry(rt)
        if key in registry:
            raise PartitionError(
                f"duplicate partitioned receive for (ctx={key[0]}, "
                f"src={source}, tag={tag})"
            )
        registry[key] = self
        self._key = key
        pending = rt._part_pending_rts.pop(key, None)
        if pending is not None:
            self._absorb_rts(pending)

    # ------------------------------------------------------------------
    def init(self):
        """Generator: local work of ``MPI_Precv_init``."""
        yield self.env.timeout(self.rt.params.recv_post_overhead)

    def _absorb_rts(self, pkt: Packet) -> None:
        header = pkt.header
        if header.get("am"):
            self.mode = "am"
            self._n_send = header["n_send"]
        else:
            self.mode = "tag"
            self._n_send = header["n_send"]
            self.tag_base = header["tag_base"]
            if (
                self.rt.cvars.part_skip_first_cts
                and self._n_send != self.partitions
            ):
                raise PartitionError(
                    "part_skip_first_cts requires symmetric partition "
                    f"counts (sender {self._n_send}, receiver "
                    f"{self.partitions}): without the CTS the sides "
                    "cannot agree on a message count"
                )
            self.n_msgs = negotiate_message_count(
                self._n_send,
                self.partitions,
                self.nbytes,
                self.rt.cvars.part_aggr_size,
            )
        self._sender_rid = header["sreq"]
        if not self._rts_event.triggered:
            self._rts_event.succeed()
        # If Start already ran (receiver ahead of sender), finish the
        # deferred setup from the progress engine.
        if self.active:
            self.rt.spawn(self._activate())

    def _start(self):
        if self.mode is None:
            # RTS not seen yet; the handler completes activation later.
            return
        yield from self._activate()

    def _activate(self):
        """Generator: per-iteration receive-side work (both modes)."""
        if self.mode == "am":
            self._am_arrived = self.env.event()
            self._am_arrived.callbacks.append(lambda ev: self.complete())
            # The AM protocol demands a CTS every iteration (§3.1).
            yield from self.rt.post_ctrl(
                self.source,
                "part_am_cts",
                vci=self.comm.vci,
                sreq=self._sender_rid,
            )
            return
        # tag mode: post the internal receives.
        self._msg_reqs = []
        self._completed_msgs = 0
        msg_bytes = self.nbytes // self.n_msgs
        for m in range(self.n_msgs):
            buf = None
            if self.buffer is not None:
                flat = np.asarray(self.buffer).reshape(-1).view(np.uint8)
                buf = flat[m * msg_bytes : (m + 1) * msg_bytes]
            vci = vci_for_partition_message(self.rt.cvars, self.comm.vci, m)
            req = RecvRequest(
                self.rt,
                self.comm.context_id,
                self.source,
                self.tag_base + m,
                msg_bytes,
                vci,
                buf,
            )
            req._done.callbacks.append(lambda ev: self._msg_done())
            self._msg_reqs.append(req)
            yield from req.start()
        if not self._cts_sent:
            self._cts_sent = True
            if self.rt.cvars.part_skip_first_cts:
                # Future-work mode (§5): the sender pre-agreed on the
                # count, so no first-iteration CTS is needed.
                return
            yield from self.rt.post_ctrl(
                self.source,
                "part_cts",
                vci=self.comm.vci,
                sreq=self._sender_rid,
                n_msgs=self.n_msgs,
            )

    def _msg_done(self) -> None:
        self.rt.spawn(self._count_completion())

    def _count_completion(self):
        """Generator: pay the contended shared-counter update, then count."""
        yield from self._atomic.update()
        self._completed_msgs += 1
        # Compare against the negotiated count, not len(_msg_reqs): a
        # message may complete from the unexpected queue while later
        # receives are still being posted.
        if self._completed_msgs == self.n_msgs:
            self.complete(Status(self.source, self.tag, self.nbytes))

    # ------------------------------------------------------------------
    def parrived(self, partition: int) -> bool:
        """Has ``partition`` arrived? (``MPI_Parrived``).

        With aggregation the granularity is the *message*: a partition
        reads as arrived once its whole (possibly aggregated) message
        landed — the tension the paper notes between ``MPI_Parrived``
        and aggregation (§3.2.1).
        """
        if not self.active:
            raise RequestStateError("Parrived before MPI_Start")
        if not 0 <= partition < self.partitions:
            raise PartitionError(f"partition {partition} out of range")
        if self.mode == "am" or self.mode is None:
            return self.completion_event.triggered
        m = partition * self.n_msgs // self.partitions
        if m >= len(self._msg_reqs):
            return False  # that receive is still being posted
        return self._msg_reqs[m].test()

    def am_data_arrived(self, pkt: Packet) -> None:
        """Called by the AM data handler when the single transfer lands."""
        if pkt.payload is not None and self.buffer is not None:
            flat = np.asarray(self.buffer).reshape(-1).view(np.uint8)
            flat[: pkt.nbytes] = pkt.payload
        if self._am_arrived is not None and not self._am_arrived.triggered:
            self._am_arrived.succeed()

    def _finish_wait(self):
        yield self.env.timeout(self.rt.params.part_completion_overhead)

    def wait(self):
        """Generator: complete the activation (``MPI_Wait``)."""
        if not self.active:
            raise RequestStateError("wait() while inactive")
        if self.mode is None:
            yield self._rts_event
        result = yield self.completion_event
        yield from self._finish_wait()
        self.active = False
        return result

    def free(self) -> None:
        """Release the request and its registry slot."""
        super().free()
        _part_registry(self.rt).pop(self._key, None)
