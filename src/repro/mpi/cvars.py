"""Runtime control variables (the simulated ``MPIR_CVAR_*`` knobs).

These mirror the MPICH control variables the paper exercises:

* ``MPIR_CVAR_PART_AGGR_SIZE`` → :attr:`Cvars.part_aggr_size` (§3.2.1,
  Fig. 7): upper bound in bytes for aggregating partition messages.
* ``MPIR_CVAR_NUM_VCIS`` → :attr:`Cvars.num_vcis` (§4.2.1, Figs. 5/6).
* ``--enable-vci-method=tag`` → :attr:`Cvars.vci_method` value
  ``"tag_rr"`` (round-robin partition→VCI mapping encoded in the tag).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["Cvars", "VCI_METHOD_COMM", "VCI_METHOD_TAG_RR", "VCI_METHOD_THREAD"]

#: Communicators map to VCIs by context id; partitioned traffic follows
#: its communicator (no per-partition spreading).
VCI_METHOD_COMM = "comm"
#: Experimental MPICH mode: partition messages round-robin over VCIs with
#: the VCI ids encoded in the tag (§3.2.2).
VCI_METHOD_TAG_RR = "tag_rr"
#: MPIX_Stream-style explicit thread→VCI mapping (the paper's proposed
#: fix for the round-robin assumption breaking at θ>1).
VCI_METHOD_THREAD = "thread"

_VCI_METHODS = (VCI_METHOD_COMM, VCI_METHOD_TAG_RR, VCI_METHOD_THREAD)


@dataclass(frozen=True)
class Cvars:
    """Immutable set of runtime knobs for one :class:`~repro.mpi.world.MPIWorld`."""

    #: Number of VCIs per rank (``MPIR_CVAR_NUM_VCIS``).
    num_vcis: int = 1
    #: VCI selection policy; see the module constants.
    vci_method: str = VCI_METHOD_COMM
    #: Aggregation bound in bytes for partitioned messages; 0 disables
    #: aggregation (``MPIR_CVAR_PART_AGGR_SIZE``).
    part_aggr_size: int = 0
    #: Internal tags reserved for partitioned traffic per peer; when a
    #: sender exceeds this, new partitioned requests fall back to AM.
    part_reserved_tags: int = 1024
    #: Force the legacy AM path for partitioned communication (the
    #: pre-improvement MPICH behaviour benchmarked as "Pt2Pt part - old").
    part_force_am: bool = False
    #: Skip the first-iteration CTS handshake (the paper's future-work
    #: item in §5); requires both sides to pre-agree on the message count.
    part_skip_first_cts: bool = False
    #: Carry and verify real payloads (tests) instead of byte counts only.
    verify_payloads: bool = False

    def __post_init__(self) -> None:
        if self.num_vcis < 1:
            raise ValueError("num_vcis must be >= 1")
        if self.vci_method not in _VCI_METHODS:
            raise ValueError(f"vci_method must be one of {_VCI_METHODS}")
        if self.part_aggr_size < 0:
            raise ValueError("part_aggr_size must be >= 0")
        if self.part_reserved_tags < 1:
            raise ValueError("part_reserved_tags must be >= 1")

    def with_updates(self, **kwargs) -> "Cvars":
        """Copy with the given fields replaced."""
        return replace(self, **kwargs)
