"""The simulated MPI runtime.

Public surface: :class:`MPIWorld` (build a job), :class:`Comm`
(point-to-point + persistent + collectives), :class:`Window` (RMA),
partitioned requests (MPI-4.0 ``Psend``/``Precv``), and the runtime
control variables in :class:`Cvars`.
"""

from .communicator import Comm
from .cvars import (
    VCI_METHOD_COMM,
    VCI_METHOD_TAG_RR,
    VCI_METHOD_THREAD,
    Cvars,
)
from .datatypes import BYTE, FLOAT32, FLOAT64, INT32, INT64, Datatype, vector
from .errors import (
    MPIError,
    PartitionError,
    RequestStateError,
    RmaSyncError,
    TagSpaceExhausted,
    TruncationError,
)
from .matching import MatchingEngine, MatchKey
from .p2p import (
    PersistentRecvRequest,
    PersistentSendRequest,
    RecvRequest,
    SendRequest,
)
from .partitioned import PartitionedRecvRequest, PartitionedSendRequest
from .partitioned_am import AmPartitionedRecvRequest, AmPartitionedSendRequest
from .partitioned_coll import PipelinedBcast
from .request import PersistentRequest, Request
from .rma import LOCK_EXCLUSIVE, LOCK_SHARED, MODE_NOCHECK, Window
from .runtime import PART_TAG_BASE, TAG_UB, RankRuntime
from .status import ANY_SOURCE, ANY_TAG, Status
from .topology import CartTopology, dims_create
from .world import MPIWorld

__all__ = [
    "MPIWorld",
    "Comm",
    "RankRuntime",
    "CartTopology",
    "dims_create",
    "Cvars",
    "VCI_METHOD_COMM",
    "VCI_METHOD_TAG_RR",
    "VCI_METHOD_THREAD",
    "Status",
    "ANY_SOURCE",
    "ANY_TAG",
    "Request",
    "PersistentRequest",
    "SendRequest",
    "RecvRequest",
    "PersistentSendRequest",
    "PersistentRecvRequest",
    "PartitionedSendRequest",
    "PartitionedRecvRequest",
    "AmPartitionedSendRequest",
    "AmPartitionedRecvRequest",
    "PipelinedBcast",
    "Window",
    "LOCK_SHARED",
    "LOCK_EXCLUSIVE",
    "MODE_NOCHECK",
    "Datatype",
    "vector",
    "BYTE",
    "INT32",
    "INT64",
    "FLOAT32",
    "FLOAT64",
    "MatchKey",
    "MatchingEngine",
    "MPIError",
    "TruncationError",
    "RequestStateError",
    "TagSpaceExhausted",
    "RmaSyncError",
    "PartitionError",
    "TAG_UB",
    "PART_TAG_BASE",
]
