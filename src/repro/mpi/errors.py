"""Error hierarchy of the simulated MPI runtime."""

from __future__ import annotations

__all__ = [
    "MPIError",
    "TruncationError",
    "RequestStateError",
    "TagSpaceExhausted",
    "RmaSyncError",
    "PartitionError",
]


class MPIError(RuntimeError):
    """Base class for all errors raised by the simulated MPI runtime."""


class TruncationError(MPIError):
    """An incoming message is larger than the posted receive buffer."""


class RequestStateError(MPIError):
    """An operation was applied to a request in the wrong state
    (e.g. ``start`` on an active persistent request)."""


class TagSpaceExhausted(MPIError):
    """No internal tags remain for partitioned traffic to a peer;
    the runtime falls back to the active-message path instead of raising
    unless fallback is disabled."""


class RmaSyncError(MPIError):
    """RMA call outside the required epoch (e.g. ``Put`` before ``Lock``)."""


class PartitionError(MPIError):
    """Invalid partition index or partitioned-request misuse."""
