"""One-sided communication: windows, puts, and both synchronization APIs.

Implements the RMA machinery the paper's four one-sided approaches use
(§2.3.3):

* **passive target**: ``Lock`` / ``Put`` / ``Flush`` / ``Unlock``, with
  ``MODE_NOCHECK`` making the lock free of wire traffic (the paper's
  choice to keep the receiver out of the synchronization);
* **active target (PSCW)**: ``Post`` / ``Start`` / ``Put`` /
  ``Complete`` / ``Wait`` with explicit exposure control.

Remote-completion ordering relies on the simulator's per-VCI FIFO: a
``flush`` request or ``complete`` token posted after puts on the same
VCI is processed after them at the target, exactly like ordered RDMA
channels.

The *progress-scan* cost models the overhead the paper measures for
``RMA many - passive`` on a single VCI (Fig. 5): a progress engine
serving W windows on one VCI scans all of them per flush service, so
acks slow down linearly in the number of co-located windows.  With one
VCI per window (Fig. 6) the scan disappears and many windows win.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..net import Packet, PacketKind
from ..sim import Event
from .errors import RmaSyncError
from .communicator import Comm

__all__ = ["Window", "LOCK_SHARED", "LOCK_EXCLUSIVE", "MODE_NOCHECK", "win_create"]

LOCK_SHARED = "shared"
LOCK_EXCLUSIVE = "exclusive"
#: Assertion telling the runtime no conflicting lock exists — skips the
#: lock handshake entirely (used by the paper's passive approaches).
MODE_NOCHECK = 1

_flush_seqs = itertools.count(1)


class _LockManager:
    """Target-side lock table for non-NOCHECK passive target epochs."""

    def __init__(self) -> None:
        self.holders: Set[Tuple[int, str]] = set()
        self.queue: List[Tuple[int, str, int]] = []  # (origin, type, seq)

    def can_grant(self, lock_type: str) -> bool:
        if not self.holders:
            return True
        if lock_type == LOCK_EXCLUSIVE:
            return False
        return all(t == LOCK_SHARED for _, t in self.holders)

    def grant(self, origin: int, lock_type: str) -> None:
        self.holders.add((origin, lock_type))

    def release(self, origin: int) -> List[Tuple[int, str, int]]:
        """Release origin's hold; return newly grantable queue entries."""
        self.holders = {(o, t) for (o, t) in self.holders if o != origin}
        granted = []
        while self.queue and self.can_grant(self.queue[0][1]):
            entry = self.queue.pop(0)
            self.grant(entry[0], entry[1])
            granted.append(entry)
        return granted


class Window:
    """One rank's handle on an RMA window.

    Create collectively via :func:`win_create`; every rank must call it
    in the same order (windows are identified by a deterministic
    world-level id, like communicator contexts).
    """

    def __init__(self, comm: Comm, win_id: int, nbytes: int,
                 buffer: Optional[np.ndarray] = None):
        self.comm = comm
        self.rt = comm.rt
        self.env = self.rt.env
        self.win_id = win_id
        self.nbytes = nbytes
        self.buffer = buffer
        #: Window traffic maps to a VCI by window id (MPICH hashes
        #: windows onto VCIs the same way it does communicators).
        self.vci = win_id % self.rt.cvars.num_vcis
        # --- origin-side state -------------------------------------------
        self._lock_epochs: Dict[int, str] = {}  # target -> lock type
        self._lock_grants: Dict[int, Event] = {}
        self._flush_acks: Dict[int, Event] = {}
        self._access_group: Optional[Tuple[int, ...]] = None  # PSCW start
        self._puts_in_epoch: Dict[int, int] = {}
        # --- target-side state ---------------------------------------------
        self._lock_mgr = _LockManager()
        self._post_tokens: Dict[int, int] = {}  # origin -> tokens seen
        self._post_waiters: Dict[int, Event] = {}
        self._exposure_group: Optional[Tuple[int, ...]] = None
        self._complete_tokens = 0
        self._complete_waiter: Optional[Event] = None
        self.puts_received = 0
        self._register_handlers()

    # ------------------------------------------------------------------
    # handler registration (one set per window id per rank)
    # ------------------------------------------------------------------
    def _register_handlers(self) -> None:
        rt = self.rt
        wid = self.win_id
        rt.register_ctrl_handler(f"rma_put:{wid}", self._on_put)
        rt.register_ctrl_handler(f"rma_flush_req:{wid}", self._on_flush_req)
        rt.register_ctrl_handler(f"rma_flush_ack:{wid}", self._on_flush_ack)
        rt.register_ctrl_handler(f"rma_post:{wid}", self._on_post_token)
        rt.register_ctrl_handler(f"rma_complete:{wid}", self._on_complete_token)
        rt.register_ctrl_handler(f"rma_lock_req:{wid}", self._on_lock_req)
        rt.register_ctrl_handler(f"rma_lock_grant:{wid}", self._on_lock_grant)
        rt.register_ctrl_handler(f"rma_unlock:{wid}", self._on_unlock)
        if not hasattr(rt, "rma_windows"):
            rt.rma_windows = {}
        rt.rma_windows[wid] = self

    def _windows_sharing_vci(self) -> int:
        """Number of windows on this rank mapped to this window's VCI."""
        windows = getattr(self.rt, "rma_windows", {})
        return sum(1 for w in windows.values() if w.vci == self.vci)

    # ------------------------------------------------------------------
    # passive target synchronization
    # ------------------------------------------------------------------
    def lock(self, target: int, lock_type: str = LOCK_SHARED, assertion: int = 0):
        """Generator: open a passive access epoch at ``target``.

        With ``MODE_NOCHECK`` no wire traffic occurs (the paper's usage);
        otherwise a lock request/grant round trip runs against the
        target's lock table.
        """
        tw = self.comm.world_rank(target)
        if tw in self._lock_epochs:
            raise RmaSyncError(f"win {self.win_id}: already locked {target}")
        if assertion & MODE_NOCHECK:
            self._lock_epochs[tw] = lock_type
            self._puts_in_epoch[tw] = 0
            return
        grant = self.env.event()
        self._lock_grants[tw] = grant
        yield from self.rt.post_ctrl(
            tw,
            f"rma_lock_req:{self.win_id}",
            vci=self.vci,
            kind=PacketKind.RMA_CTRL,
            origin=self.rt.rank,
            lock_type=lock_type,
        )
        yield grant
        self._lock_epochs[tw] = lock_type
        self._puts_in_epoch[tw] = 0

    def unlock(self, target: int, assertion: int = 0):
        """Generator: flush and close the passive epoch at ``target``."""
        tw = self.comm.world_rank(target)
        if tw not in self._lock_epochs:
            raise RmaSyncError(f"win {self.win_id}: unlock without lock")
        yield from self.flush(target)
        if not (assertion & MODE_NOCHECK):
            yield from self.rt.post_ctrl(
                tw,
                f"rma_unlock:{self.win_id}",
                vci=self.vci,
                kind=PacketKind.RMA_CTRL,
                origin=self.rt.rank,
            )
        del self._lock_epochs[tw]

    def flush(self, target: int):
        """Generator: block until all puts to ``target`` completed remotely."""
        tw = self.comm.world_rank(target)
        yield self.env.timeout(self.rt.params.rma_sync_overhead)
        seq = next(_flush_seqs)
        ack = self.env.event()
        self._flush_acks[seq] = ack
        yield from self.rt.post_ctrl(
            tw,
            f"rma_flush_req:{self.win_id}",
            vci=self.vci,
            kind=PacketKind.RMA_CTRL,
            origin=self.rt.rank,
            seq=seq,
        )
        yield ack

    # ------------------------------------------------------------------
    # active target synchronization (PSCW)
    # ------------------------------------------------------------------
    def post(self, group: Sequence[int]):
        """Generator (target side): expose the window to ``group``."""
        if self._exposure_group is not None:
            raise RmaSyncError(f"win {self.win_id}: already exposed")
        yield self.env.timeout(self.rt.params.rma_sync_overhead)
        self._exposure_group = tuple(self.comm.world_rank(g) for g in group)
        self._complete_tokens = 0
        self._complete_waiter = self.env.event()
        for origin in self._exposure_group:
            yield from self.rt.post_ctrl(
                origin,
                f"rma_post:{self.win_id}",
                vci=self.vci,
                kind=PacketKind.RMA_CTRL,
                origin=self.rt.rank,
            )

    def start(self, group: Sequence[int]):
        """Generator (origin side): open access epochs to ``group``,
        waiting for each target's post token."""
        if self._access_group is not None:
            raise RmaSyncError(f"win {self.win_id}: start() twice")
        yield self.env.timeout(self.rt.params.rma_sync_overhead)
        targets = tuple(self.comm.world_rank(g) for g in group)
        for t in targets:
            while self._post_tokens.get(t, 0) == 0:
                waiter = self._post_waiters.get(t)
                if waiter is None or waiter.triggered:
                    waiter = self.env.event()
                    self._post_waiters[t] = waiter
                yield waiter
            self._post_tokens[t] -= 1
        self._access_group = targets
        for t in targets:
            self._puts_in_epoch[t] = 0

    def complete(self):
        """Generator (origin side): close the PSCW access epoch.

        The completion token is posted after the epoch's puts on the same
        VCI, so its arrival at the target implies their delivery.
        """
        if self._access_group is None:
            raise RmaSyncError(f"win {self.win_id}: complete() without start()")
        yield self.env.timeout(self.rt.params.rma_sync_overhead)
        for t in self._access_group:
            yield from self.rt.post_ctrl(
                t,
                f"rma_complete:{self.win_id}",
                vci=self.vci,
                kind=PacketKind.RMA_CTRL,
                origin=self.rt.rank,
                puts=self._puts_in_epoch.get(t, 0),
            )
        self._access_group = None

    def wait(self):
        """Generator (target side): wait for every origin's completion."""
        if self._exposure_group is None:
            raise RmaSyncError(f"win {self.win_id}: wait() without post()")
        yield self.env.timeout(self.rt.params.rma_sync_overhead)
        while self._complete_tokens < len(self._exposure_group):
            yield self._complete_waiter
            if self._complete_tokens < len(self._exposure_group):
                self._complete_waiter = self.env.event()
        self._exposure_group = None

    # ------------------------------------------------------------------
    # data movement
    # ------------------------------------------------------------------
    def put(self, target: int, offset: int, nbytes: int,
            data: Optional[np.ndarray] = None):
        """Generator: one-sided write into ``target``'s window.

        Cheaper to post than a tag-matched send (§3.2) and with no
        matching work at the target.
        """
        tw = self.comm.world_rank(target)
        if tw not in self._lock_epochs and (
            self._access_group is None or tw not in self._access_group
        ):
            raise RmaSyncError(
                f"win {self.win_id}: put() outside any epoch to {target}"
            )
        if offset + nbytes > self.nbytes:
            raise RmaSyncError(
                f"win {self.win_id}: put of {nbytes} B at {offset} beyond "
                f"window size {self.nbytes}"
            )
        payload = None
        if self.rt.cvars.verify_payloads and data is not None:
            payload = np.array(data, dtype=np.uint8, copy=True).ravel()
        pkt = Packet(
            kind=PacketKind.RMA_PUT,
            src=self.rt.rank,
            dst=tw,
            nbytes=nbytes,
            src_vci=self.vci,
            dst_vci=self.vci,
            header={"op": f"rma_put:{self.win_id}", "offset": offset},
            payload=payload,
        )
        self.rt._count_tx(PacketKind.RMA_PUT)
        yield from self.rt.nic.post(self.vci, pkt, self.rt.params.put_overhead)
        self._puts_in_epoch[tw] = self._puts_in_epoch.get(tw, 0) + 1

    # ------------------------------------------------------------------
    # target-side packet handlers (zero sim-time; costs paid in RX loop)
    # ------------------------------------------------------------------
    def _on_put(self, pkt: Packet) -> None:
        self.puts_received += 1
        if pkt.payload is not None and self.buffer is not None:
            off = pkt.header["offset"]
            flat = self.buffer.reshape(-1).view(np.uint8)
            flat[off : off + pkt.nbytes] = pkt.payload

    def _on_flush_req(self, pkt: Packet) -> None:
        # The progress engine scans every window sharing this VCI before
        # acking — the RMA-many-on-one-VCI penalty (Fig. 5).
        scan = self.rt.params.rma_progress_scan * (self._windows_sharing_vci() - 1)
        self.rt.spawn(self._ack_flush(pkt, scan))

    def _ack_flush(self, pkt: Packet, scan: float):
        if scan > 0:
            yield self.env.timeout(scan)
        yield from self.rt.post_ctrl(
            pkt.header["origin"],
            f"rma_flush_ack:{self.win_id}",
            vci=self.vci,
            kind=PacketKind.RMA_CTRL,
            seq=pkt.header["seq"],
        )

    def _on_flush_ack(self, pkt: Packet) -> None:
        self._flush_acks.pop(pkt.header["seq"]).succeed()

    def _on_post_token(self, pkt: Packet) -> None:
        origin = pkt.header["origin"]
        self._post_tokens[origin] = self._post_tokens.get(origin, 0) + 1
        waiter = self._post_waiters.get(origin)
        if waiter is not None and not waiter.triggered:
            waiter.succeed()

    def _on_complete_token(self, pkt: Packet) -> None:
        self._complete_tokens += 1
        if self._complete_waiter is not None and not self._complete_waiter.triggered:
            self._complete_waiter.succeed()

    def _on_lock_req(self, pkt: Packet) -> None:
        origin = pkt.header["origin"]
        lock_type = pkt.header["lock_type"]
        if self._lock_mgr.can_grant(lock_type):
            self._lock_mgr.grant(origin, lock_type)
            self.rt.spawn(self._send_grant(origin))
        else:
            self._lock_mgr.queue.append((origin, lock_type, 0))

    def _send_grant(self, origin: int):
        yield from self.rt.post_ctrl(
            origin,
            f"rma_lock_grant:{self.win_id}",
            vci=self.vci,
            kind=PacketKind.RMA_CTRL,
        )

    def _on_lock_grant(self, pkt: Packet) -> None:
        self._lock_grants.pop(pkt.src).succeed()

    def _on_unlock(self, pkt: Packet) -> None:
        for origin, lock_type, _ in self._lock_mgr.release(pkt.header["origin"]):
            self._lock_mgr.grant(origin, lock_type)
            self.rt.spawn(self._send_grant(origin))

    def __repr__(self) -> str:  # pragma: no cover - debug repr
        return f"<Window id={self.win_id} rank={self.rt.rank} vci={self.vci}>"


def win_create(comm: Comm, nbytes: int, buffer: Optional[np.ndarray] = None,
               key: Optional[str] = None):
    """Generator: collectively create a window over ``nbytes`` of memory.

    Without ``key``, every rank of ``comm`` must call in the same order
    (windows pair by per-rank creation sequence, like a plain
    ``MPI_Win_create`` job with identical rank programs).  With a
    ``key``, the window id is agreed through a world-level table keyed by
    the string, so ranks whose window-creation orders differ (e.g. one
    window per topology link) still pair correctly — the analogue of
    creating the window on a tagged sub-communicator.  Includes the
    synchronizing barrier that ``MPI_Win_create`` implies.
    """
    world = comm.rt.world
    if not hasattr(world, "_win_seq"):
        world._win_seq = {}
        world._win_table = {}
        world._win_key_table = {}
        world._next_win = 0
    if key is not None:
        win_id = world._win_key_table.get(key)
        if win_id is None:
            win_id = world._next_win
            world._next_win += 1
            world._win_key_table[key] = win_id
    else:
        seq = world._win_seq.get(comm.rt.rank, 0)
        world._win_seq[comm.rt.rank] = seq + 1
        win_id = world._win_table.get(seq)
        if win_id is None:
            win_id = world._next_win
            world._next_win += 1
            world._win_table[seq] = win_id
    win = Window(comm, win_id, nbytes, buffer)
    yield from comm.barrier()
    return win
