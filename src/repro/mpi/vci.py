"""VCI selection policies.

MPICH maps communication onto virtual communication interfaces (VCIs) to
let threads drive the network without sharing locks (§4.2.1 of the
paper).  Three policies are modelled:

* ``comm`` — a communicator's traffic follows its context id
  (``MPIR_CVAR_NUM_VCIS`` + communicator hashing).  This is what makes
  ``Pt2Pt many`` scale in Fig. 6: each duplicated communicator lands on
  its own VCI.
* ``tag_rr`` — the experimental per-partition round-robin used by the
  improved partitioned path (``--enable-vci-method=tag``), encoding the
  source/destination VCI ids in the tag (§3.2.2).
* ``thread`` — an explicit thread→VCI mapping, standing in for the
  MPIX_Stream-style hint the paper proposes as future work.
"""

from __future__ import annotations

from typing import Optional

from .cvars import VCI_METHOD_COMM, VCI_METHOD_TAG_RR, VCI_METHOD_THREAD, Cvars

__all__ = ["vci_for_comm", "vci_for_partition_message"]


def vci_for_comm(cvars: Cvars, context_id: int) -> int:
    """VCI carrying a communicator's point-to-point and RMA traffic."""
    return context_id % cvars.num_vcis


def vci_for_partition_message(
    cvars: Cvars,
    comm_vci: int,
    msg_index: int,
    thread_id: Optional[int] = None,
) -> int:
    """VCI carrying partitioned message ``msg_index``.

    Under ``tag_rr`` the implementation assumes a round-robin attribution
    of threads to partitions — the paper notes this assumption "is
    inflexible and likely to break when used in practice with θ > 1"
    (§3.2.2), which the ``thread`` policy fixes by using the caller's
    thread id when available.
    """
    if cvars.vci_method == VCI_METHOD_TAG_RR:
        return msg_index % cvars.num_vcis
    if cvars.vci_method == VCI_METHOD_THREAD:
        if thread_id is not None:
            return thread_id % cvars.num_vcis
        return msg_index % cvars.num_vcis
    # VCI_METHOD_COMM: partitioned traffic follows its communicator.
    return comm_vci
