"""Point-to-point operations: blocking, nonblocking, and persistent.

These are the MPI-3.1 primitives the paper's baseline approaches use
(`Pt2Pt single`, `Pt2Pt many`): ``Send/Recv``, ``Isend/Irecv``, and the
persistent ``Send_init/Recv_init`` + ``Start`` + ``Wait`` family.

All initiating calls are generators: the *calling simulated thread* pays
the posting costs (VCI lock acquisition, descriptor write, bounce-buffer
copies), which is precisely where the thread-congestion effects of
Fig. 5 come from.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .request import PersistentRequest, Request

__all__ = [
    "SendRequest",
    "RecvRequest",
    "PersistentSendRequest",
    "PersistentRecvRequest",
]


class SendRequest(Request):
    """One nonblocking send (``MPI_Isend``)."""

    def __init__(
        self,
        rt,
        context_id: int,
        dest: int,
        tag: int,
        nbytes: int,
        vci: int,
        data: Optional[np.ndarray] = None,
    ):
        super().__init__(rt.env)
        self.rt = rt
        self.context_id = context_id
        self.dest = dest
        self.tag = tag
        self.nbytes = nbytes
        self.vci = vci
        self.data = data

    def start(self):
        """Generator: initiate the send (caller pays posting costs)."""
        yield from self.rt.start_send(self)


class RecvRequest(Request):
    """One nonblocking receive (``MPI_Irecv``)."""

    def __init__(
        self,
        rt,
        context_id: int,
        source: int,
        tag: int,
        nbytes: int,
        vci: int,
        buffer: Optional[np.ndarray] = None,
    ):
        super().__init__(rt.env)
        self.rt = rt
        self.context_id = context_id
        self.source = source
        self.tag = tag
        self.nbytes = nbytes
        self.vci = vci
        self.buffer = buffer

    def start(self):
        """Generator: post the receive."""
        yield from self.rt.start_recv(self)


class PersistentSendRequest(PersistentRequest):
    """``MPI_Send_init``: a reusable send activated by ``Start``.

    Each activation behaves like a fresh send with the same envelope;
    eager activations complete locally at post time, rendezvous ones
    when the data has been injected after the CTS round-trip.
    """

    def __init__(
        self,
        rt,
        context_id: int,
        dest: int,
        tag: int,
        nbytes: int,
        vci: int,
        data: Optional[np.ndarray] = None,
    ):
        super().__init__(rt.env)
        self.rt = rt
        self.context_id = context_id
        self.dest = dest
        self.tag = tag
        self.nbytes = nbytes
        self.vci = vci
        self.data = data

    def _start(self):
        yield from self.rt.start_send(self)


class PersistentRecvRequest(PersistentRequest):
    """``MPI_Recv_init``: a reusable receive activated by ``Start``."""

    def __init__(
        self,
        rt,
        context_id: int,
        source: int,
        tag: int,
        nbytes: int,
        vci: int,
        buffer: Optional[np.ndarray] = None,
    ):
        super().__init__(rt.env)
        self.rt = rt
        self.context_id = context_id
        self.source = source
        self.tag = tag
        self.nbytes = nbytes
        self.vci = vci
        self.buffer = buffer

    def _start(self):
        yield from self.rt.start_recv(self)
