"""The simulated MPI world: ranks, fabric, and deterministic contexts.

:class:`MPIWorld` is the top-level entry point of the runtime simulator.
It builds one :class:`~repro.mpi.runtime.RankRuntime` per rank, connects
their NICs through a :class:`~repro.net.fabric.Fabric`, and provides the
deterministic context-id table that makes ``Comm_dup`` collective-
consistent without wire traffic.

Example
-------
>>> from repro.mpi import MPIWorld
>>> world = MPIWorld(n_ranks=2)
>>> def sender(world):
...     comm = world.comm_world(0)
...     yield from comm.send(dest=1, tag=7, nbytes=64)
>>> def receiver(world):
...     comm = world.comm_world(1)
...     status = yield from comm.recv(source=0, tag=7, nbytes=64)
...     return status.nbytes
>>> world.launch(0, sender(world))
<Process ...>
>>> p = world.launch(1, receiver(world))
>>> world.run()
>>> p.value
64
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from .. import telemetry
from ..net import MELUXINA, Fabric, Nic, SystemParams
from ..sim import (
    Environment,
    NullTracer,
    Process,
    RngRegistry,
    StreamingTracer,
    Tracer,
)
from .communicator import Comm
from .cvars import Cvars
from .runtime import RankRuntime

__all__ = ["MPIWorld"]


class MPIWorld:
    """A complete simulated MPI job.

    Parameters
    ----------
    n_ranks:
        Number of MPI processes (the paper's benchmark uses 2).
    params:
        The machine cost model (defaults to the MeluXina-like preset).
    cvars:
        Runtime knobs (VCIs, aggregation, AM fallback, ...).
    seed:
        Root seed for all randomness (compute-noise streams).
    trace:
        Enable structured tracing (off for benchmark runs).
    """

    def __init__(
        self,
        n_ranks: int = 2,
        params: SystemParams = MELUXINA,
        cvars: Optional[Cvars] = None,
        seed: int = 0,
        trace: bool = False,
    ):
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        self.env = Environment()
        self.params = params
        self.cvars = cvars if cvars is not None else Cvars()
        self.rng = RngRegistry(seed)
        # When a telemetry trace sink is registered (``campaign run
        # --trace``), stream records straight to it instead of
        # accumulating them in memory — long simulations then trace in
        # O(1) memory.  An explicit ``trace=True`` without a sink keeps
        # the classic in-memory Tracer (tests inspect ``.records``).
        sink = telemetry.trace_sink()
        if sink is not None:
            self.tracer: Tracer = StreamingTracer(self.env, sink)
        elif trace:
            self.tracer = Tracer(self.env)
        else:
            self.tracer = NullTracer(self.env)
        self.fabric = Fabric(self.env, params, self.tracer)
        self.ranks: List[RankRuntime] = []
        for r in range(n_ranks):
            nic = Nic(self.env, r, params, self.tracer, n_vcis=self.cvars.num_vcis)
            self.fabric.register(nic)
            self.ranks.append(RankRuntime(self, r, nic))
        self._world_group: Tuple[int, ...] = tuple(range(n_ranks))
        self._comm_world: Dict[int, Comm] = {}
        # Deterministic context allocation: (parent_ctx, seq) -> ctx.
        self._next_ctx = 1
        self._ctx_table: Dict[Tuple[int, int], int] = {}
        # Named sub-communicator contexts: key -> (ctx, group).
        self._subcomm_table: Dict[str, Tuple[int, Tuple[int, ...]]] = {}

    # -- accessors ------------------------------------------------------------
    @property
    def n_ranks(self) -> int:
        return len(self.ranks)

    def rank(self, r: int) -> RankRuntime:
        """The runtime of rank ``r``."""
        return self.ranks[r]

    def comm_world(self, r: int) -> Comm:
        """Rank ``r``'s handle on MPI_COMM_WORLD (context id 0)."""
        comm = self._comm_world.get(r)
        if comm is None:
            comm = Comm(self.ranks[r], 0, self._world_group)
            self._comm_world[r] = comm
        return comm

    def sub_comm(self, group: Tuple[int, ...], key: str) -> Dict[int, Comm]:
        """Create (or retrieve) a named sub-communicator over ``group``.

        Returns one :class:`Comm` handle per member rank, all sharing a
        context id agreed through a world-level table keyed by ``key`` —
        the moral equivalent of ``MPI_Comm_create_group`` with a
        deterministic group tag.  The order of ``group`` defines the
        communicator ranks (``group[0]`` is comm rank 0), so callers can
        fix role positions (e.g. sender first) independently of world
        rank order.  Repeated calls with the same key must pass the same
        group and return fresh handles on the same context.
        """
        if len(set(group)) != len(group) or not group:
            raise ValueError(f"group must be non-empty and unique: {group}")
        entry = self._subcomm_table.get(key)
        if entry is None:
            ctx = self._next_ctx
            self._next_ctx += 1
            self._subcomm_table[key] = (ctx, tuple(group))
        else:
            ctx, prev_group = entry
            if prev_group != tuple(group):
                raise ValueError(
                    f"sub_comm key {key!r} already bound to group "
                    f"{prev_group}, got {tuple(group)}"
                )
        return {r: Comm(self.ranks[r], ctx, tuple(group)) for r in group}

    def alloc_context(self, parent_ctx: int, seq: int) -> int:
        """Deterministic collective context allocation for ``Comm_dup``.

        Every rank duplicating the same parent for the ``seq``-th time
        receives the same new context id, mirroring MPI's collective
        agreement.
        """
        key = (parent_ctx, seq)
        ctx = self._ctx_table.get(key)
        if ctx is None:
            ctx = self._next_ctx
            self._next_ctx += 1
            self._ctx_table[key] = ctx
        return ctx

    # -- execution ---------------------------------------------------------------
    def launch(self, r: int, generator: Generator) -> Process:
        """Run ``generator`` as a process belonging to rank ``r``."""
        if not 0 <= r < self.n_ranks:
            raise ValueError(f"rank {r} out of range")
        return self.env.process(generator)

    def run(self, until=None):
        """Advance the simulation (see :meth:`Environment.run`)."""
        return self.env.run(until=until)

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self.env.now

    def __repr__(self) -> str:  # pragma: no cover - debug repr
        return (
            f"<MPIWorld ranks={self.n_ranks} vcis={self.cvars.num_vcis} "
            f"t={self.env.now * 1e6:.3f}us>"
        )
