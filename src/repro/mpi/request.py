"""Request objects: the completion handles of all nonblocking operations.

Two base classes:

* :class:`Request` — single-shot completion (``wait``/``test``).
* :class:`PersistentRequest` — the ``*_init``/``Start``/``Wait`` state
  machine of persistent MPI operations (INACTIVE → ACTIVE → INACTIVE),
  reusable across benchmark iterations exactly like the paper's Fig. 3
  template requires.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from ..sim import Environment, Event
from .errors import RequestStateError

__all__ = ["Request", "PersistentRequest"]

_request_ids = itertools.count(1)


class Request:
    """A one-shot completion handle."""

    def __init__(self, env: Environment):
        self.env = env
        self.rid = next(_request_ids)
        self._done: Event = env.event()
        self.completed_at: Optional[float] = None

    # -- completion (runtime side) ------------------------------------------
    def complete(self, value: Any = None) -> None:
        """Mark complete; idempotence is an error (each op completes once)."""
        self.completed_at = self.env.now
        self._done.succeed(value)

    # -- user side ---------------------------------------------------------------
    def test(self) -> bool:
        """Nonblocking completion check."""
        return self._done.triggered

    @property
    def value(self) -> Any:
        """Completion value (e.g. a Status); only valid once complete."""
        return self._done.value

    def wait(self):
        """Generator: block the calling process until completion."""
        result = yield self._done
        return result


class PersistentRequest:
    """Base for persistent operations (``MPI_Send_init`` family).

    Subclasses implement :meth:`_start` (a generator performing the
    operation's initiation work in the caller's timeline) and may
    override :meth:`_finish_wait` for completion-side bookkeeping.
    """

    def __init__(self, env: Environment):
        self.env = env
        self.rid = next(_request_ids)
        self.active = False
        self.started_count = 0
        self._done: Optional[Event] = None

    # -- to be provided by subclasses -------------------------------------------
    def _start(self):
        """Generator: initiate one activation (caller pays the costs)."""
        raise NotImplementedError
        yield  # pragma: no cover

    def _finish_wait(self):
        """Generator: optional completion-side work inside ``wait``."""
        return
        yield  # pragma: no cover

    # -- runtime side --------------------------------------------------------------
    def complete(self, value: Any = None) -> None:
        """Complete the current activation."""
        if self._done is None:
            raise RequestStateError(f"request {self.rid}: complete() while inactive")
        if not self._done.triggered:
            self._done.succeed(value)

    @property
    def completion_event(self) -> Event:
        if self._done is None:
            raise RequestStateError(f"request {self.rid}: inactive")
        return self._done

    # -- user side ---------------------------------------------------------------------
    def start(self):
        """Generator: activate the request (``MPI_Start``)."""
        if self.active:
            raise RequestStateError(
                f"request {self.rid}: start() while already active"
            )
        self.active = True
        self.started_count += 1
        self._done = self.env.event()
        yield from self._start()

    def test(self) -> bool:
        """Nonblocking completion check of the current activation."""
        if not self.active:
            raise RequestStateError(f"request {self.rid}: test() while inactive")
        return self._done.triggered

    def wait(self):
        """Generator: wait for the current activation; deactivates."""
        if not self.active:
            raise RequestStateError(f"request {self.rid}: wait() while inactive")
        result = yield self._done
        yield from self._finish_wait()
        self.active = False
        return result

    def free(self) -> None:
        """Release the request (``MPI_Request_free``)."""
        if self.active:
            raise RequestStateError(f"request {self.rid}: free() while active")
        self._done = None
