"""Partitioned collective communication (extension).

The paper's related work cites Holmes et al. [6], who propose extending
the MPI-4.0 partitioned semantics to collectives.  This module builds
the canonical example on top of this runtime's partitioned
point-to-point: a **pipelined chain broadcast**.  Every non-root rank
forwards each partition downstream as soon as ``Parrived`` reports it,
so a P-rank broadcast of N_part partitions costs roughly

    (N_part + P − 2) · T_part      (pipelined)

instead of the store-and-forward chain's ``(P − 1) · N_part · T_part`` —
the early-bird effect compounded across hops.

This is an *extension beyond the paper's evaluation*; it exists to
demonstrate that the partitioned substrate composes, and is exercised
by ``tests/mpi/test_partitioned_coll.py``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .communicator import Comm
from .errors import PartitionError, RequestStateError

__all__ = ["PipelinedBcast"]

#: Polling interval of the forwarding loop (an MPI_Parrived test loop).
_POLL_INTERVAL = 0.5e-6


class PipelinedBcast:
    """A chain broadcast pipelined at partition granularity.

    The chain visits the communicator's ranks in order starting at
    ``root`` (wrapping).  Usage on every rank::

        bcast = PipelinedBcast(comm, partitions=8, nbytes=1 << 20,
                               root=0, data=..., buffer=...)
        yield from bcast.init()
        for it in range(iterations):
            yield from bcast.start()
            if bcast.is_root:
                for p in range(8):
                    ...compute partition p...
                    yield from bcast.pready(p)
            yield from bcast.wait()
        bcast.free()

    Non-root ranks forward inside :meth:`wait`.
    """

    def __init__(
        self,
        comm: Comm,
        partitions: int,
        nbytes: int,
        root: int = 0,
        data: Optional[np.ndarray] = None,
        buffer: Optional[np.ndarray] = None,
        tag: int = 0,
    ):
        if partitions < 1:
            raise PartitionError("partitions must be >= 1")
        if nbytes % partitions != 0:
            raise PartitionError(
                f"{nbytes} B not divisible into {partitions} partitions"
            )
        self.comm = comm
        self.partitions = partitions
        self.nbytes = nbytes
        self.root = root
        self.tag = tag
        #: Chain position: 0 = root, size-1 = tail.
        self.position = (comm.rank - root) % comm.size
        self.is_root = self.position == 0
        self.is_tail = self.position == comm.size - 1
        self.data = data
        self.buffer = buffer
        self._sreq = None
        self._rreq = None
        self._active = False

    @property
    def _next_rank(self) -> int:
        return (self.comm.rank + 1) % self.comm.size

    @property
    def _prev_rank(self) -> int:
        return (self.comm.rank - 1) % self.comm.size

    # ------------------------------------------------------------------
    def init(self):
        """Generator: create the persistent partitioned requests."""
        if not self.is_tail:
            # Forwarders send out of their receive buffer.
            out = self.data if self.is_root else self.buffer
            self._sreq = yield from self.comm.psend_init(
                dest=self._next_rank,
                tag=self.tag,
                partitions=self.partitions,
                nbytes=self.nbytes,
                data=out,
            )
        if not self.is_root:
            self._rreq = yield from self.comm.precv_init(
                source=self._prev_rank,
                tag=self.tag,
                partitions=self.partitions,
                nbytes=self.nbytes,
                buffer=self.buffer,
            )

    def start(self):
        """Generator: activate this iteration on every rank."""
        if self._active:
            raise RequestStateError("bcast already started")
        self._active = True
        if self._sreq is not None:
            yield from self._sreq.start()
        if self._rreq is not None:
            yield from self._rreq.start()

    def pready(self, partition: int, thread_id: Optional[int] = None):
        """Generator: root-side partition readiness."""
        if not self.is_root:
            raise RequestStateError("pready() is root-only; forwarding "
                                    "is automatic in wait()")
        yield from self._sreq.pready(partition, thread_id=thread_id)

    def wait(self):
        """Generator: complete the iteration.

        Forwarders poll ``Parrived`` and re-``Pready`` each partition
        downstream the moment it lands — the pipelining step.
        """
        if not self._active:
            raise RequestStateError("wait() before start()")
        if self._rreq is not None and self._sreq is not None:
            forwarded = [False] * self.partitions
            remaining = self.partitions
            while remaining:
                progressed = False
                for p in range(self.partitions):
                    if not forwarded[p] and self._rreq.parrived(p):
                        yield from self._sreq.pready(p)
                        forwarded[p] = True
                        remaining -= 1
                        progressed = True
                if remaining and not progressed:
                    yield self.comm.rt.env.timeout(_POLL_INTERVAL)
        if self._rreq is not None:
            yield from self._rreq.wait()
        if self._sreq is not None:
            yield from self._sreq.wait()
        self._active = False

    def free(self) -> None:
        """Release the persistent requests."""
        if self._rreq is not None:
            self._rreq.free()
        if self._sreq is not None:
            self._sreq.free()
