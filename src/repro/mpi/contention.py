"""Shared-counter contention: the cost model for hot atomic cache lines.

Partitioned communication keeps shared state that many execution
contexts update concurrently: the per-message ``MPI_Pready`` counters on
the sender (§3.2.2) and the completion counter the receiver's progress
contexts decrement as internal messages land.  Each update is an atomic
RMW whose cost grows with the number of contexts fighting for the cache
line, and the updates themselves serialize (the line has one owner at a
time).

The contender count combines two views, like the VCI lock model in
:mod:`repro.net.nic`:

* the **episode peak** — the largest number of simultaneous claimants
  since the counter was last idle (a burst of N threads costs everyone
  the N-way fight, including the first one served);
* the **recent-agent window** — distinct contexts that touched the
  counter within ``vci_agent_window`` (staggered arrivals keep the line
  bouncing while the burst lasts).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..net import SystemParams
from ..sim import Environment, Lock

__all__ = ["ContendedAtomic"]


class ContendedAtomic:
    """A serialized atomic counter with contention-dependent cost."""

    def __init__(
        self,
        env: Environment,
        params: SystemParams,
        name: str = "",
        bounce: Optional[float] = None,
    ):
        self.env = env
        self.params = params
        self.name = name
        #: Cost added per contending context (defaults to the
        #: receive-side coefficient; Pready passes its own).
        self.bounce = (
            params.atomic_bounce_coeff if bounce is None else bounce
        )
        self._lock = Lock(env, name=name)
        self._agents: Dict[int, float] = {}
        self._episode_peak = 0
        self.updates = 0

    def _other_agents(self, me: int) -> int:
        now = self.env.now
        window = self.params.vci_agent_window
        stale = [a for a, t in self._agents.items() if now - t > window]
        for a in stale:
            del self._agents[a]
        return sum(1 for a in self._agents if a != me)

    def update(self, extra_cost: float = 0.0):
        """Generator: perform one contended update in the caller's
        timeline; ``extra_cost`` is added inside the critical section
        (e.g. ``pready_overhead``)."""
        me = self.env.active_process.serial
        self._agents[me] = self.env.now
        claimants = self._lock.queue_length + self._lock.count + 1
        if claimants == 1:
            self._episode_peak = 1
        else:
            self._episode_peak = max(self._episode_peak, claimants)
        req = self._lock.request()
        yield req
        self._agents[me] = self.env.now
        self._episode_peak = max(
            self._episode_peak, self._lock.queue_length + 1
        )
        contenders = max(self._episode_peak - 1, self._other_agents(me))
        cost = (
            self.params.atomic_overhead
            + self.bounce * contenders
            + extra_cost
        )
        yield self.env.timeout(cost)
        self.updates += 1
        self._lock.release(req)

    def __repr__(self) -> str:  # pragma: no cover - debug repr
        return f"<ContendedAtomic {self.name!r} updates={self.updates}>"
