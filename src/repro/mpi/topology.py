"""Process topologies: Cartesian decompositions for the app patterns.

A small, deterministic stand-in for ``MPI_Dims_create`` /
``MPI_Cart_create`` / ``MPI_Cart_shift``: the :mod:`repro.apps` patterns
lay ranks out on 1-/2-/3-D grids and need the rank ↔ coordinate mapping
and neighbor shifts, without any wire traffic (topologies are metadata
in MPICH too unless reorder is requested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = ["dims_create", "CartTopology"]


def dims_create(n_ranks: int, ndims: int) -> Tuple[int, ...]:
    """Balanced factorization of ``n_ranks`` over ``ndims`` dimensions.

    Mirrors ``MPI_Dims_create``'s contract: the product of the returned
    dims equals ``n_ranks`` and the dims are as close to each other as
    possible, sorted non-increasing (the MPI standard's ordering).
    """
    if n_ranks < 1 or ndims < 1:
        raise ValueError("need n_ranks >= 1 and ndims >= 1")
    dims = [1] * ndims
    remaining = n_ranks
    # Peel prime factors largest-first onto the currently smallest dim.
    factors: List[int] = []
    f = 2
    while f * f <= remaining:
        while remaining % f == 0:
            factors.append(f)
            remaining //= f
        f += 1
    if remaining > 1:
        factors.append(remaining)
    for factor in sorted(factors, reverse=True):
        dims[dims.index(min(dims))] *= factor
    return tuple(sorted(dims, reverse=True))


@dataclass(frozen=True)
class CartTopology:
    """An ``ndims``-dimensional Cartesian layout of ``prod(dims)`` ranks.

    Row-major rank ordering (last dimension varies fastest), matching
    ``MPI_Cart_rank``'s default.
    """

    dims: Tuple[int, ...]
    periodic: Tuple[bool, ...]

    def __post_init__(self) -> None:
        if not self.dims or any(d < 1 for d in self.dims):
            raise ValueError(f"dims must be positive: {self.dims}")
        if len(self.periodic) != len(self.dims):
            raise ValueError("periodic must match dims in length")

    @classmethod
    def create(
        cls,
        n_ranks: int,
        ndims: int,
        periodic: bool | Sequence[bool] = False,
    ) -> "CartTopology":
        """``MPI_Dims_create`` + ``MPI_Cart_create`` in one step."""
        dims = dims_create(n_ranks, ndims)
        if isinstance(periodic, bool):
            per = (periodic,) * ndims
        else:
            per = tuple(periodic)
        return cls(dims, per)

    @property
    def ndims(self) -> int:
        return len(self.dims)

    @property
    def size(self) -> int:
        n = 1
        for d in self.dims:
            n *= d
        return n

    def coords(self, rank: int) -> Tuple[int, ...]:
        """``MPI_Cart_coords``: rank → coordinates."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range [0, {self.size})")
        out = []
        for d in reversed(self.dims):
            out.append(rank % d)
            rank //= d
        return tuple(reversed(out))

    def rank_of(self, coords: Sequence[int]) -> int:
        """``MPI_Cart_rank``: coordinates → rank (periodic wrap applied)."""
        if len(coords) != self.ndims:
            raise ValueError("coordinate dimensionality mismatch")
        rank = 0
        for dim, (c, d, per) in enumerate(
            zip(coords, self.dims, self.periodic)
        ):
            if per:
                c %= d
            elif not 0 <= c < d:
                raise ValueError(
                    f"coordinate {c} out of range for non-periodic dim "
                    f"{dim} of extent {d}"
                )
            rank = rank * d + c
        return rank

    def shift(self, rank: int, dim: int, disp: int) -> Optional[int]:
        """``MPI_Cart_shift``: the neighbor ``disp`` steps along ``dim``,
        or ``None`` at a non-periodic boundary (``MPI_PROC_NULL``)."""
        if not 0 <= dim < self.ndims:
            raise ValueError(f"dim {dim} out of range")
        coords = list(self.coords(rank))
        coords[dim] += disp
        if not self.periodic[dim] and not 0 <= coords[dim] < self.dims[dim]:
            return None
        return self.rank_of(coords)

    def neighbors(self, rank: int) -> List[Tuple[int, int, int]]:
        """All face neighbors of ``rank`` as ``(dim, disp, neighbor)``
        triples with ``disp`` in ``(-1, +1)``, self-links excluded."""
        out = []
        for dim in range(self.ndims):
            for disp in (-1, 1):
                nbr = self.shift(rank, dim, disp)
                if nbr is not None and nbr != rank:
                    out.append((dim, disp, nbr))
        return out
