"""Receive status objects (the simulated ``MPI_Status``)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Status", "ANY_SOURCE", "ANY_TAG"]

#: Wildcard source for receives.
ANY_SOURCE = -1
#: Wildcard tag for receives.
ANY_TAG = -1


@dataclass(frozen=True)
class Status:
    """Completion metadata of a receive."""

    source: int
    tag: int
    nbytes: int

    def count(self, itemsize: int = 1) -> int:
        """Received element count for a given item size."""
        if itemsize <= 0:
            raise ValueError("itemsize must be positive")
        return self.nbytes // itemsize
