"""Per-rank runtime: packet dispatch, send/receive engines, protocols.

One :class:`RankRuntime` exists per simulated MPI process.  It owns the
rank's NIC, the per-VCI matching engines, and the protocol state machines
(eager and rendezvous).  Higher layers (point-to-point, RMA, partitioned)
build on the primitives here:

* :meth:`RankRuntime.start_send` / :meth:`RankRuntime.start_recv` —
  initiate transfers in the calling process's timeline (the caller pays
  posting costs, including VCI-lock contention);
* control-packet handlers registered via :meth:`register_ctrl_handler`
  (used by RMA, barriers, and the partitioned protocols).

Progress model
--------------
Incoming packets are processed by each VCI's RX loop (asynchronous
progress, as with a dedicated progress thread or hardware offload —
cf. Casper [11] in the paper).  ``MPI_Wait`` therefore only blocks on
completion events; receive-side per-message costs are paid in the RX
loops, serialized per VCI.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

import numpy as np

from ..net import Nic, Packet, PacketKind, Protocol
from ..sim import Environment, Tracer
from .cvars import Cvars
from .errors import MPIError, TruncationError
from .matching import MatchKey, MatchingEngine, PostedRecv, UnexpectedMsg
from .status import Status

__all__ = ["RankRuntime"]

#: User tags must stay below this; internal traffic uses tags above it.
TAG_UB = 1 << 20
#: Internal tag block for barrier tokens.
BARRIER_TAG = TAG_UB + 0x100
#: Base of the internal tag space reserved for partitioned messages.
PART_TAG_BASE = TAG_UB + 0x10000


class RankRuntime:
    """The MPI runtime state of one rank."""

    def __init__(
        self,
        world: "Any",
        rank: int,
        nic: Nic,
    ):
        self.world = world
        self.rank = rank
        self.nic = nic
        self.env: Environment = world.env
        self.params = world.params
        self.cvars: Cvars = world.cvars
        self.tracer: Tracer = world.tracer
        self.matching = [MatchingEngine() for _ in range(nic.n_vcis)]
        #: Rendezvous sends awaiting CTS, by request id.
        self._pending_sends: Dict[int, Any] = {}
        #: Rendezvous receives awaiting data, by request id.
        self._pending_recvs: Dict[int, Any] = {}
        #: Handlers for control packets, by ``header['op']``.
        self._ctrl_handlers: Dict[str, Callable[[Packet], None]] = {}
        #: Handlers for AM packets, by ``header['op']``.
        self._am_handlers: Dict[str, Callable[[Packet], None]] = {}
        #: Partitioned requests created per destination rank (tag budget).
        self.part_requests_per_dest: Dict[int, int] = {}
        #: Next free internal partitioned tag per destination rank.
        self._part_tag_next: Dict[int, int] = {}
        nic.set_handler(self._handle_packet)
        # Sent/received message counters by kind (for tests & reports).
        self.tx_counters: Dict[str, int] = {}
        self.rx_counters: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_ctrl_handler(self, op: str, fn: Callable[[Packet], None]) -> None:
        """Register a handler for CTRL/RMA_CTRL packets with ``op``."""
        if op in self._ctrl_handlers:
            raise MPIError(f"duplicate ctrl handler {op!r}")
        self._ctrl_handlers[op] = fn

    def register_am_handler(self, op: str, fn: Callable[[Packet], None]) -> None:
        """Register a handler for AM packets with ``op``."""
        if op in self._am_handlers:
            raise MPIError(f"duplicate AM handler {op!r}")
        self._am_handlers[op] = fn

    # ------------------------------------------------------------------
    # tag management for partitioned traffic
    # ------------------------------------------------------------------
    def alloc_part_tags(self, dest: int, count: int) -> Optional[int]:
        """Reserve ``count`` internal tags for partitioned traffic to
        ``dest``; returns the base tag, or ``None`` when the reserved
        space is exhausted (the caller then falls back to the AM path,
        §3.2.1)."""
        used = self._part_tag_next.get(dest, 0)
        if used + count > self.cvars.part_reserved_tags:
            return None
        self._part_tag_next[dest] = used + count
        self.part_requests_per_dest[dest] = (
            self.part_requests_per_dest.get(dest, 0) + 1
        )
        return PART_TAG_BASE + used

    # ------------------------------------------------------------------
    # send engine
    # ------------------------------------------------------------------
    def start_send(self, sreq) -> Any:
        """Generator: initiate ``sreq`` in the caller's timeline.

        Eager (short/bcopy) sends complete locally once posted;
        rendezvous (zcopy) sends complete when the data has been injected
        after the CTS arrives.
        """
        p = self.params
        proto = p.protocol_for(sreq.nbytes)
        payload = None
        if self.cvars.verify_payloads and sreq.data is not None:
            payload = np.array(sreq.data, dtype=np.uint8, copy=True).ravel()
        header = {
            "ctx": sreq.context_id,
            "tag": sreq.tag,
            "sreq": sreq.rid,
            "nbytes": sreq.nbytes,
        }
        dst_vci = getattr(sreq, "dst_vci", None)
        if dst_vci is None:
            dst_vci = sreq.vci
        if proto is Protocol.ZCOPY:
            self._pending_sends[sreq.rid] = sreq
            rts = Packet(
                kind=PacketKind.RTS,
                src=self.rank,
                dst=sreq.dest,
                nbytes=0,
                src_vci=sreq.vci,
                dst_vci=dst_vci,
                header=header,
            )
            self._count_tx(PacketKind.RTS)
            yield from self.nic.post(sreq.vci, rts, p.post_overhead)
            sreq._rdv_payload = payload
            return
        copy_bytes = sreq.nbytes if proto is Protocol.BCOPY else 0
        pkt = Packet(
            kind=PacketKind.EAGER,
            src=self.rank,
            dst=sreq.dest,
            nbytes=sreq.nbytes,
            src_vci=sreq.vci,
            dst_vci=dst_vci,
            header=header,
            payload=payload,
        )
        self._count_tx(PacketKind.EAGER)
        yield from self.nic.post(sreq.vci, pkt, p.post_overhead, copy_bytes)
        sreq.complete(Status(self.rank, sreq.tag, sreq.nbytes))

    def _send_rdv_data(self, sreq, rreq_id: int):
        """Process body: inject the rendezvous payload after CTS."""
        pkt = Packet(
            kind=PacketKind.RDMA_DATA,
            src=self.rank,
            dst=sreq.dest,
            nbytes=sreq.nbytes,
            src_vci=sreq.vci,
            dst_vci=sreq.vci,
            header={"rreq": rreq_id, "tag": sreq.tag, "src": self.rank,
                    "nbytes": sreq.nbytes},
            payload=getattr(sreq, "_rdv_payload", None),
        )
        self._count_tx(PacketKind.RDMA_DATA)
        yield from self.nic.post(sreq.vci, pkt, self.params.post_overhead)
        sreq.complete(Status(self.rank, sreq.tag, sreq.nbytes))

    # ------------------------------------------------------------------
    # receive engine
    # ------------------------------------------------------------------
    def start_recv(self, rreq) -> Any:
        """Generator: post ``rreq``; matches the unexpected queue first."""
        p = self.params
        if p.recv_post_overhead > 0:
            yield self.env.timeout(p.recv_post_overhead)
        key = MatchKey(rreq.context_id, rreq.source, rreq.tag)
        engine = self.matching[rreq.vci % len(self.matching)]
        msg = engine.post_recv(PostedRecv(key, rreq, self.env.now))
        if msg is None:
            return
        pkt: Packet = msg.packet
        if pkt.kind == PacketKind.EAGER:
            # Unexpected eager data sits in a temp buffer; pay the copy-out.
            if pkt.nbytes > 0:
                yield self.env.timeout(p.copy_time(pkt.nbytes))
            self._deliver_into(rreq, pkt)
            rreq.complete(Status(pkt.src, pkt.header["tag"], pkt.nbytes))
        elif pkt.kind == PacketKind.RTS:
            yield from self._answer_rts(rreq, pkt)
        else:  # pragma: no cover - queue only holds EAGER/RTS
            raise MPIError(f"unexpected queued packet kind {pkt.kind}")

    def _answer_rts(self, rreq, rts: Packet):
        """Generator: reply CTS for a matched rendezvous send."""
        if rts.header["nbytes"] > rreq.nbytes:
            raise TruncationError(
                f"rank {self.rank}: rendezvous message of {rts.header['nbytes']} B "
                f"for a {rreq.nbytes} B receive"
            )
        self._pending_recvs[rreq.rid] = rreq
        cts = Packet(
            kind=PacketKind.CTS,
            src=self.rank,
            dst=rts.src,
            nbytes=0,
            src_vci=rreq.vci,
            dst_vci=rts.src_vci,
            header={"sreq": rts.header["sreq"], "rreq": rreq.rid},
        )
        self._count_tx(PacketKind.CTS)
        yield from self.nic.post(rreq.vci, cts, self.params.ctrl_overhead)

    def _deliver_into(self, rreq, pkt: Packet) -> None:
        """Copy a verified payload into the receive buffer, if any."""
        if pkt.payload is not None and rreq.buffer is not None:
            flat = rreq.buffer.reshape(-1).view(np.uint8)
            if flat.nbytes < pkt.nbytes:
                raise TruncationError(
                    f"rank {self.rank}: {pkt.nbytes} B into a "
                    f"{flat.nbytes} B buffer"
                )
            offset = pkt.header.get("offset", 0)
            flat[offset : offset + pkt.nbytes] = pkt.payload

    # ------------------------------------------------------------------
    # low-level helpers for higher layers
    # ------------------------------------------------------------------
    def post_ctrl(
        self,
        dest: int,
        op: str,
        vci: int = 0,
        dst_vci: Optional[int] = None,
        kind: str = PacketKind.CTRL,
        nbytes: int = 0,
        payload: Optional[np.ndarray] = None,
        **fields: Any,
    ):
        """Generator: post a control packet (``header['op'] = op``)."""
        pkt = Packet(
            kind=kind,
            src=self.rank,
            dst=dest,
            nbytes=nbytes,
            src_vci=vci,
            dst_vci=vci if dst_vci is None else dst_vci,
            header={"op": op, **fields},
            payload=payload,
        )
        self._count_tx(kind)
        base = (
            self.params.ctrl_overhead
            if kind in (PacketKind.CTRL, PacketKind.RMA_CTRL)
            else self.params.post_overhead
        )
        copy_bytes = nbytes if kind == PacketKind.AM else 0
        yield from self.nic.post(vci, pkt, base, copy_bytes)

    def spawn(self, generator) -> Any:
        """Launch a runtime-side process (e.g. deferred packet injection)."""
        return self.env.process(generator)

    # ------------------------------------------------------------------
    # packet dispatch (called from VCI RX loops, after RX costs)
    # ------------------------------------------------------------------
    def _handle_packet(self, pkt: Packet) -> None:
        self._count_rx(pkt.kind)
        kind = pkt.kind
        if kind == PacketKind.EAGER:
            self._on_eager(pkt)
        elif kind == PacketKind.RTS:
            self._on_rts(pkt)
        elif kind == PacketKind.CTS:
            self._on_cts(pkt)
        elif kind == PacketKind.RDMA_DATA:
            self._on_rdma_data(pkt)
        elif kind in (PacketKind.CTRL, PacketKind.RMA_CTRL, PacketKind.RMA_PUT):
            op = pkt.header.get("op")
            handler = self._ctrl_handlers.get(op)
            if handler is None:
                raise MPIError(f"rank {self.rank}: no handler for ctrl op {op!r}")
            handler(pkt)
        elif kind == PacketKind.AM:
            op = pkt.header.get("op")
            handler = self._am_handlers.get(op)
            if handler is None:
                raise MPIError(f"rank {self.rank}: no handler for AM op {op!r}")
            handler(pkt)
        else:  # pragma: no cover - all kinds covered
            raise MPIError(f"rank {self.rank}: unhandled packet kind {kind!r}")

    def _on_eager(self, pkt: Packet) -> None:
        h = pkt.header
        key = MatchKey(h["ctx"], pkt.src, h["tag"])
        engine = self.matching[pkt.dst_vci % len(self.matching)]
        entry = engine.match_arrival(key)
        if entry is None:
            engine.add_unexpected(UnexpectedMsg(key, pkt, self.env.now))
            return
        rreq = entry.request
        if pkt.nbytes > rreq.nbytes:
            raise TruncationError(
                f"rank {self.rank}: {pkt.nbytes} B message for a "
                f"{rreq.nbytes} B receive"
            )
        self._deliver_into(rreq, pkt)
        rreq.complete(Status(pkt.src, h["tag"], pkt.nbytes))

    def _on_rts(self, pkt: Packet) -> None:
        h = pkt.header
        key = MatchKey(h["ctx"], pkt.src, h["tag"])
        engine = self.matching[pkt.dst_vci % len(self.matching)]
        entry = engine.match_arrival(key)
        if entry is None:
            engine.add_unexpected(UnexpectedMsg(key, pkt, self.env.now))
            return
        # Matched: the progress engine answers the CTS.
        self.spawn(self._answer_rts(entry.request, pkt))

    def _on_cts(self, pkt: Packet) -> None:
        sreq = self._pending_sends.pop(pkt.header["sreq"])
        self.spawn(self._send_rdv_data(sreq, pkt.header["rreq"]))

    def _on_rdma_data(self, pkt: Packet) -> None:
        rreq = self._pending_recvs.pop(pkt.header["rreq"])
        self._deliver_into(rreq, pkt)
        rreq.complete(Status(pkt.src, pkt.header["tag"], pkt.nbytes))

    # ------------------------------------------------------------------
    def _count_tx(self, kind: str) -> None:
        self.tx_counters[kind] = self.tx_counters.get(kind, 0) + 1

    def _count_rx(self, kind: str) -> None:
        self.rx_counters[kind] = self.rx_counters.get(kind, 0) + 1

    def __repr__(self) -> str:  # pragma: no cover - debug repr
        return f"<RankRuntime rank={self.rank} vcis={self.nic.n_vcis}>"
