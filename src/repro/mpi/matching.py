"""The tag-matching engine: posted-receive and unexpected-message queues.

MPICH keeps one pair of matching queues per VCI; the match key is
``(context_id, source, tag)`` where receives may use wildcards.  Order
matters: MPI's non-overtaking rule requires that, among messages that
could match the same receive, the earliest posted/arrived wins — both
queues here are strictly FIFO.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Optional

from .status import ANY_SOURCE, ANY_TAG

__all__ = ["MatchKey", "PostedRecv", "UnexpectedMsg", "MatchingEngine"]


@dataclass(frozen=True)
class MatchKey:
    """Envelope of a message or receive used for matching."""

    context_id: int
    source: int
    tag: int

    def matches(self, incoming: "MatchKey") -> bool:
        """Does a posted receive with this key accept ``incoming``?

        ``self`` is the receive side (may hold wildcards); ``incoming``
        is the message envelope (never wildcarded).
        """
        if self.context_id != incoming.context_id:
            return False
        if self.source != ANY_SOURCE and self.source != incoming.source:
            return False
        if self.tag != ANY_TAG and self.tag != incoming.tag:
            return False
        return True


@dataclass
class PostedRecv:
    """A receive sitting in the posted queue."""

    key: MatchKey
    request: Any  # RecvRequest-like; not typed to avoid an import cycle
    posted_at: float = 0.0


@dataclass
class UnexpectedMsg:
    """A message (or rendezvous RTS) that arrived before its receive."""

    key: MatchKey
    packet: Any
    arrived_at: float = 0.0
    fields: dict = field(default_factory=dict)


class MatchingEngine:
    """FIFO posted/unexpected queues for one VCI of one rank."""

    def __init__(self) -> None:
        self._posted: Deque[PostedRecv] = deque()
        self._unexpected: Deque[UnexpectedMsg] = deque()
        self.matched_posted = 0
        self.matched_unexpected = 0

    # -- introspection ----------------------------------------------------------
    @property
    def posted_count(self) -> int:
        return len(self._posted)

    @property
    def unexpected_count(self) -> int:
        return len(self._unexpected)

    # -- receive side ---------------------------------------------------------------
    def post_recv(self, entry: PostedRecv) -> Optional[UnexpectedMsg]:
        """Try to satisfy ``entry`` from the unexpected queue.

        Returns the matching unexpected message (removing it) or, if none
        matches, appends the receive to the posted queue and returns
        ``None``.
        """
        for i, msg in enumerate(self._unexpected):
            if entry.key.matches(msg.key):
                del self._unexpected[i]
                self.matched_unexpected += 1
                return msg
        self._posted.append(entry)
        return None

    def cancel_recv(self, request: Any) -> bool:
        """Remove a posted receive; True if found."""
        for i, entry in enumerate(self._posted):
            if entry.request is request:
                del self._posted[i]
                return True
        return False

    # -- arrival side ------------------------------------------------------------------
    def match_arrival(self, key: MatchKey) -> Optional[PostedRecv]:
        """Try to satisfy an incoming envelope from the posted queue.

        Returns the matching posted receive (removing it) or ``None``.
        The caller is responsible for queueing the message as unexpected
        when ``None`` is returned (it owns the packet payload).
        """
        for i, entry in enumerate(self._posted):
            if entry.key.matches(key):
                del self._posted[i]
                self.matched_posted += 1
                return entry
        return None

    def add_unexpected(self, msg: UnexpectedMsg) -> None:
        self._unexpected.append(msg)

    def __repr__(self) -> str:  # pragma: no cover - debug repr
        return (
            f"<MatchingEngine posted={len(self._posted)} "
            f"unexpected={len(self._unexpected)}>"
        )
