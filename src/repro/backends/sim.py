"""The discrete-event simulation backend (the historical default)."""

from __future__ import annotations

from typing import Any

from .base import BACKEND_SIM, Backend, register_backend

__all__ = ["SimBackend"]


@register_backend
class SimBackend(Backend):
    """Runs a scenario through the full simulator.

    ``bench`` scenarios go to :func:`repro.bench.harness.run_benchmark`
    (the two-rank Fig. 3 harness), ``pattern`` scenarios to
    :func:`repro.apps.base.run_pattern` (the N-rank application
    harness).  Every point builds its own
    :class:`~repro.mpi.world.MPIWorld`, so simulated batches are
    embarrassingly parallel — the executor fans them out over a
    process pool in per-backend *chunks*.  The inherited
    :meth:`~repro.backends.base.Backend.run_batch` (a :meth:`run` loop)
    is exactly right here: each point is its own discrete-event run,
    and there is nothing to vectorize across points.
    """

    name = BACKEND_SIM
    inline = False

    def run(self, scenario: Any) -> Any:
        from ..runner.scenario import KIND_BENCH, KIND_PATTERN

        if scenario.kind == KIND_BENCH:
            from ..bench.harness import run_benchmark

            return run_benchmark(scenario.spec)
        if scenario.kind == KIND_PATTERN:
            from ..apps.base import run_pattern

            return run_pattern(scenario.spec)
        raise ValueError(f"unknown scenario kind {scenario.kind!r}")
