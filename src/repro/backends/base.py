"""The :class:`Backend` protocol: pluggable scenario execution.

A backend turns a :class:`~repro.runner.scenario.Scenario` into its
native result object.  Two implementations ship with the repo:

* :class:`~repro.backends.sim.SimBackend` — full discrete-event
  simulation (the historical execution path);
* :class:`~repro.backends.analytic.AnalyticBackend` — the paper's
  closed-form model extended to every approach and pattern; points cost
  microseconds instead of seconds, making million-point grids feasible.

The backend is part of a scenario's *identity*: it is serialized with
the spec and baked into the content hash, so a
:class:`~repro.runner.store.ResultStore` can never confuse an analytic
record with a simulated one.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Type

__all__ = [
    "Backend",
    "BACKENDS",
    "BACKEND_SIM",
    "BACKEND_ANALYTIC",
    "register_backend",
    "get_backend",
    "backend_names",
]

#: Canonical backend names.
BACKEND_SIM = "sim"
BACKEND_ANALYTIC = "analytic"


class Backend:
    """Base class for execution backends.

    Subclasses override :meth:`run` and (where coverage is partial)
    :meth:`supports`.  Backends are stateless; one shared instance per
    registered class is handed out by :func:`get_backend`.
    """

    #: Registry key (also the ``Scenario.backend`` tag).
    name = "abstract"
    #: True when a batch of scenarios is cheap enough to always run
    #: in-process: the executor skips the multiprocessing pool for
    #: inline backends (fork/pickle overhead would dwarf the work).
    inline = False

    def supports(self, scenario: Any) -> bool:
        """Can this backend execute ``scenario``?  Default: yes."""
        return True

    def run(self, scenario: Any) -> Any:
        """Execute ``scenario``, returning its native result object
        (:class:`~repro.bench.harness.BenchResult` or
        :class:`~repro.apps.base.PatternResult`)."""
        raise NotImplementedError

    def run_batch(self, scenarios: Sequence[Any]) -> List[Any]:
        """Execute a batch, returning native results in input order.

        The default is the point-at-a-time loop (what the simulator
        needs: every scenario is its own discrete-event run).  Backends
        whose per-point math is cheap override this with a genuinely
        batched implementation — the analytic backend evaluates the
        whole batch through the vectorized model kernel
        (:mod:`repro.model.vector`) — under the contract that
        ``run_batch(xs)[i]`` is identical to ``run(xs[i])``
        (bit-for-bit; asserted by the batch-equivalence tests).
        """
        return [self.run(scenario) for scenario in scenarios]

    def __repr__(self) -> str:  # pragma: no cover - debug repr
        return f"<{type(self).__name__} {self.name!r}>"


#: Registry: backend name -> class.
BACKENDS: Dict[str, Type[Backend]] = {}
_instances: Dict[str, Backend] = {}


def register_backend(cls: Type[Backend]) -> Type[Backend]:
    """Class decorator adding a backend to the registry."""
    if cls.name in BACKENDS:
        raise ValueError(f"duplicate backend name {cls.name!r}")
    BACKENDS[cls.name] = cls
    return cls


def backend_names() -> list:
    """Registered backend names, sorted."""
    return sorted(BACKENDS)


def get_backend(name: str) -> Backend:
    """The shared instance of the backend registered as ``name``."""
    if name not in BACKENDS:
        raise KeyError(
            f"unknown backend {name!r}; choose from {backend_names()}"
        )
    if name not in _instances:
        _instances[name] = BACKENDS[name]()
    return _instances[name]
