"""Backend self-benchmark: the ``BENCH_backends.json`` artifact.

Times identical scenario grids under the simulation and the analytic
backend at several grid sizes, so the analytic speedup — the whole
point of the multi-backend refactor — is a recorded, regenerable number
instead of a claim.

Run:  ``python -m repro backend-bench [--json PATH]``
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import List

from .base import BACKEND_ANALYTIC, BACKEND_SIM

__all__ = ["DEFAULT_JSON_PATH", "benchmark_backends", "scaling_grids"]

#: Default persistence target (picked up by the perf trajectory).
DEFAULT_JSON_PATH = "BENCH_backends.json"

_SCHEMA = "repro.backends.bench/v1"

#: Grid scales benchmarked: approaches × sizes per scale.
_SIZES_PER_SCALE = (2, 4, 8)


def scaling_grids() -> List[List]:
    """Fixed bench grids of increasing size (all 8 approaches, N=4)."""
    from ..runner.scenario import ScenarioGrid

    grids = []
    for n_sizes in _SIZES_PER_SCALE:
        sizes = [1 << (10 + 2 * i) for i in range(n_sizes)]
        grid = ScenarioGrid(
            "bench",
            base={"n_threads": 4, "theta": 1, "iterations": 10},
            axes={
                "approach": [
                    "pt2pt_single",
                    "pt2pt_many",
                    "pt2pt_part",
                    "pt2pt_part_old",
                    "rma_single_passive",
                    "rma_many_passive",
                    "rma_single_active",
                    "rma_many_active",
                ],
                "total_bytes": sizes,
            },
        )
        grids.append(grid.expand())
    return grids


def _time_backend(scenarios, backend: str) -> float:
    from ..runner.executor import run_scenarios
    from ..runner.scenario import Scenario

    batch = [
        Scenario(kind=s.kind, spec=s.spec, backend=backend)
        for s in scenarios
    ]
    t0 = time.perf_counter()
    run_scenarios(batch, jobs=1)
    return time.perf_counter() - t0


def benchmark_backends(path: str | Path = DEFAULT_JSON_PATH) -> dict:
    """Time sim vs analytic on each scaling grid and persist the result."""
    records = []
    grids = scaling_grids()
    # Warm both backends' lazy imports outside the timed regions: the
    # first grid would otherwise be charged one-time import cost.  The
    # analytic warmup uses the largest grid so the *vectorized* batch
    # path (taken above VECTOR_MIN_BATCH) loads too, not just the
    # scalar loop.
    _time_backend(grids[0][:1], BACKEND_SIM)
    _time_backend(grids[-1], BACKEND_ANALYTIC)
    for scenarios in grids:
        sim_wall = _time_backend(scenarios, BACKEND_SIM)
        analytic_wall = _time_backend(scenarios, BACKEND_ANALYTIC)
        records.append(
            {
                "n_scenarios": len(scenarios),
                "sim_wall_s": round(sim_wall, 6),
                "analytic_wall_s": round(analytic_wall, 6),
                # Clamp the divisor so a sub-resolution analytic wall
                # still yields a number min() can take.
                "speedup": round(sim_wall / max(analytic_wall, 1e-9), 1),
            }
        )
    payload = {
        "schema": _SCHEMA,
        "grid": "8 approaches x {2,4,8} sizes (N=4, theta=1, iters=10)",
        "python": platform.python_version(),
        "grids": records,
        "min_speedup": min(r["speedup"] for r in records),
    }
    target = Path(path)
    target.write_text(json.dumps(payload, indent=2) + "\n")
    return payload
