"""The analytic execution backend: closed-form results in microseconds.

Maps a scenario through the extended performance model
(:func:`repro.model.approaches.predict_bench_time` /
:func:`repro.model.patterns.predict_pattern_time`) and wraps the
prediction in the same native result object the simulator produces, so
every consumer — sweeps, figures, stores, reports — works unchanged.

The model is deterministic, so a point's ``iterations`` samples are all
identical (zero variance, like a converged simulated run) and the whole
run never instantiates a simulation :class:`~repro.sim.core.Environment`
(asserted by the backend test suite via
``Environment.instances_created``).
"""

from __future__ import annotations

from typing import Any

from .base import BACKEND_ANALYTIC, Backend, register_backend

__all__ = ["AnalyticBackend"]


@register_backend
class AnalyticBackend(Backend):
    """Runs a scenario through the closed-form model."""

    name = BACKEND_ANALYTIC
    inline = True

    def supports(self, scenario: Any) -> bool:
        from ..runner.scenario import KIND_BENCH, KIND_PATTERN

        if scenario.kind == KIND_BENCH:
            from ..model.approaches import APPROACH_PREDICTORS

            return scenario.spec.approach in APPROACH_PREDICTORS
        return scenario.kind == KIND_PATTERN

    def run(self, scenario: Any) -> Any:
        from ..runner.scenario import KIND_BENCH, KIND_PATTERN

        if scenario.kind == KIND_BENCH:
            return self._run_bench(scenario.spec)
        if scenario.kind == KIND_PATTERN:
            return self._run_pattern(scenario.spec)
        raise ValueError(f"unknown scenario kind {scenario.kind!r}")

    # ------------------------------------------------------------------
    def _run_bench(self, spec: Any) -> Any:
        from ..bench.harness import BenchResult
        from ..bench.stats import summarize
        from ..model.approaches import predict_bench_time

        prediction = predict_bench_time(spec)
        times = [prediction.time] * spec.iterations
        return BenchResult(
            spec=spec,
            times=times,
            stats=summarize(times),
            retries=0,
            verified=True,
        )

    def _run_pattern(self, config: Any) -> Any:
        from ..apps.base import PatternResult, build_pattern
        from ..bench.stats import summarize
        from ..model.patterns import predict_pattern_time

        pattern = build_pattern(config)
        prediction = predict_pattern_time(config, pattern=pattern)
        times = [prediction.time] * config.iterations
        return PatternResult(
            config=config,
            times=times,
            stats=summarize(times),
            bytes_per_iteration=pattern.bytes_per_iteration(),
            n_links=len(pattern.links()),
        )
