"""The analytic execution backend: closed-form results in microseconds.

Maps a scenario through the extended performance model
(:func:`repro.model.approaches.predict_bench_time` /
:func:`repro.model.patterns.predict_pattern_time`, including the
injected-noise mean-shift correction for patterns) and wraps the
prediction in the same native result object the simulator produces, so
every consumer — sweeps, figures, stores, reports — works unchanged.

Campaign chunks bypass even :meth:`AnalyticBackend.run_batch`: the
columns-first entry points
(:func:`repro.model.vector.bench_times_from_columns` /
:func:`repro.model.vector.pattern_times_from_columns`) take decoded
grid-axis columns directly, so no scenario or spec object exists on
that path at all.

The model is deterministic, so a point's ``iterations`` samples are all
identical (zero variance, like a converged simulated run) and the whole
run never instantiates a simulation :class:`~repro.sim.core.Environment`
(asserted by the backend test suite via
``Environment.instances_created``).
"""

from __future__ import annotations

from typing import Any

from .base import BACKEND_ANALYTIC, Backend, register_backend

__all__ = ["AnalyticBackend"]


@register_backend
class AnalyticBackend(Backend):
    """Runs a scenario through the closed-form model."""

    name = BACKEND_ANALYTIC
    inline = True

    def supports(self, scenario: Any) -> bool:
        from ..runner.scenario import KIND_BENCH, KIND_PATTERN

        if scenario.kind == KIND_BENCH:
            from ..model.approaches import APPROACH_PREDICTORS

            return scenario.spec.approach in APPROACH_PREDICTORS
        if scenario.kind == KIND_PATTERN:
            from ..apps.base import PATTERNS

            return scenario.spec.pattern in PATTERNS
        return False

    def run(self, scenario: Any) -> Any:
        from ..runner.scenario import KIND_BENCH, KIND_PATTERN

        if scenario.kind == KIND_BENCH:
            return self._run_bench(scenario.spec)
        if scenario.kind == KIND_PATTERN:
            return self._run_pattern(scenario.spec)
        raise ValueError(f"unknown scenario kind {scenario.kind!r}")

    #: Below this batch size the scalar loop wins: the kernel's fixed
    #: per-group numpy overhead (~1-2 ms across 8 approach groups)
    #: exceeds ~30 µs/point scalar dispatch until roughly this many
    #: points.  Both paths are bitwise-identical (asserted by the
    #: equivalence suite), so the cutover is purely a speed choice.
    VECTOR_MIN_BATCH = 64

    def run_batch(self, scenarios: Any) -> list:
        """Evaluate the whole batch through the vectorized model kernel.

        One :func:`~repro.model.vector.bench_batch_times` /
        :func:`~repro.model.vector.pattern_batch` call per kind replaces
        per-point predictor dispatch; results are identical to the
        per-point :meth:`run` path bit for bit (the kernel mirrors the
        scalar formulas operation-for-operation, and the equivalence
        suite asserts it).  Batches below :data:`VECTOR_MIN_BATCH`
        take the scalar loop instead — same bits, less overhead.
        """
        if len(scenarios) < self.VECTOR_MIN_BATCH:
            return [self.run(scenario) for scenario in scenarios]
        from ..bench.harness import BenchResult
        from ..apps.base import PatternResult
        from ..bench.stats import summarize
        from ..model.vector import bench_batch_times, pattern_batch
        from ..runner.scenario import KIND_BENCH, KIND_PATTERN

        results: list = [None] * len(scenarios)
        bench_idx = [
            i for i, s in enumerate(scenarios) if s.kind == KIND_BENCH
        ]
        pattern_idx = [
            i for i, s in enumerate(scenarios) if s.kind == KIND_PATTERN
        ]
        if len(bench_idx) + len(pattern_idx) != len(scenarios):
            unknown = next(
                s for s in scenarios
                if s.kind not in (KIND_BENCH, KIND_PATTERN)
            )
            raise ValueError(f"unknown scenario kind {unknown.kind!r}")
        if bench_idx:
            specs = [scenarios[i].spec for i in bench_idx]
            for i, spec, time in zip(
                bench_idx, specs, bench_batch_times(specs)
            ):
                times = [float(time)] * spec.iterations
                results[i] = BenchResult(
                    spec=spec,
                    times=times,
                    stats=summarize(times),
                    retries=0,
                    verified=True,
                )
        if pattern_idx:
            configs = [scenarios[i].spec for i in pattern_idx]
            batch = pattern_batch(configs)
            for j, i in enumerate(pattern_idx):
                config = configs[j]
                times = [float(batch.times[j])] * config.iterations
                results[i] = PatternResult(
                    config=config,
                    times=times,
                    stats=summarize(times),
                    bytes_per_iteration=int(batch.bytes_per_iteration[j]),
                    n_links=int(batch.n_links[j]),
                )
        return results

    # ------------------------------------------------------------------
    def _run_bench(self, spec: Any) -> Any:
        from ..bench.harness import BenchResult
        from ..bench.stats import summarize
        from ..model.approaches import predict_bench_time

        prediction = predict_bench_time(spec)
        times = [prediction.time] * spec.iterations
        return BenchResult(
            spec=spec,
            times=times,
            stats=summarize(times),
            retries=0,
            verified=True,
        )

    def _run_pattern(self, config: Any) -> Any:
        from ..apps.base import PatternResult, build_pattern
        from ..bench.stats import summarize
        from ..model.patterns import predict_pattern_time

        pattern = build_pattern(config)
        prediction = predict_pattern_time(config, pattern=pattern)
        times = [prediction.time] * config.iterations
        return PatternResult(
            config=config,
            times=times,
            stats=summarize(times),
            bytes_per_iteration=pattern.bytes_per_iteration(),
            n_links=len(pattern.links()),
        )
