"""Pluggable execution backends behind one :class:`Backend` protocol.

Every grid point in the reproduction executes through a backend:

* ``sim`` (:class:`SimBackend`) — the full discrete-event simulator;
* ``analytic`` (:class:`AnalyticBackend`) — the paper's closed-form
  model extended to all 8 approaches and every application pattern;
  points cost microseconds, so million-point grids become feasible.

``cross_validate`` runs grids under both and enforces the documented
per-approach agreement tolerances (``TOLERANCES``);
``benchmark_backends`` records the analytic speedup in
``BENCH_backends.json``.

Quick start
-----------
>>> from repro.bench import BenchSpec
>>> from repro.runner import run_specs
>>> results = run_specs(
...     [BenchSpec(approach="pt2pt_part", total_bytes=1 << 20)],
...     backend="analytic",
... )
>>> results[0].mean_us  # doctest: +SKIP
46.63
"""

from .analytic import AnalyticBackend
from .base import (
    BACKEND_ANALYTIC,
    BACKEND_SIM,
    BACKENDS,
    Backend,
    backend_names,
    get_backend,
    register_backend,
)
from .benchmark import benchmark_backends
from .crossval import (
    PATTERN_TOLERANCE,
    TOLERANCES,
    CrossPoint,
    CrossValReport,
    compare_bench_sweeps,
    compare_pattern_sweeps,
    cross_validate,
    tolerance_for,
)
from .sim import SimBackend

__all__ = [
    "Backend",
    "BACKENDS",
    "BACKEND_SIM",
    "BACKEND_ANALYTIC",
    "register_backend",
    "get_backend",
    "backend_names",
    "SimBackend",
    "AnalyticBackend",
    "TOLERANCES",
    "PATTERN_TOLERANCE",
    "CrossPoint",
    "CrossValReport",
    "cross_validate",
    "compare_bench_sweeps",
    "compare_pattern_sweeps",
    "tolerance_for",
    "benchmark_backends",
]
