"""Sim ↔ model cross-validation: agreement as an enforced invariant.

The paper's methodology rests on the closed-form model predicting what
the measurements show (§3, Figs. 4/7).  This module turns that claim
into a permanently checked property: run every grid point under both
backends, compare means, and fail when any point's relative error
exceeds its documented tolerance.

Tolerances are *measured*, not aspirational: they were calibrated by
sweeping every figure configuration (all 8 approaches × sizes from 64 B
to 16 MiB × 1/4/32 threads × θ up to 32 × the VCI and aggregation
cvars) and adding headroom over the worst observed error.  The
first-order pattern model is documented at factor-two fidelity — it
ranks approaches and predicts trends, while the per-link queueing
transients of dense topologies (FFT all-to-all) stay with the
simulator.

Run it with ``python -m repro figures --backend both`` (or ``apps
--backend both``); CI gates on a small grid every push.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from .base import BACKEND_ANALYTIC, BACKEND_SIM

__all__ = [
    "TOLERANCES",
    "PATTERN_TOLERANCE",
    "PATTERN_NOISE_TOLERANCE",
    "CrossPoint",
    "CrossValReport",
    "tolerance_for",
    "cross_validate",
    "compare_bench_sweeps",
    "compare_pattern_sweeps",
]

#: Documented per-approach relative-error tolerances of the analytic
#: backend on ``bench`` scenarios (|analytic - sim| / sim).
TOLERANCES: Dict[str, float] = {
    "pt2pt_single": 0.05,
    "pt2pt_many": 0.30,
    "pt2pt_part": 0.35,
    "pt2pt_part_old": 0.10,
    "rma_single_passive": 0.15,
    "rma_many_passive": 0.15,
    "rma_single_active": 0.15,
    "rma_many_active": 0.20,
}

#: Documented tolerance for N-rank application patterns (first-order
#: topology model; see the module docstring).
PATTERN_TOLERANCE = 1.0

#: Documented tolerance for patterns under injected noise
#: (``noise != "none"``).  The first-order mean-shift correction in
#: :mod:`repro.model.patterns` brings noisy points inside the same
#: factor-two band as noise-free ones (worst observed ≈0.67 over a
#: 3-pattern × 5-approach × 3-shape calibration sweep; without the
#: correction, gaps reached ≈5.9) — so noisy points are now held to
#: the same factor-two bound, as a separately-named constant so the
#: two fidelity claims can drift apart if recalibration demands it.
PATTERN_NOISE_TOLERANCE = 1.0


def tolerance_for(scenario: Any) -> float:
    """The documented tolerance for one scenario."""
    if scenario.kind == "bench":
        return TOLERANCES[scenario.spec.approach]
    if getattr(scenario.spec, "noise", "none") != "none":
        return PATTERN_NOISE_TOLERANCE
    return PATTERN_TOLERANCE


def _label(kind: str, spec: Any) -> str:
    if kind == "bench":
        return (
            f"{spec.approach}/{spec.total_bytes}B"
            f"/N{spec.n_threads}/t{spec.theta}"
        )
    return f"{spec.pattern}/{spec.approach}/{spec.msg_bytes}B"


@dataclass(frozen=True)
class CrossPoint:
    """One grid point's sim-vs-model comparison."""

    label: str
    kind: str
    approach: str
    sim_mean: float
    analytic_mean: float
    tolerance: float

    @property
    def rel_error(self) -> float:
        if self.sim_mean == 0:
            return 0.0 if self.analytic_mean == 0 else float("inf")
        return abs(self.analytic_mean - self.sim_mean) / self.sim_mean

    @property
    def ok(self) -> bool:
        return self.rel_error <= self.tolerance


@dataclass
class CrossValReport:
    """Outcome of one cross-validation run."""

    points: List[CrossPoint] = field(default_factory=list)

    @property
    def max_rel_error(self) -> float:
        return max((p.rel_error for p in self.points), default=0.0)

    @property
    def worst(self) -> Optional[CrossPoint]:
        """The point with the largest relative error."""
        return max(
            self.points, key=lambda p: p.rel_error, default=None
        )

    def failures(self) -> List[CrossPoint]:
        return [p for p in self.points if not p.ok]

    @property
    def passed(self) -> bool:
        return not self.failures()

    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """The printable cross-validation report."""
        lines = [
            "Cross-validation: sim vs analytic "
            f"({len(self.points)} points)",
            f"{'point':>44} | {'sim':>11} | {'analytic':>11} | "
            f"{'rel err':>8} | {'tol':>5}",
        ]
        lines.append("-" * len(lines[-1]))
        for p in sorted(self.points, key=lambda q: -q.rel_error):
            mark = "  " if p.ok else " FAIL"
            lines.append(
                f"{p.label:>44} | {p.sim_mean * 1e6:8.2f} us | "
                f"{p.analytic_mean * 1e6:8.2f} us | "
                f"{p.rel_error:7.1%} | {p.tolerance:5.0%}{mark}"
            )
        worst = self.worst
        if worst is not None:
            lines.append(
                f"max relative error: {self.max_rel_error:.1%} "
                f"(worst offender: {worst.label})"
            )
        n_fail = len(self.failures())
        lines.append(
            "PASS: every point within its documented tolerance"
            if self.passed
            else f"FAIL: {n_fail} point(s) beyond tolerance"
        )
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "schema": "repro.backends.crossval/v1",
            "points": [
                {
                    "label": p.label,
                    "kind": p.kind,
                    "approach": p.approach,
                    "sim_mean_s": p.sim_mean,
                    "analytic_mean_s": p.analytic_mean,
                    "rel_error": p.rel_error,
                    "tolerance": p.tolerance,
                    "ok": p.ok,
                }
                for p in self.points
            ],
            "max_rel_error": self.max_rel_error,
            "passed": self.passed,
        }


def compare_bench_sweeps(sim_sweep: Any, analytic_sweep: Any) -> CrossValReport:
    """Cross-validate two :class:`~repro.bench.sweep.SweepResult` runs
    of the same grid (one simulated, one analytic).

    Labels may be cvar variants like ``pt2pt_part(aggr=512)``; the
    tolerance is looked up by the underlying approach name.
    """
    report = CrossValReport()
    for label in sim_sweep.approaches():
        approach = label.split("(")[0]
        for size in sim_sweep.sizes(label):
            report.points.append(
                CrossPoint(
                    label=f"{label}/{size}B",
                    kind="bench",
                    approach=approach,
                    sim_mean=sim_sweep.get(label, size).stats.mean,
                    analytic_mean=analytic_sweep.get(label, size).stats.mean,
                    # Strict lookup, like tolerance_for(): an approach
                    # without a documented tolerance must fail loudly,
                    # not silently inherit the loose pattern bound.
                    tolerance=TOLERANCES[approach],
                )
            )
    return report


def compare_pattern_sweeps(
    sim_sweep: Any, analytic_sweep: Any
) -> CrossValReport:
    """Cross-validate two :class:`~repro.apps.sweep.PatternSweep` runs
    of the same config list."""
    report = CrossValReport()
    for sim_r in sim_sweep.results():
        config = sim_r.config
        ana_r = analytic_sweep.get(config)
        report.points.append(
            CrossPoint(
                label=_label("pattern", config),
                kind="pattern",
                approach=config.approach,
                sim_mean=sim_r.stats.mean,
                analytic_mean=ana_r.stats.mean,
                tolerance=(
                    PATTERN_NOISE_TOLERANCE
                    if getattr(config, "noise", "none") != "none"
                    else PATTERN_TOLERANCE
                ),
            )
        )
    return report


def cross_validate(
    scenarios: Iterable[Any],
    jobs: int = 1,
    store=None,
    resume: bool = False,
) -> CrossValReport:
    """Run every scenario under both backends and compare the means.

    The simulated half goes through the normal executor (so ``jobs``
    fans it out and a store caches it); the analytic half runs inline.
    Incoming scenarios may carry any backend tag — both variants are
    derived from the spec.
    """
    from ..runner.executor import run_scenarios
    from ..runner.scenario import Scenario

    batch = [
        Scenario(kind=s.kind, spec=s.spec, backend=BACKEND_SIM)
        for s in scenarios
    ]
    analytic = [
        Scenario(kind=s.kind, spec=s.spec, backend=BACKEND_ANALYTIC)
        for s in batch
    ]
    sim_results = run_scenarios(
        batch, jobs=jobs, store=store, resume=resume
    ).results
    ana_results = run_scenarios(
        analytic, jobs=1, store=store, resume=resume
    ).results
    report = CrossValReport()
    for scenario, sim_r, ana_r in zip(batch, sim_results, ana_results):
        spec = scenario.spec
        report.points.append(
            CrossPoint(
                label=_label(scenario.kind, spec),
                kind=scenario.kind,
                approach=spec.approach,
                sim_mean=sim_r.stats.mean,
                analytic_mean=ana_r.stats.mean,
                tolerance=tolerance_for(scenario),
            )
        )
    return report
