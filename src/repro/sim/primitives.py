"""Composite events: conjunctions and disjunctions of other events."""

from __future__ import annotations

from typing import Dict, List

from .core import PENDING, Environment, Event, SimulationError

__all__ = ["AllOf", "AnyOf", "Condition"]


class Condition(Event):
    """An event triggered when a predicate over child events is satisfied.

    The condition's value is an ordered dict ``{event: value}`` of the
    child events that had succeeded by the time the condition fired.
    A failing child event fails the whole condition immediately.
    """

    __slots__ = ("_events", "_count")

    #: Subclasses set this: number of successes required to fire.
    def _needed(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def __init__(self, env: Environment, events: List[Event]):
        super().__init__(env)
        for ev in events:
            if ev.env is not env:
                raise SimulationError("events from different environments")
        self._events = list(events)
        self._count = 0
        if not self._events or self._needed() == 0:
            self.succeed(self._collect())
            return
        for ev in self._events:
            if ev.callbacks is None:  # already processed
                self._check(ev)
                if self._value is not PENDING:
                    break
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> Dict[Event, object]:
        # Only *processed* events count: a Timeout holds its value from
        # construction, so checking ``_value`` would claim unfired timeouts.
        return {
            ev: ev._value
            for ev in self._events
            if ev.callbacks is None and ev._ok
        }

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._count >= self._needed():
            self.succeed(self._collect())


class AllOf(Condition):
    """Succeeds when every child event has succeeded."""

    __slots__ = ()

    def _needed(self) -> int:
        return len(self._events)


class AnyOf(Condition):
    """Succeeds as soon as one child event has succeeded."""

    __slots__ = ()

    def _needed(self) -> int:
        return min(1, len(self._events))
