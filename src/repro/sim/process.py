"""Generator-based simulated processes.

A :class:`Process` wraps a Python generator.  The generator ``yield``-s
:class:`~repro.sim.core.Event` objects; the process sleeps until the event
fires, then resumes with the event's value (or has the event's exception
thrown into it).  A process is itself an event that triggers when the
generator returns, making ``yield env.process(...)`` and process joining
natural.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

import itertools

from .core import PENDING, URGENT, Environment, Event, SimulationError

__all__ = ["Process", "Interrupt"]

_process_serials = itertools.count(1)


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    @property
    def cause(self) -> Any:
        """The value passed to :meth:`Process.interrupt`."""
        return self.args[0]


class Process(Event):
    """An active simulation entity driven by a generator.

    Notes
    -----
    The process event succeeds with the generator's return value and fails
    with the exception if the generator raises.  A failure propagates to
    the environment's :meth:`~repro.sim.core.Environment.step` (crashing
    the run) unless some other process waits on this one.
    """

    __slots__ = ("_generator", "_target", "name", "serial")

    def __init__(self, env: Environment, generator: Generator, name: Optional[str] = None):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: Stable unique identity (object ids get recycled by CPython).
        self.serial = next(_process_serials)
        # Kick-start the process at the current time with an initial event.
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        env.schedule(init, priority=URGENT)
        self._target: Optional[Event] = init

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on (or ``None``)."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process as soon as possible.

        Interrupting a completed process is an error; interrupting a
        process twice queues both interrupts.
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        if self.env.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume)
        self.env.schedule(event, priority=URGENT)

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        self.env.active_process = self
        # If we were interrupted, unsubscribe from the event we were
        # genuinely waiting on (it may still fire later; ignore it then).
        if (
            self._target is not None
            and self._target is not event
            and self._target.callbacks is not None
        ):
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None

        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.env.schedule(self)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self.env.schedule(self)
                break

            if not isinstance(next_event, Event):
                error = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                self._ok = False
                self._value = error
                self.env.schedule(self)
                break

            if next_event.callbacks is not None:
                # Pending or triggered-but-unprocessed: subscribe and sleep.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Already processed: consume its value synchronously.
            event = next_event

        self.env.active_process = None

    def __repr__(self) -> str:  # pragma: no cover - debug repr
        state = "alive" if self.is_alive else "finished"
        return f"<Process {self.name!r} {state}>"
