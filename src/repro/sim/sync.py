"""Synchronization primitives for simulated thread teams.

The pipelined-communication benchmark (paper Fig. 3) is structured around
thread barriers; :class:`SimBarrier` is the cyclic barrier used by
:class:`repro.threads.team.ThreadTeam`.  :class:`CountdownLatch` models
the atomic partition counters of the MPICH partitioned implementation,
and :class:`Signal` is a broadcast one-shot/pulse event.
"""

from __future__ import annotations

from typing import List, Optional

from .core import Environment, Event, SimulationError

__all__ = ["SimBarrier", "Semaphore", "CountdownLatch", "Signal"]


class SimBarrier:
    """A cyclic barrier for ``parties`` processes.

    Each arriving process yields the event returned by :meth:`wait`; the
    event fires (for every party) when the last party arrives.  The
    barrier then resets for the next generation, so it is reusable across
    benchmark iterations.  The event value is the barrier *generation*
    (0-based), and the last arriving party receives ``True`` via the
    event's ``is_last`` attribute-style tuple ``(generation, is_last)``.
    """

    __slots__ = ("env", "parties", "name", "generation", "_arrived", "_event")

    def __init__(self, env: Environment, parties: int, name: str = ""):
        if parties < 1:
            raise ValueError("parties must be >= 1")
        self.env = env
        self.parties = parties
        self.name = name
        self.generation = 0
        self._arrived = 0
        self._event: Event = env.event()

    @property
    def waiting(self) -> int:
        """Number of parties currently blocked at the barrier."""
        return self._arrived

    def wait(self) -> Event:
        """Arrive at the barrier; yield the returned event to block."""
        self._arrived += 1
        if self._arrived > self.parties:
            raise SimulationError(
                f"barrier {self.name!r}: {self._arrived} arrivals for "
                f"{self.parties} parties"
            )
        event = self._event
        if self._arrived == self.parties:
            generation = self.generation
            self.generation += 1
            self._arrived = 0
            self._event = self.env.event()
            event.succeed(generation)
        return event


class Semaphore:
    """A counting semaphore with FIFO wakeup order."""

    __slots__ = ("env", "name", "_value", "_waiters")

    def __init__(self, env: Environment, value: int = 1, name: str = ""):
        if value < 0:
            raise ValueError("initial value must be >= 0")
        self.env = env
        self.name = name
        self._value = value
        self._waiters: List[Event] = []

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> Event:
        """Event that fires when a unit has been obtained."""
        ev = self.env.event()
        if self._value > 0:
            self._value -= 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Return a unit, waking the oldest waiter if any."""
        if self._waiters:
            self._waiters.pop(0).succeed()
        else:
            self._value += 1


class CountdownLatch:
    """An atomic counter that fires an event on reaching zero.

    Models MPICH's per-message atomic partition counters (§3.2.2 of the
    paper): ``MPI_Pready`` decrements; when the count hits zero the
    message is sent.  ``count_down`` returns ``True`` to exactly one
    caller (the one that took the counter to zero).
    """

    __slots__ = ("env", "name", "_count", "done")

    def __init__(self, env: Environment, count: int, name: str = ""):
        if count < 0:
            raise ValueError("count must be >= 0")
        self.env = env
        self.name = name
        self._count = count
        self.done: Event = env.event()
        if count == 0:
            self.done.succeed()

    @property
    def count(self) -> int:
        return self._count

    def count_down(self, n: int = 1) -> bool:
        """Decrement by ``n``; returns True iff this call reached zero."""
        if n < 1:
            raise ValueError("n must be >= 1")
        if self._count == 0:
            raise SimulationError(f"latch {self.name!r} already at zero")
        if n > self._count:
            raise SimulationError(
                f"latch {self.name!r}: count_down({n}) with count={self._count}"
            )
        self._count -= n
        if self._count == 0:
            self.done.succeed()
            return True
        return False


class Signal:
    """A broadcast pulse: every current waiter is woken by :meth:`fire`."""

    __slots__ = ("env", "name", "_event")

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self._event: Event = env.event()

    def wait(self) -> Event:
        """Event that fires at the next :meth:`fire`."""
        return self._event

    def fire(self, value: Optional[object] = None) -> None:
        """Wake all current waiters and reset for the next round."""
        event, self._event = self._event, self.env.event()
        event.succeed(value)
