"""Structured event tracing.

A :class:`Tracer` collects timestamped records emitted by the runtime
(message sent, VCI acquired, partition ready, ...).  Traces serve three
purposes: debugging the simulator, validating mechanism-level behaviour in
tests (e.g. "the old AM path sends exactly one data message per
iteration"), and attributing time in the congestion analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from .core import Environment

__all__ = ["TraceRecord", "Tracer", "NullTracer", "StreamingTracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: float
    category: str
    event: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        kv = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time * 1e6:12.3f}us] {self.category}:{self.event} {kv}"


class Tracer:
    """Collects :class:`TraceRecord` objects with category filtering."""

    def __init__(self, env: Environment, enabled: bool = True):
        self.env = env
        self.enabled = enabled
        self.records: List[TraceRecord] = []
        self._filters: Optional[set] = None

    def limit_to(self, *categories: str) -> None:
        """Record only the given categories (None = all)."""
        self._filters = set(categories) if categories else None

    def log(self, category: str, event: str, **fields: Any) -> None:
        """Append a record at the current simulated time."""
        if not self.enabled:
            return
        if self._filters is not None and category not in self._filters:
            return
        self.records.append(TraceRecord(self.env.now, category, event, fields))

    def clear(self) -> None:
        self.records.clear()

    def select(
        self,
        category: Optional[str] = None,
        event: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> List[TraceRecord]:
        """Filter collected records."""
        out = []
        for rec in self.records:
            if category is not None and rec.category != category:
                continue
            if event is not None and rec.event != event:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def count(self, category: Optional[str] = None, event: Optional[str] = None) -> int:
        """Number of matching records."""
        return len(self.select(category=category, event=event))

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)


class NullTracer(Tracer):
    """A tracer that drops everything (used for benchmark runs)."""

    def __init__(self, env: Environment):
        super().__init__(env, enabled=False)

    def log(self, category: str, event: str, **fields: Any) -> None:  # noqa: D102
        return


class StreamingTracer(Tracer):
    """A tracer that hands each record to a sink instead of storing it.

    ``self.records`` stays empty, so an arbitrarily long simulation
    traces in O(1) memory — the sink (typically a JSONL metrics file,
    see :mod:`repro.telemetry`) owns persistence.  Category filters
    apply before the sink sees a record, same as :class:`Tracer`.
    """

    def __init__(
        self, env: Environment, sink: Callable[[TraceRecord], None]
    ):
        super().__init__(env, enabled=True)
        self._sink = sink

    def log(self, category: str, event: str, **fields: Any) -> None:
        if not self.enabled:
            return
        if self._filters is not None and category not in self._filters:
            return
        self._sink(TraceRecord(self.env.now, category, event, fields))
