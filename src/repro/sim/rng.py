"""Deterministic named random streams.

Every stochastic element of the simulation (compute noise, jitter) draws
from a named stream derived from a single root seed, so that adding a new
consumer of randomness never perturbs existing streams, and runs are
exactly reproducible.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """A factory of independent, reproducible random generators.

    Each ``stream(name)`` call returns a generator seeded by
    ``SHA-256(root_seed || name)``, so streams are independent of each
    other and of the order in which they are created.

    Example
    -------
    >>> reg = RngRegistry(seed=7)
    >>> a = reg.stream("thread-0")
    >>> b = reg.stream("thread-1")
    >>> a is reg.stream("thread-0")
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")
            ).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(child_seed)
            self._streams[name] = gen
        return gen

    def reset(self) -> None:
        """Drop all streams; subsequent calls re-derive from the seed."""
        self._streams.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug repr
        return f"<RngRegistry seed={self.seed} streams={len(self._streams)}>"
