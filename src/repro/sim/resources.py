"""Contended resources: FIFO locks, counted resources, and stores.

These primitives are how the simulator models *contention*: a VCI's
command queue is a :class:`Lock`, the wire of a shared link is a
:class:`Resource`, and mailbox-style queues are :class:`Store` objects.
Each resource records queueing statistics so experiments can attribute
time to contention (used heavily by the Fig. 5/6 thread-congestion
analysis).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List

from .core import Environment, Event, SimulationError

__all__ = ["Request", "Release", "Resource", "Lock", "Store", "ResourceStats"]


class ResourceStats:
    """Aggregate queueing statistics for a resource.

    Attributes
    ----------
    acquisitions:
        Number of successful grants.
    total_wait:
        Total simulated time requests spent queued before being granted.
    max_queue:
        High-water mark of the wait queue length.
    """

    __slots__ = ("acquisitions", "total_wait", "max_queue")

    def __init__(self) -> None:
        self.acquisitions = 0
        self.total_wait = 0.0
        self.max_queue = 0

    @property
    def mean_wait(self) -> float:
        """Mean time a granted request waited in the queue."""
        return self.total_wait / self.acquisitions if self.acquisitions else 0.0

    def reset(self) -> None:
        self.acquisitions = 0
        self.total_wait = 0.0
        self.max_queue = 0


class Request(Event):
    """A pending claim on a :class:`Resource`; yield it to wait for grant."""

    __slots__ = ("resource", "requested_at")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        self.requested_at = resource.env.now
        resource._do_request(self)


class Release(Event):
    """Immediate event confirming a release (mostly for symmetry)."""

    __slots__ = ()


class Resource:
    """A resource with ``capacity`` concurrent slots and a FIFO wait queue.

    Usage from a process::

        req = resource.request()
        yield req
        ...  # critical section
        resource.release(req)
    """

    __slots__ = ("env", "capacity", "name", "_users", "_waiting", "stats")

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._users: List[Request] = []
        self._waiting: Deque[Request] = deque()
        self.stats = ResourceStats()

    # -- introspection -------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    # -- protocol --------------------------------------------------------------
    def request(self) -> Request:
        """Claim a slot; the returned event fires when granted."""
        return Request(self)

    def _do_request(self, req: Request) -> None:
        if len(self._users) < self.capacity:
            self._grant(req)
        else:
            self._waiting.append(req)
            self.stats.max_queue = max(self.stats.max_queue, len(self._waiting))

    def _grant(self, req: Request) -> None:
        self._users.append(req)
        self.stats.acquisitions += 1
        self.stats.total_wait += self.env.now - req.requested_at
        req.succeed(req)

    def release(self, req: Request) -> Release:
        """Release a previously granted slot and wake the next waiter."""
        try:
            self._users.remove(req)
        except ValueError:
            raise SimulationError(
                f"release of {req!r} which does not hold {self.name or self!r}"
            ) from None
        if self._waiting and len(self._users) < self.capacity:
            self._grant(self._waiting.popleft())
        ev = Release(self.env)
        ev.succeed()
        return ev

    def __repr__(self) -> str:  # pragma: no cover - debug repr
        return (
            f"<Resource {self.name!r} {self.count}/{self.capacity} "
            f"queued={self.queue_length}>"
        )


class Lock(Resource):
    """A capacity-1 resource: a mutex with FIFO handoff."""

    __slots__ = ()

    def __init__(self, env: Environment, name: str = ""):
        super().__init__(env, capacity=1, name=name)

    @property
    def locked(self) -> bool:
        return self.count > 0


class Store:
    """An unbounded FIFO channel of Python objects between processes.

    ``put`` never blocks; ``get`` returns an event that fires when an item
    is available.  Items are handed to getters in FIFO order.
    """

    __slots__ = ("env", "name", "_items", "_getters")

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    @property
    def size(self) -> int:
        """Number of items currently buffered."""
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``, waking the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next available item."""
        ev = Event(self.env)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def peek_all(self) -> List[Any]:
        """Snapshot of buffered items (for inspection/tests)."""
        return list(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debug repr
        return f"<Store {self.name!r} items={len(self._items)} waiting={len(self._getters)}>"
