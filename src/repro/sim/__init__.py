"""Deterministic discrete-event simulation engine.

The engine underlying the MPI runtime simulator: events, processes,
resources, synchronization, named RNG streams, and tracing.
"""

from .core import (
    HIGH,
    LOW,
    NORMAL,
    PENDING,
    URGENT,
    Environment,
    Event,
    SimulationError,
    StopSimulation,
    Timeout,
)
from .primitives import AllOf, AnyOf, Condition
from .process import Interrupt, Process
from .resources import Lock, Release, Request, Resource, ResourceStats, Store
from .rng import RngRegistry
from .sync import CountdownLatch, Semaphore, Signal, SimBarrier
from .trace import NullTracer, StreamingTracer, TraceRecord, Tracer

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "SimulationError",
    "StopSimulation",
    "PENDING",
    "URGENT",
    "HIGH",
    "NORMAL",
    "LOW",
    "AllOf",
    "AnyOf",
    "Condition",
    "Resource",
    "Request",
    "Release",
    "ResourceStats",
    "Lock",
    "Store",
    "SimBarrier",
    "Semaphore",
    "CountdownLatch",
    "Signal",
    "RngRegistry",
    "Tracer",
    "NullTracer",
    "StreamingTracer",
    "TraceRecord",
]
