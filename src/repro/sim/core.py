"""Discrete-event simulation core: events, the event queue, and the clock.

This module implements a deterministic discrete-event engine in the style
of SimPy, written from scratch so that the MPI runtime simulator has no
external dependencies.  The engine is the substrate for everything in
:mod:`repro`: simulated threads, the network fabric, and the MPI progress
engine are all processes scheduled here.

Determinism
-----------
Events scheduled for the same simulated time are processed in a total
order given by ``(time, priority, sequence)`` where ``sequence`` is a
monotonically increasing insertion counter.  Given identical inputs and
seeds, two runs produce byte-identical traces.

Example
-------
>>> from repro.sim import Environment
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(3.0)
...     return env.now
>>> proc = env.process(hello(env))
>>> env.run()
>>> proc.value
3.0
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "PENDING",
    "URGENT",
    "HIGH",
    "NORMAL",
    "LOW",
    "Event",
    "Timeout",
    "Environment",
    "SimulationError",
    "StopSimulation",
]


class _PendingType:
    """Sentinel for the value of an event that has not been triggered."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug repr
        return "<PENDING>"


#: Unique sentinel object marking an untriggered event value.
PENDING = _PendingType()

# Scheduling priorities.  Lower sorts earlier at equal simulated time.
URGENT = 0
HIGH = 1
NORMAL = 2
LOW = 3


class SimulationError(RuntimeError):
    """Raised for violations of engine invariants (double trigger, ...)."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Environment.run` at a target event."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class Event:
    """A happening at a point in simulated time.

    An event is *pending* until it is triggered (via :meth:`succeed` or
    :meth:`fail`), at which point it is scheduled on the environment's
    queue; once the queue processes it, its callbacks run and it becomes
    *processed*.  Processes wait on events by ``yield``-ing them.

    Attributes
    ----------
    env:
        Owning :class:`Environment`.
    callbacks:
        List of callables invoked with the event when processed, or
        ``None`` once the event has been processed.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value. Raises if the event is still pending."""
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised in every process waiting on this event
        unless a callback marks the event as *defused*.
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self, priority=priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event._defused = True
            self.fail(event._value)

    def __repr__(self) -> str:  # pragma: no cover - debug repr
        state = (
            "pending"
            if self._value is PENDING
            else ("processed" if self.processed else "triggered")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)


class Environment:
    """The simulation clock and event queue.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock (seconds).
    """

    __slots__ = ("_now", "_queue", "_eid", "active_process")

    #: Process-wide count of environments ever constructed — the test
    #: hook behind the analytic backend's zero-simulation guarantee
    #: (``--backend analytic`` must leave this untouched).
    instances_created = 0

    def __init__(self, initial_time: float = 0.0):
        Environment.instances_created += 1
        self._now = float(initial_time)
        self._queue: List = []
        self._eid = itertools.count()
        self.active_process = None  # set by Process while resuming

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling ---------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Enqueue a triggered event ``delay`` seconds from now."""
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._eid), event)
        )

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> "Process":
        """Launch ``generator`` as a simulated process."""
        from .process import Process

        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> Event:
        """Event that succeeds when all ``events`` have succeeded."""
        from .primitives import AllOf

        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> Event:
        """Event that succeeds when any of ``events`` has succeeded."""
        from .primitives import AnyOf

        return AnyOf(self, list(events))

    # -- execution ------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("step() on an empty schedule")
        self._now, _, _, event = heapq.heappop(self._queue)
        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            raise SimulationError(f"{event!r} processed twice")
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``
                run until no events remain;
            a number
                run until the clock reaches that time;
            an :class:`Event`
                run until that event is processed, returning its value.
        """
        stop_value: Any = None
        if until is not None:
            if isinstance(until, Event):
                if until.callbacks is None:
                    return until.value

                def _stop(event: Event) -> None:
                    raise StopSimulation(event.value)

                until.callbacks.append(_stop)
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(
                        f"until ({at}) must not be before now ({self._now})"
                    )
                stop_ev = Event(self)
                stop_ev._ok = True
                stop_ev._value = None
                stop_ev.callbacks.append(
                    lambda e: (_ for _ in ()).throw(StopSimulation(None))
                )
                heapq.heappush(self._queue, (at, URGENT, next(self._eid), stop_ev))
        try:
            while self._queue:
                self.step()
        except StopSimulation as stop:
            stop_value = stop.value
        else:
            if isinstance(until, Event) and not until.triggered:
                raise SimulationError(
                    "run(until=event) exhausted the schedule before the "
                    "event was triggered (deadlock?)"
                )
        return stop_value

    def __repr__(self) -> str:  # pragma: no cover - debug repr
        return f"<Environment now={self._now:.9f} queued={len(self._queue)}>"
