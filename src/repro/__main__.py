"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro                 # quick grids
    python -m repro --full          # the paper's full size grids
    python -m repro --iters 30      # more iterations per point
    python -m repro --only fig5     # a single figure
"""

from __future__ import annotations

import argparse
import sys
import time

from .figures import (
    fig4_improvement,
    fig5_congestion,
    fig6_vcis,
    fig7_aggregation,
    fig8_earlybird,
    tables,
)

_DRIVERS = {
    "fig4": fig4_improvement,
    "fig5": fig5_congestion,
    "fig6": fig6_vcis,
    "fig7": fig7_aggregation,
    "fig8": fig8_earlybird,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__
    )
    parser.add_argument("--full", action="store_true",
                        help="full size grids (slower)")
    parser.add_argument("--iters", type=int, default=10,
                        help="iterations per benchmark point")
    parser.add_argument(
        "--only",
        choices=sorted(_DRIVERS) + ["tables"],
        help="regenerate a single artifact",
    )
    args = parser.parse_args(argv)

    if args.only is None or args.only == "tables":
        print(tables.table1())
        print()
        print(tables.table2())
        if args.only == "tables":
            return 0
    selected = (
        [_DRIVERS[args.only]] if args.only else list(_DRIVERS.values())
    )
    for driver in selected:
        t0 = time.time()
        data = driver.run(iterations=args.iters, quick=not args.full)
        print("\n" + "=" * 72)
        print(driver.report(data))
        print(f"[regenerated in {time.time() - t0:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
