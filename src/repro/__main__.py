"""Command-line entry point.

Three subcommands::

    python -m repro figures [...]      # regenerate the paper's tables/figures
    python -m repro apps [...]         # N-rank application patterns
    python -m repro runner-bench [...] # time the runner serial vs parallel

Invocations without a subcommand keep the historical behavior and run
``figures``::

    python -m repro                 # quick grids
    python -m repro --full          # the paper's full size grids
    python -m repro --iters 30      # more iterations per point
    python -m repro --only fig5     # a single figure

Every simulated grid goes through the unified scenario runner
(:mod:`repro.runner`); ``figures`` and ``apps`` both accept

* ``--jobs N`` — fan the grid out over N worker processes (0 = one per
  CPU; 1 = in-process serial, the default);
* ``--store DIR`` — record every point in a content-addressed result
  store;
* ``--resume`` — skip points already present in ``--store``.

Application patterns (Halo3D / Sweep3D / FFT transpose)::

    python -m repro apps --pattern halo3d --ranks 8 --approach pt2pt_part
    python -m repro apps --pattern sweep3d --approach all --noise gaussian
    python -m repro apps --pattern fft --size 1048576 --json results.json
    python -m repro apps --pattern halo3d --jobs 0 --store runs/ --resume
"""

from __future__ import annotations

import argparse
import sys
import time

from .figures import (
    fig4_improvement,
    fig5_congestion,
    fig6_vcis,
    fig7_aggregation,
    fig8_earlybird,
    tables,
)

_DRIVERS = {
    "fig4": fig4_improvement,
    "fig5": fig5_congestion,
    "fig6": fig6_vcis,
    "fig7": fig7_aggregation,
    "fig8": fig8_earlybird,
}

#: Baseline approach for the η (speedup) report.
_BASELINE = "pt2pt_single"


def _figures_parser(top_level: bool = False) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro" if top_level else "python -m repro figures",
        description="Regenerate the paper's tables and figures.",
        epilog=(
            "subcommands: 'figures' (this, the default), 'apps' — N-rank "
            "application patterns, and 'runner-bench' — runner timings; "
            "see 'python -m repro <subcommand> --help'."
        ) if top_level else None,
    )
    parser.add_argument("--full", action="store_true",
                        help="full size grids (slower)")
    parser.add_argument("--iters", type=int, default=10,
                        help="iterations per benchmark point")
    parser.add_argument(
        "--only",
        choices=sorted(_DRIVERS) + ["tables"],
        help="regenerate a single artifact",
    )
    _add_runner_options(parser)
    return parser


def _add_runner_options(parser: argparse.ArgumentParser) -> None:
    """The unified runner knobs shared by ``figures`` and ``apps``."""
    group = parser.add_argument_group("runner")
    group.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for the scenario grid "
                            "(0 = one per CPU; default 1 = serial)")
    group.add_argument("--store", default=None, metavar="DIR",
                       help="content-addressed result store directory")
    group.add_argument("--resume", action="store_true",
                       help="skip scenarios already in --store")


def _runner_kwargs(args, parser: argparse.ArgumentParser) -> dict:
    """Resolve --jobs/--store/--resume into driver keyword arguments."""
    from .runner import ResultStore, default_jobs

    if args.jobs < 0:
        parser.error("--jobs must be >= 0")
    if args.resume and args.store is None:
        parser.error("--resume requires --store")
    return {
        "jobs": args.jobs if args.jobs > 0 else default_jobs(),
        "store": ResultStore(args.store) if args.store else None,
        "resume": args.resume,
    }


def _run_figures(args, parser) -> int:
    runner_kwargs = _runner_kwargs(args, parser)
    if args.only is None or args.only == "tables":
        print(tables.table1())
        print()
        print(tables.table2())
        if args.only == "tables":
            return 0
    selected = (
        [_DRIVERS[args.only]] if args.only else list(_DRIVERS.values())
    )
    for driver in selected:
        t0 = time.time()
        data = driver.run(
            iterations=args.iters, quick=not args.full, **runner_kwargs
        )
        print("\n" + "=" * 72)
        print(driver.report(data))
        print(f"[regenerated in {time.time() - t0:.1f}s]")
    return 0


def _apps_parser() -> argparse.ArgumentParser:
    from .apps import NOISE_MODELS, PATTERNS
    from .bench import APPROACHES

    parser = argparse.ArgumentParser(
        prog="python -m repro apps",
        description="Run an N-rank application communication pattern.",
    )
    parser.add_argument("--pattern", required=True,
                        choices=sorted(PATTERNS),
                        help="application pattern")
    parser.add_argument("--ranks", type=int, default=8,
                        help="number of MPI ranks (default 8)")
    parser.add_argument("--threads", type=int, default=4,
                        help="threads per rank (default 4)")
    parser.add_argument("--approach", default="pt2pt_part",
                        choices=sorted(APPROACHES) + ["all"],
                        help="communication approach, or 'all'")
    parser.add_argument("--size", type=int, default=256 << 10,
                        help="bytes per link message (default 256 KiB)")
    parser.add_argument("--iters", type=int, default=10,
                        help="measured iterations per point (default 10)")
    parser.add_argument("--warmup", type=int, default=1,
                        help="warm-up iterations (default 1)")
    parser.add_argument("--compute-us-per-mb", type=float, default=200.0,
                        help="per-partition compute rate in µs/MB "
                             "(default 200, overlap-friendly; 0 disables)")
    parser.add_argument("--noise", default="none",
                        choices=sorted(NOISE_MODELS),
                        help="injected-noise shape (Temuçin et al.)")
    parser.add_argument("--noise-us", type=float, default=0.0,
                        help="noise amplitude in µs per thread quantum")
    parser.add_argument("--noise-sigma-us", type=float, default=0.0,
                        help="gaussian noise std-dev in µs")
    parser.add_argument("--seed", type=int, default=0,
                        help="root RNG seed (default 0)")
    parser.add_argument("--vcis", type=int, default=1,
                        help="VCIs per rank (MPIR_CVAR_NUM_VCIS, default 1)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="persistence path (default BENCH_apps.json)")
    parser.add_argument("--no-json", action="store_true",
                        help="skip writing the sweep JSON")
    _add_runner_options(parser)
    return parser


def _run_apps(args, parser) -> int:
    from .apps import (
        DEFAULT_JSON_PATH,
        PatternConfig,
        build_pattern,
        sweep_patterns,
    )
    from .bench import APPROACHES
    from .mpi import Cvars

    runner_kwargs = _runner_kwargs(args, parser)
    approaches = (
        sorted(APPROACHES) if args.approach == "all" else [args.approach]
    )
    # Always include the baseline so the η report is available.
    run_list = list(approaches)
    if _BASELINE not in run_list:
        run_list.append(_BASELINE)

    try:
        configs = [
            PatternConfig(
                pattern=args.pattern,
                approach=name,
                n_ranks=args.ranks,
                n_threads=args.threads,
                msg_bytes=args.size,
                iterations=args.iters,
                warmup=args.warmup,
                compute_us_per_mb=args.compute_us_per_mb,
                noise=args.noise,
                noise_us=args.noise_us,
                noise_sigma_us=args.noise_sigma_us,
                seed=args.seed,
                cvars=Cvars(num_vcis=args.vcis),
            )
            for name in run_list
        ]
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # The whole approach list is one runner batch (parallel fan-out).
    sweep = sweep_patterns(configs, **runner_kwargs)
    results = {
        config.approach: sweep.get(config) for config in configs
    }

    first = results[run_list[0]]
    print(build_pattern(first.config).describe())
    print(
        f"ranks={args.ranks} threads={args.threads} "
        f"size={args.size}B noise={args.noise} "
        f"compute={args.compute_us_per_mb:g}us/MB "
        f"iters={args.iters}(+{args.warmup} warmup) seed={args.seed}"
    )
    print()
    header = (f"{'approach':>20} | {'mean time':>14} | {'90% CI':>9} | "
              f"{'perceived bw':>13} | {'eta':>6}")
    print(header)
    print("-" * len(header))
    base_mean = results[_BASELINE].mean
    for name in run_list:
        r = results[name]
        eta = base_mean / r.mean if r.mean else float("inf")
        print(
            f"{name:>20} | {r.mean_us:11.2f} us | "
            f"{r.stats.ci_half * 1e6:6.2f} us | "
            f"{r.bandwidth_gbs:8.3f} GB/s | {eta:6.2f}"
        )
    print(f"\n(eta = {_BASELINE} mean / approach mean; > 1 means faster "
          f"than the bulk-synchronous baseline)")

    if not args.no_json:
        path = args.json if args.json else DEFAULT_JSON_PATH
        target = sweep.save(path)
        print(f"[sweep persisted to {target}]")
    return 0


def _runner_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro runner-bench",
        description="Time the scenario runner's fixed quick grid at "
                    "jobs=1 vs jobs=N and persist BENCH_runner.json.",
    )
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="parallel worker count (0 = one per CPU)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="persistence path (default BENCH_runner.json)")
    return parser


def _run_runner_bench(args) -> int:
    from .runner.benchmark import DEFAULT_JSON_PATH, benchmark_runner

    path = args.json if args.json else DEFAULT_JSON_PATH
    payload = benchmark_runner(
        jobs=args.jobs if args.jobs > 0 else None, path=path
    )
    print(
        f"{payload['n_scenarios']} scenarios: "
        f"jobs=1 {payload['serial']['wall_s']:.2f}s, "
        f"jobs={payload['parallel']['jobs']} "
        f"{payload['parallel']['wall_s']:.2f}s "
        f"(speedup x{payload['speedup']:.2f})"
    )
    print(f"[timings persisted to {path}]")
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "apps":
        parser = _apps_parser()
        return _run_apps(parser.parse_args(argv[1:]), parser)
    if argv and argv[0] == "figures":
        parser = _figures_parser()
        return _run_figures(parser.parse_args(argv[1:]), parser)
    if argv and argv[0] == "runner-bench":
        return _run_runner_bench(_runner_bench_parser().parse_args(argv[1:]))
    # No subcommand: historical figure-regeneration behavior.
    parser = _figures_parser(top_level=True)
    return _run_figures(parser.parse_args(argv), parser)


if __name__ == "__main__":
    sys.exit(main())
