"""Command-line entry point.

Seven subcommands::

    python -m repro figures [...]      # regenerate the paper's tables/figures
    python -m repro apps [...]         # N-rank application patterns
    python -m repro campaign ...       # batched million-point grid campaigns
    python -m repro campaign-bench     # batched vs per-point throughput
    python -m repro runner-bench [...] # time the runner serial vs parallel
    python -m repro backend-bench [...]# time sim vs analytic per grid size
    python -m repro store DIR [...]    # result-store stats / maintenance

Invocations without a subcommand keep the historical behavior and run
``figures``::

    python -m repro                 # quick grids
    python -m repro --full          # the paper's full size grids
    python -m repro --iters 30      # more iterations per point
    python -m repro --only fig5     # a single figure

Every grid goes through the unified scenario runner
(:mod:`repro.runner`); ``figures`` and ``apps`` both accept

* ``--jobs N`` — fan the grid out over N worker processes (0 = one per
  CPU; 1 = in-process serial, the default);
* ``--store DIR`` — record every point in a content-addressed result
  store;
* ``--resume`` — skip points already present in ``--store``;
* ``--backend {sim,analytic,both}`` — execute via the discrete-event
  simulator (default), the closed-form analytic model (microseconds
  per point), or both: ``both`` regenerates the grid under each
  backend and prints the cross-validation report (per-point relative
  error, worst offender); the exit code is non-zero when any point
  exceeds its documented tolerance.

Application patterns (Halo3D / Sweep3D / FFT transpose)::

    python -m repro apps --pattern halo3d --ranks 8 --approach pt2pt_part
    python -m repro apps --pattern sweep3d --approach all --noise gaussian
    python -m repro apps --pattern fft --size 1048576 --json results.json
    python -m repro apps --pattern halo3d --jobs 0 --store runs/ --resume
    python -m repro apps --pattern halo3d --backend both

Campaigns (streaming schema-v2 store; see README "Campaigns")::

    python -m repro campaign run grid.json --root camp/      # plan + execute
    python -m repro campaign run grid.json --root camp/ --limit 10000
    python -m repro campaign run sim.json --root camp/ --jobs 8 --submit-ahead 16
    python -m repro campaign run grid.json --root camp/ --compress  # .jsonl.gz
    python -m repro campaign run grid.json --root camp/ --binary    # .bin columns
    python -m repro campaign run grid.json --root camp/ --metrics   # telemetry
    python -m repro campaign profile camp/                   # stage attribution
    python -m repro campaign status camp/                    # coverage
    python -m repro campaign status camp/ --json             # machine-readable
    python -m repro campaign export camp/ --out points.jsonl
    python -m repro campaign export camp/ --out cols.npz --format npz
    python -m repro campaign report camp/ --slice approach=pt2pt_part
    python -m repro campaign compact camp/                   # merge segments
    python -m repro campaign compact camp/ --compress        # + gzip migration
    python -m repro campaign compact camp/ --binary          # + binary migration
    python -m repro campaign-bench                           # BENCH_campaign.json
    python -m repro campaign-bench --kind pattern            # pattern fast path

Store maintenance::

    python -m repro store runs/            # records per kind/backend, size
    python -m repro store runs/ --prune    # drop records that no longer parse
    python -m repro store runs/ --export jsonl --out records.jsonl
    python -m repro store runs/ --migrate camp/   # v1 records -> campaign loose rows
"""

from __future__ import annotations

import argparse
import sys
import time

from .figures import (
    fig4_improvement,
    fig5_congestion,
    fig6_vcis,
    fig7_aggregation,
    fig8_earlybird,
    tables,
)

_DRIVERS = {
    "fig4": fig4_improvement,
    "fig5": fig5_congestion,
    "fig6": fig6_vcis,
    "fig7": fig7_aggregation,
    "fig8": fig8_earlybird,
}

#: Baseline approach for the η (speedup) report.
_BASELINE = "pt2pt_single"


def _figures_parser(top_level: bool = False) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro" if top_level else "python -m repro figures",
        description="Regenerate the paper's tables and figures.",
        epilog=(
            "subcommands: 'figures' (this, the default), 'apps' — N-rank "
            "application patterns, 'campaign' — batched grid campaigns, "
            "'campaign-bench' — batched vs per-point throughput, "
            "'runner-bench' — runner timings, 'backend-bench' — sim vs "
            "analytic timings, and 'store' — result-store maintenance; "
            "see 'python -m repro <subcommand> --help'."
        ) if top_level else None,
    )
    parser.add_argument("--full", action="store_true",
                        help="full size grids (slower)")
    parser.add_argument("--iters", type=int, default=10,
                        help="iterations per benchmark point")
    parser.add_argument(
        "--only",
        choices=sorted(_DRIVERS) + ["tables"],
        help="regenerate a single artifact",
    )
    _add_runner_options(parser)
    return parser


def _add_runner_options(parser: argparse.ArgumentParser) -> None:
    """The unified runner knobs shared by ``figures`` and ``apps``."""
    group = parser.add_argument_group("runner")
    group.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for the scenario grid "
                            "(0 = one per CPU; default 1 = serial)")
    group.add_argument("--store", default=None, metavar="DIR",
                       help="content-addressed result store directory")
    group.add_argument("--resume", action="store_true",
                       help="skip scenarios already in --store")
    group.add_argument("--backend", default="sim",
                       choices=["sim", "analytic", "both"],
                       help="execution backend: full simulation "
                            "(default), the closed-form analytic model, "
                            "or 'both' with a cross-validation report")


def _runner_kwargs(args, parser: argparse.ArgumentParser) -> dict:
    """Resolve --jobs/--store/--resume into driver keyword arguments."""
    from .runner import ResultStore, default_jobs

    if args.jobs < 0:
        parser.error("--jobs must be >= 0")
    if args.resume and args.store is None:
        parser.error("--resume requires --store")
    return {
        "jobs": args.jobs if args.jobs > 0 else default_jobs(),
        "store": ResultStore(args.store) if args.store else None,
        "resume": args.resume,
    }


def _run_figures(args, parser) -> int:
    runner_kwargs = _runner_kwargs(args, parser)
    if args.only is None or args.only == "tables":
        print(tables.table1())
        print()
        print(tables.table2())
        if args.only == "tables":
            return 0
    selected = (
        [_DRIVERS[args.only]] if args.only else list(_DRIVERS.values())
    )
    crossval_failed = False
    for driver in selected:
        t0 = time.time()
        if args.backend == "both":
            from .backends import compare_bench_sweeps

            sim_data = driver.run(
                iterations=args.iters, quick=not args.full,
                backend="sim", **runner_kwargs
            )
            analytic_data = driver.run(
                iterations=args.iters, quick=not args.full,
                backend="analytic", **runner_kwargs
            )
            report = compare_bench_sweeps(sim_data.sweep, analytic_data.sweep)
            crossval_failed |= not report.passed
            print("\n" + "=" * 72)
            print(driver.report(sim_data))
            print()
            print(report.to_text())
        else:
            data = driver.run(
                iterations=args.iters, quick=not args.full,
                backend=args.backend, **runner_kwargs
            )
            print("\n" + "=" * 72)
            print(driver.report(data))
        print(f"[regenerated in {time.time() - t0:.1f}s]")
    return 1 if crossval_failed else 0


def _apps_parser() -> argparse.ArgumentParser:
    from .apps import NOISE_MODELS, PATTERNS
    from .bench import APPROACHES

    parser = argparse.ArgumentParser(
        prog="python -m repro apps",
        description="Run an N-rank application communication pattern.",
    )
    parser.add_argument("--pattern", required=True,
                        choices=sorted(PATTERNS),
                        help="application pattern")
    parser.add_argument("--ranks", type=int, default=8,
                        help="number of MPI ranks (default 8)")
    parser.add_argument("--threads", type=int, default=4,
                        help="threads per rank (default 4)")
    parser.add_argument("--approach", default="pt2pt_part",
                        choices=sorted(APPROACHES) + ["all"],
                        help="communication approach, or 'all'")
    parser.add_argument("--size", type=int, default=256 << 10,
                        help="bytes per link message (default 256 KiB)")
    parser.add_argument("--iters", type=int, default=10,
                        help="measured iterations per point (default 10)")
    parser.add_argument("--warmup", type=int, default=1,
                        help="warm-up iterations (default 1)")
    parser.add_argument("--compute-us-per-mb", type=float, default=200.0,
                        help="per-partition compute rate in µs/MB "
                             "(default 200, overlap-friendly; 0 disables)")
    parser.add_argument("--noise", default="none",
                        choices=sorted(NOISE_MODELS),
                        help="injected-noise shape (Temuçin et al.)")
    parser.add_argument("--noise-us", type=float, default=0.0,
                        help="noise amplitude in µs per thread quantum")
    parser.add_argument("--noise-sigma-us", type=float, default=0.0,
                        help="gaussian noise std-dev in µs")
    parser.add_argument("--seed", type=int, default=0,
                        help="root RNG seed (default 0)")
    parser.add_argument("--vcis", type=int, default=1,
                        help="VCIs per rank (MPIR_CVAR_NUM_VCIS, default 1)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="persistence path (default BENCH_apps.json)")
    parser.add_argument("--no-json", action="store_true",
                        help="skip writing the sweep JSON")
    _add_runner_options(parser)
    return parser


def _run_apps(args, parser) -> int:
    from .apps import (
        DEFAULT_JSON_PATH,
        PatternConfig,
        build_pattern,
        sweep_patterns,
    )
    from .bench import APPROACHES
    from .mpi import Cvars

    runner_kwargs = _runner_kwargs(args, parser)
    approaches = (
        sorted(APPROACHES) if args.approach == "all" else [args.approach]
    )
    # Always include the baseline so the η report is available.
    run_list = list(approaches)
    if _BASELINE not in run_list:
        run_list.append(_BASELINE)

    try:
        configs = [
            PatternConfig(
                pattern=args.pattern,
                approach=name,
                n_ranks=args.ranks,
                n_threads=args.threads,
                msg_bytes=args.size,
                iterations=args.iters,
                warmup=args.warmup,
                compute_us_per_mb=args.compute_us_per_mb,
                noise=args.noise,
                noise_us=args.noise_us,
                noise_sigma_us=args.noise_sigma_us,
                seed=args.seed,
                cvars=Cvars(num_vcis=args.vcis),
            )
            for name in run_list
        ]
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # The whole approach list is one runner batch (parallel fan-out).
    crossval_report = None
    if args.backend == "both":
        from .backends import compare_pattern_sweeps

        sweep = sweep_patterns(configs, backend="sim", **runner_kwargs)
        analytic_sweep = sweep_patterns(
            configs, backend="analytic", **runner_kwargs
        )
        crossval_report = compare_pattern_sweeps(sweep, analytic_sweep)
    else:
        sweep = sweep_patterns(configs, backend=args.backend, **runner_kwargs)
    results = {
        config.approach: sweep.get(config) for config in configs
    }

    first = results[run_list[0]]
    print(build_pattern(first.config).describe())
    print(
        f"ranks={args.ranks} threads={args.threads} "
        f"size={args.size}B noise={args.noise} "
        f"compute={args.compute_us_per_mb:g}us/MB "
        f"iters={args.iters}(+{args.warmup} warmup) seed={args.seed}"
    )
    print()
    header = (f"{'approach':>20} | {'mean time':>14} | {'90% CI':>9} | "
              f"{'perceived bw':>13} | {'eta':>6}")
    print(header)
    print("-" * len(header))
    base_mean = results[_BASELINE].mean
    for name in run_list:
        r = results[name]
        eta = base_mean / r.mean if r.mean else float("inf")
        print(
            f"{name:>20} | {r.mean_us:11.2f} us | "
            f"{r.stats.ci_half * 1e6:6.2f} us | "
            f"{r.bandwidth_gbs:8.3f} GB/s | {eta:6.2f}"
        )
    print(f"\n(eta = {_BASELINE} mean / approach mean; > 1 means faster "
          f"than the bulk-synchronous baseline)")

    if crossval_report is not None:
        print()
        print(crossval_report.to_text())

    if not args.no_json:
        # The sweep holds sim results for both `sim` and `both`; a pure
        # analytic run lands in its own default file (and is tagged in
        # the payload either way), so model predictions never clobber
        # the simulated BENCH_apps.json feed unnoticed.
        saved_backend = "sim" if args.backend == "both" else args.backend
        default_path = (
            DEFAULT_JSON_PATH
            if saved_backend == "sim"
            else "BENCH_apps_analytic.json"
        )
        path = args.json if args.json else default_path
        target = sweep.save(path, backend=saved_backend)
        print(f"[sweep persisted to {target}]")
    return (
        1 if crossval_report is not None and not crossval_report.passed else 0
    )


def _runner_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro runner-bench",
        description="Time the scenario runner's fixed quick grid at "
                    "jobs=1 vs jobs=N and persist BENCH_runner.json.",
    )
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="parallel worker count (0 = one per CPU)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="persistence path (default BENCH_runner.json)")
    parser.add_argument("--backend", default="sim",
                        choices=["sim", "analytic"],
                        help="execution backend the grid runs under")
    return parser


def _run_runner_bench(args) -> int:
    from .runner.benchmark import DEFAULT_JSON_PATH, benchmark_runner

    path = args.json if args.json else DEFAULT_JSON_PATH
    payload = benchmark_runner(
        jobs=args.jobs if args.jobs > 0 else None, path=path,
        backend=args.backend,
    )
    print(
        f"{payload['n_scenarios']} scenarios ({payload['backend']}): "
        f"jobs=1 {payload['serial']['wall_s']:.2f}s, "
        f"jobs={payload['parallel']['jobs']} "
        f"{payload['parallel']['wall_s']:.2f}s "
        f"(speedup x{payload['speedup']:.2f})"
    )
    print(f"[timings persisted to {path}]")
    return 0


def _backend_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro backend-bench",
        description="Time identical grids under the sim and analytic "
                    "backends and persist BENCH_backends.json.",
    )
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="persistence path (default BENCH_backends.json)")
    return parser


def _run_backend_bench(args) -> int:
    from .backends.benchmark import DEFAULT_JSON_PATH, benchmark_backends

    path = args.json if args.json else DEFAULT_JSON_PATH
    payload = benchmark_backends(path=path)
    for record in payload["grids"]:
        print(
            f"{record['n_scenarios']:4d} scenarios: "
            f"sim {record['sim_wall_s']:8.3f}s, "
            f"analytic {record['analytic_wall_s']:8.5f}s "
            f"(speedup x{record['speedup']:.0f})"
        )
    print(f"minimum speedup: x{payload['min_speedup']:.0f}")
    print(f"[timings persisted to {path}]")
    return 0


def _store_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro store",
        description="Result-store maintenance: record counts per "
                    "kind/backend, total size, --prune for records "
                    "whose spec no longer round-trips, --export jsonl "
                    "for a JSON-lines dump, and --migrate to copy v1 "
                    "records into a schema-v2 campaign store.",
    )
    parser.add_argument("dir", metavar="DIR",
                        help="result store directory")
    parser.add_argument("--prune", action="store_true",
                        help="delete records that no longer round-trip "
                             "(torn writes, stale schema versions)")
    parser.add_argument("--export", choices=["jsonl"], default=None,
                        help="dump every readable record as JSON-lines "
                             "(one {hash, scenario, result} per line)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="export target (default: stdout)")
    parser.add_argument("--migrate", default=None, metavar="CAMPAIGN_ROOT",
                        help="copy v1 records into the campaign store at "
                             "CAMPAIGN_ROOT as hash-addressed loose rows")
    return parser


def _run_store(args) -> int:
    from .runner import CampaignStore, ResultStore

    store = ResultStore(args.dir)
    if args.export == "jsonl":
        target = args.out if args.out else sys.stdout
        try:
            count = store.export_jsonl(target)
        except BrokenPipeError:  # e.g. piped into head
            return 0
        print(f"[exported {count} record(s)"
              + (f" to {args.out}]" if args.out else "]"),
              file=sys.stderr)
        if not (args.migrate or args.prune):
            return 0
    else:
        stats = store.stats()
        print(f"store {stats['root']}: {stats['records']} records, "
              f"{stats['total_bytes']} bytes")
        for group, count in stats["per_kind_backend"].items():
            print(f"  {group:>20}: {count}")
        if stats["broken"]:
            print(f"  {'broken':>20}: {len(stats['broken'])}")
            for rel in stats["broken"]:
                print(f"    {rel}")
    if args.migrate:
        try:
            campaign = CampaignStore.open(args.migrate)
        except (FileNotFoundError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        moved = campaign.migrate_from_v1(store)
        print(f"migrated {moved} record(s) into {args.migrate}")
    if args.prune:
        # Reuse the stats scan when it ran; prune rescans otherwise.
        broken = stats["broken"] if args.export != "jsonl" else None
        removed = store.prune(broken=broken)
        print(f"pruned {len(removed)} record(s)")
    return 0


def _campaign_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description="Campaign-scale grids on the streaming schema-v2 "
                    "store: plan, execute (resumable), query, export.",
    )
    sub = parser.add_subparsers(dest="action", required=True)

    run = sub.add_parser(
        "run", help="execute a grid spec's missing points (resumable)"
    )
    run.add_argument("spec", metavar="SPEC",
                     help="grid spec JSON path ('-' reads stdin)")
    run.add_argument("--root", required=True, metavar="DIR",
                     help="campaign store directory")
    run.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes for simulation-backed "
                          "chunks (0 = one per CPU; default 1)")
    run.add_argument("--chunk", type=int, default=None, metavar="N",
                     help="points per chunk (default: backend-sized)")
    run.add_argument("--limit", type=int, default=None, metavar="N",
                     help="max points to execute this invocation")
    run.add_argument("--submit-ahead", type=int, default=None, metavar="N",
                     help="simulation chunks kept in flight on the "
                          "persistent pool (default: ~2x workers)")
    run.add_argument("--compress", action="store_true",
                     help="write gzip segments (.jsonl.gz; new "
                          "campaigns only — resumed campaigns keep "
                          "their header's compression)")
    run.add_argument("--binary", action="store_true",
                     help="write analytic columnar chunks as binary "
                          ".bin segments (raw little-endian column "
                          "blocks; new campaigns only — mutually "
                          "exclusive with --compress)")
    run.add_argument("--sync-write", action="store_true",
                     help="disable the async segment writer (inline "
                          "campaigns append on the compute thread; "
                          "segments are byte-identical either way)")
    run.add_argument("--fallback-store", default=None, metavar="DIR",
                     help="v1 result store consulted before simulating "
                          "(read-through)")
    run.add_argument("--metrics", nargs="?", const="auto", default=None,
                     metavar="PATH",
                     help="record pipeline telemetry to a metrics JSONL "
                          "(default path: <root>/metrics.jsonl); render "
                          "it with 'campaign profile'")
    run.add_argument("--trace", action="store_true",
                     help="stream simulator trace records into the "
                          "metrics file (requires --metrics; forces "
                          "in-process execution so records reach the "
                          "sink)")
    run.add_argument("--shards", type=int, default=None, metavar="N",
                     help="split the missing points across N local "
                          "shard subprocesses and merge their segments "
                          "back (0 = one per available CPU); each "
                          "shard writes collision-free seg-<token>-* "
                          "segments in its own store")
    run.add_argument("--keep-shards", action="store_true",
                     help="with --shards: keep the per-shard stores "
                          "under <root>/shards/ after the merge")

    shard = sub.add_parser(
        "shard",
        help="sharded execution: plan slabs, run one shard, merge "
             "shard stores",
    )
    shard_sub = shard.add_subparsers(dest="shard_action", required=True)

    splan = shard_sub.add_parser(
        "plan", help="print the [start, stop) slabs each shard would run"
    )
    splan.add_argument("spec", metavar="SPEC",
                       help="grid spec JSON path ('-' reads stdin)")
    splan.add_argument("--shards", type=int, required=True, metavar="N",
                       help="shard count")
    splan.add_argument("--root", default=None, metavar="DIR",
                       help="existing campaign store whose completed "
                            "ranges are subtracted first (resume-aware "
                            "planning)")

    srun = shard_sub.add_parser(
        "run",
        help="execute one shard into its own store (multi-machine "
             "shape: run anywhere, rsync the store back, merge once)",
    )
    srun.add_argument("spec", metavar="SPEC",
                      help="grid spec JSON path ('-' reads stdin)")
    srun.add_argument("--root", required=True, metavar="DIR",
                      help="this shard's store directory")
    srun.add_argument("--shard", required=True, metavar="I/N",
                      help="shard index/count, 1-based (e.g. 2/4)")
    srun.add_argument("--ranges", default=None, metavar="S-E,S-E",
                      help="explicit half-open index slabs (default: "
                           "shard I of shard-plan over the full grid)")
    srun.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="worker processes inside this shard for "
                           "simulation-backed chunks (default 1)")
    srun.add_argument("--chunk", type=int, default=None, metavar="N",
                      help="points per chunk (default: backend-sized)")
    srun.add_argument("--limit", type=int, default=None, metavar="N",
                      help="max points to execute this invocation")
    srun.add_argument("--compress", action="store_true",
                      help="write gzip segments")
    srun.add_argument("--binary", action="store_true",
                      help="write binary .bin segments")
    srun.add_argument("--sync-write", action="store_true",
                      help="disable the async segment writer")
    srun.add_argument("--metrics", nargs="?", const="auto", default=None,
                      metavar="PATH",
                      help="record this shard's telemetry to a metrics "
                           "JSONL (default: <root>/metrics.jsonl)")

    smerge = shard_sub.add_parser(
        "merge",
        help="adopt shard stores' segments into a target store "
             "(verified: grid hash, per-segment schema, disjoint "
             "coverage)",
    )
    smerge.add_argument("root", metavar="TARGET",
                        help="target campaign store")
    smerge.add_argument("shard_roots", nargs="+", metavar="SHARD",
                        help="shard store directories to adopt")
    smerge.add_argument("--link", action="store_true",
                        help="hard-link segments instead of moving "
                             "them (same filesystem; shard stores stay "
                             "intact)")

    status = sub.add_parser("status", help="coverage and store health")
    status.add_argument("root", metavar="DIR")
    status.add_argument("--json", action="store_true",
                        help="machine-readable status (one JSON object)")

    profile = sub.add_parser(
        "profile",
        help="stage-attribution report from a --metrics JSONL",
    )
    profile.add_argument("target", metavar="STORE|METRICS",
                         help="campaign root (holding metrics.jsonl) or "
                              "a metrics JSONL path")
    profile.add_argument("--json", action="store_true",
                         help="emit the attribution as JSON")

    export = sub.add_parser(
        "export", help="dump completed points (JSON-lines or .npz)"
    )
    export.add_argument("root", metavar="DIR")
    export.add_argument("--out", default=None, metavar="PATH",
                        help="target path (default: stdout; required "
                             "for --format npz)")
    export.add_argument("--where", action="append", default=[],
                        metavar="FIELD=VALUE",
                        help="filter points by spec field (repeatable)")
    export.add_argument("--format", choices=("jsonl", "npz"),
                        default="jsonl",
                        help="jsonl = one {index, assignment, result} "
                             "record per line; npz = columnar arrays "
                             "(indices, store columns, one decoded "
                             "axis_<name> array per axis — analytic "
                             "stores only, zero row dicts)")

    report = sub.add_parser(
        "report",
        help="per-axis aggregate stats straight from columns",
    )
    report.add_argument("root", metavar="DIR")
    report.add_argument("--slice", action="append", default=[],
                        metavar="FIELD=VALUE", dest="slices",
                        help="pin an axis/base field before grouping "
                             "(repeatable; query filter semantics)")
    report.add_argument("--json", action="store_true",
                        help="emit the report as JSON")

    compact = sub.add_parser(
        "compact", help="merge segments into few sorted files"
    )
    compact.add_argument("root", metavar="DIR")
    compact.add_argument("--compress", action="store_true",
                         help="write the merged segments gzipped and "
                              "make gzip the campaign default "
                              "(in-place migration)")
    compact.add_argument("--binary", action="store_true",
                         help="rewrite analytic rows as binary .bin "
                              "segments and make binary the campaign "
                              "default (in-place migration; mutually "
                              "exclusive with --compress)")
    return parser


def _parse_where(clauses):
    """'field=value' filters with JSON-typed values (bare = string)."""
    import json as _json

    filters = {}
    for clause in clauses:
        if "=" not in clause:
            raise ValueError(f"bad --where clause {clause!r}")
        name, _, raw = clause.partition("=")
        try:
            filters[name] = _json.loads(raw)
        except ValueError:
            filters[name] = raw
    return filters


def _run_campaign_metered(store, run_campaign_fn, run_kwargs, args) -> dict:
    """Run a campaign under an active telemetry registry, writing the
    metrics JSONL (and, with ``--trace``, the streamed simulator trace)
    when the run finishes — or is interrupted."""
    from pathlib import Path

    from . import telemetry
    from .runner.profile import DEFAULT_METRICS_NAME

    metrics_path = (
        Path(store.root) / DEFAULT_METRICS_NAME
        if args.metrics == "auto"
        else Path(args.metrics)
    )
    producer = {
        "tool": "campaign run",
        "grid_hash": store.header["grid_hash"],
        "backend": store.header["backend"],
        "kind": store.header["kind"],
        "jobs": run_kwargs["jobs"],
    }
    shard = store.header.get("shard")
    if shard is not None:
        # Per-shard provenance: a merged campaign's metrics-<token>
        # files each say which slab of which split produced them.
        producer["tool"] = "campaign shard run"
        producer["shard"] = {
            "index": shard["index"],
            "count": shard["count"],
        }
    trace = getattr(args, "trace", False)
    registry = telemetry.MetricsRegistry()
    sink = telemetry.MetricsSink(metrics_path, producer=producer)
    previous_registry = telemetry.set_registry(registry)
    # Trace records can only reach the parent's sink from in-process
    # simulations, so --trace pins the pool policy to "never".
    previous_sink = telemetry.set_trace_sink(
        sink.write_trace if trace else None
    )
    if trace:
        run_kwargs = dict(run_kwargs, pool="never")
    try:
        summary = run_campaign_fn(store, **run_kwargs)
        sink.write_snapshot(registry.snapshot())
        sink.close(
            summary={
                key: summary[key]
                for key in ("executed", "chunks", "wall_s", "points_per_s")
                if key in summary
            }
        )
    finally:
        telemetry.set_registry(previous_registry)
        telemetry.set_trace_sink(previous_sink)
        sink.close()
    print(f"[metrics written to {metrics_path}]")
    return summary


def _run_campaign_cli(args) -> int:
    import json as _json

    from .runner import CampaignStore, ResultStore, parse_grid_spec
    from .runner import run_campaign as run_campaign_fn

    if args.action == "profile":
        from .runner.profile import render_profile, resolve_metrics_path

        try:
            path = resolve_metrics_path(args.target)
            print(render_profile(path, as_json=args.json))
        except (FileNotFoundError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0

    if args.action == "run":
        if args.trace and not args.metrics:
            print("error: --trace requires --metrics", file=sys.stderr)
            return 2
        try:
            raw = (
                sys.stdin.read()
                if args.spec == "-"
                else open(args.spec).read()
            )
            grid = parse_grid_spec(_json.loads(raw))
        except OSError as exc:
            print(f"error: cannot read grid spec: {exc}", file=sys.stderr)
            return 2
        except (KeyError, TypeError, ValueError) as exc:
            print(f"error: bad grid spec: {exc}", file=sys.stderr)
            return 2
        fallback = (
            ResultStore(args.fallback_store) if args.fallback_store else None
        )
        if args.compress and args.binary:
            print("error: --compress and --binary are mutually exclusive",
                  file=sys.stderr)
            return 2
        compression = "none"
        if args.compress:
            compression = "gzip"
        elif args.binary:
            compression = "binary"
        try:
            store = CampaignStore.create(
                args.root, grid, fallback=fallback,
                compression=compression,
            )
        except (KeyError, TypeError, ValueError) as exc:
            message = exc.args[0] if exc.args else exc
            print(f"error: {message}", file=sys.stderr)
            return 2
        from .runner import default_jobs

        jobs = args.jobs if args.jobs > 0 else default_jobs()
        if args.shards is not None:
            if args.trace:
                print("error: --trace is per-process; unsupported with "
                      "--shards", file=sys.stderr)
                return 2
            if args.limit is not None or args.submit_ahead is not None:
                print("error: --limit/--submit-ahead are per-shard "
                      "knobs; unsupported with --shards",
                      file=sys.stderr)
                return 2
            from .runner.shard import run_sharded

            def run_sharded_fn(store, jobs=1):
                return run_sharded(
                    store,
                    n_shards=args.shards,
                    jobs=args.jobs if args.jobs > 0 else 1,
                    chunk_points=args.chunk,
                    keep_shards=args.keep_shards,
                    shard_metrics=bool(args.metrics),
                    progress=print,
                )

            run_kwargs = dict(jobs=jobs)
            try:
                if args.metrics:
                    summary = _run_campaign_metered(
                        store, run_sharded_fn, run_kwargs, args
                    )
                else:
                    summary = run_sharded_fn(store, **run_kwargs)
            except (RuntimeError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            merge = summary.get("merge")
            pps = summary["points_per_s"]
            print(
                f"executed {summary['executed']} point(s) across "
                f"{len(summary['shards'])} shard(s), "
                f"{summary['wall_s']:.2f}s"
                + (f" ({pps:,.0f} points/s)" if pps else "")
                + (f"; adopted {merge['segments_adopted']} segment(s)"
                   if merge else "")
            )
            print(
                f"campaign {store.header['grid_hash'][:12]}: "
                f"{summary['completed']}/{summary['n_points']} "
                f"points complete"
            )
            return 0
        run_kwargs = dict(
            jobs=jobs,
            chunk_points=args.chunk,
            limit=args.limit,
            submit_ahead=args.submit_ahead,
            async_write=False if args.sync_write else None,
            progress=print,
        )
        if args.metrics:
            summary = _run_campaign_metered(
                store, run_campaign_fn, run_kwargs, args
            )
        else:
            summary = run_campaign_fn(store, **run_kwargs)
        pps = summary["points_per_s"]
        print(
            f"executed {summary['executed']} point(s) in "
            f"{summary['chunks']} chunk(s), {summary['wall_s']:.2f}s"
            + (f" ({pps:,.0f} points/s)" if pps else "")
            + (f", {summary['cached']} served read-through"
               if summary["cached"] else "")
        )
        print(
            f"campaign {store.header['grid_hash'][:12]}: "
            f"{summary['completed']}/{summary['n_points']} points complete"
        )
        return 0

    if args.action == "shard":
        from .runner.shard import (
            format_ranges,
            merge_shards,
            parse_ranges,
            parse_shard,
            run_shard,
            shard_token,
        )

        if args.shard_action == "merge":
            try:
                summary = merge_shards(
                    args.root, args.shard_roots, link=args.link
                )
            except (FileNotFoundError, ValueError, RuntimeError,
                    OSError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            print(
                f"adopted {summary['segments_adopted']} segment(s) from "
                f"{summary['shards']} shard store(s)"
                + (" [linked]" if summary["linked"] else "")
            )
            print(f"target: {summary['completed']} point(s) complete")
            return 0

        try:
            raw = (
                sys.stdin.read()
                if args.spec == "-"
                else open(args.spec).read()
            )
            grid = parse_grid_spec(_json.loads(raw))
        except OSError as exc:
            print(f"error: cannot read grid spec: {exc}", file=sys.stderr)
            return 2
        except (KeyError, TypeError, ValueError) as exc:
            print(f"error: bad grid spec: {exc}", file=sys.stderr)
            return 2

        if args.shard_action == "plan":
            from .runner.planner import shard_plan

            completed = []
            if args.root:
                try:
                    target = CampaignStore.open(args.root)
                except (FileNotFoundError, ValueError) as exc:
                    print(f"error: {exc}", file=sys.stderr)
                    return 2
                if target.header["grid_hash"] != grid.content_hash():
                    print(
                        "error: --root holds a different grid than SPEC",
                        file=sys.stderr,
                    )
                    return 2
                completed = target.completed_ranges()
            try:
                plans = shard_plan(
                    len(grid), args.shards, completed=completed
                )
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            print(_json.dumps(
                {
                    "n_points": len(grid),
                    "grid_hash": grid.content_hash(),
                    "shards": [
                        {
                            "shard": f"{i + 1}/{args.shards}",
                            "points": sum(e - s for s, e in plan),
                            "ranges": [[s, e] for s, e in plan],
                            "ranges_arg": format_ranges(plan),
                        }
                        for i, plan in enumerate(plans)
                    ],
                },
                indent=2,
            ))
            return 0

        if args.shard_action == "run":
            if args.compress and args.binary:
                print("error: --compress and --binary are mutually "
                      "exclusive", file=sys.stderr)
                return 2
            compression = "none"
            if args.compress:
                compression = "gzip"
            elif args.binary:
                compression = "binary"
            try:
                index, count = parse_shard(args.shard)
                ranges = (
                    parse_ranges(args.ranges) if args.ranges else None
                )
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            if ranges is None:
                from .runner.planner import shard_plan

                ranges = shard_plan(len(grid), count)[index - 1]
            run_kwargs = dict(
                jobs=args.jobs,
                chunk_points=args.chunk,
                limit=args.limit,
                async_write=False if args.sync_write else None,
                progress=print,
            )

            def run_shard_fn(store, **kw):
                return run_shard(
                    args.root, grid, index, count,
                    ranges=ranges, compression=compression, **kw
                )

            try:
                if args.metrics:
                    store = CampaignStore.create(
                        args.root, grid,
                        compression=compression,
                        writer_token=shard_token(index, count),
                        shard={
                            "index": index,
                            "count": count,
                            "ranges": ranges,
                        },
                    )
                    summary = _run_campaign_metered(
                        store, run_shard_fn, run_kwargs, args
                    )
                else:
                    summary = run_shard_fn(None, **run_kwargs)
            except (KeyError, TypeError, ValueError) as exc:
                message = exc.args[0] if exc.args else exc
                print(f"error: {message}", file=sys.stderr)
                return 2
            info = summary["shard"]
            pps = summary["points_per_s"]
            print(
                f"shard {index}/{count} [{info['token']}]: executed "
                f"{summary['executed']} point(s) in "
                f"{summary['wall_s']:.2f}s"
                + (f" ({pps:,.0f} points/s)" if pps else "")
            )
            print(
                f"assigned {info['assigned']} point(s), "
                f"{info['remaining']} remaining in this shard"
            )
            return 0
        return 2

    try:
        store = CampaignStore.open(args.root)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.action == "status":
        stats = store.stats()
        if args.json:
            try:
                print(_json.dumps(stats, indent=2, sort_keys=True))
            except BrokenPipeError:  # e.g. piped into head
                pass
            return 0
        print(f"campaign {stats['root']} "
              f"[{stats['kind']}/{stats['backend']}, "
              f"grid {stats['grid_hash'][:12]}]")
        print(f"  points:   {stats['completed']}/{stats['n_points']} "
              f"complete ({stats['missing']} missing)")
        print(f"  segments: {stats['segments']} "
              f"({stats['total_bytes']} bytes)")
        if stats["loose_rows"]:
            print(f"  loose:    {stats['loose_rows']} migrated v1 row(s)")
        if "shard" in stats:
            print(f"  shard:    {stats['shard']['index']}/"
                  f"{stats['shard']['count']} of a sharded campaign")
        for writer, cov in stats.get("shard_segments", {}).items():
            print(f"  writer {writer}: {cov['points']} point(s) in "
                  f"{len(cov['ranges'])} range(s)")
        for entry in stats.get("shards", []):
            missing = (
                f", {entry['missing']} missing"
                if "missing" in entry else ""
            )
            print(f"  shard store {entry['root']}: "
                  f"{entry['completed']} point(s) complete{missing}")
        return 0
    if args.action == "export":
        try:
            filters = _parse_where(args.where)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.format == "npz":
            if not args.out:
                print("error: --format npz requires --out PATH",
                      file=sys.stderr)
                return 2
            try:
                count = store.export_npz(args.out, where=filters or None)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            print(f"[exported {count} point(s) to {args.out}]",
                  file=sys.stderr)
            return 0
        target = args.out if args.out else sys.stdout
        try:
            count = store.export_jsonl(target, where=filters or None)
        except BrokenPipeError:  # e.g. piped into head
            return 0
        print(f"[exported {count} point(s)]", file=sys.stderr)
        return 0
    if args.action == "report":
        from .runner.campaign import slice_report

        try:
            slices = _parse_where(args.slices)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        try:
            report = slice_report(store, slices or None)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.json:
            try:
                print(_json.dumps(report, indent=2, sort_keys=True))
            except BrokenPipeError:  # e.g. piped into head
                pass
            return 0
        pinned = ", ".join(
            f"{k}={v}" for k, v in report["slice"].items()
        ) or "(none)"
        print(f"campaign report [{report['kind']}] "
              f"slice {pinned}: {report['points']} point(s)")
        if "times_us" in report:
            t = report["times_us"]
            print(f"  times: mean {t['mean']:.3f}us "
                  f"min {t['min']:.3f}us max {t['max']:.3f}us")
        for axis, groups in report["axes"].items():
            print(f"  by {axis}:")
            for g in groups:
                print(f"    {g['value']!r:>16}: n={g['n']:<7} "
                      f"mean {g['mean_us']:.3f}us "
                      f"min {g['min_us']:.3f}us "
                      f"max {g['max_us']:.3f}us")
        return 0
    if args.action == "compact":
        if args.compress and args.binary:
            print("error: --compress and --binary are mutually exclusive",
                  file=sys.stderr)
            return 2
        summary = store.compact(
            compress=True if args.compress else None,
            binary=True if args.binary else None,
        )
        print(f"compacted {summary['segments_before']} segment(s) into "
              f"{summary['segments_after']} ({summary['points']} points)"
              + (" [gzip]" if args.compress else "")
              + (" [binary]" if args.binary else ""))
        return 0
    return 2


def _campaign_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro campaign-bench",
        description="Time a fixed >=10^5-point analytic grid through "
                    "the batched campaign pipeline vs per-point "
                    "execution and persist BENCH_campaign.json.",
    )
    parser.add_argument("--kind", default="bench",
                        choices=["bench", "pattern", "sharded"],
                        help="grid family: two-rank bench points "
                             "(default), N-rank application patterns "
                             "(pattern_campaign payload section), or "
                             "sharded execution (large bench grid as "
                             "N shard subprocesses vs one process; "
                             "sharded_campaign payload section)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="persistence path (default BENCH_campaign.json)")
    parser.add_argument("--sizes", type=int, default=None, metavar="N",
                        help="size-axis length (default 320 -> 102400 "
                             "bench points / 50 -> 115200 pattern "
                             "points / 20000 -> 6.4M sharded points; "
                             "lower for a quick run)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="shard subprocesses for --kind sharded "
                             "(default 4)")
    parser.add_argument("--root", default=None, metavar="DIR",
                        help="keep the campaign store here (default: "
                             "temp dir, removed after the run)")
    return parser


def _run_campaign_bench(args) -> int:
    from .runner.campaign_bench import (
        DEFAULT_JSON_PATH,
        DEFAULT_N_SHARDS,
        benchmark_campaign,
    )

    path = args.json if args.json else DEFAULT_JSON_PATH
    try:
        payload = benchmark_campaign(
            path=path,
            n_sizes=args.sizes,
            root=args.root,
            kind=args.kind,
            n_shards=args.shards if args.shards else DEFAULT_N_SHARDS,
        )
    except RuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.kind == "sharded":
        section = payload["sharded_campaign"]
        print(
            f"{section['n_points']} analytic bench points: "
            f"single process {section['single']['wall_s']:.2f}s "
            f"({section['single']['points_per_s']:,.0f} points/s)"
        )
        print(
            f"{section['n_shards']} shards: "
            f"{section['sharded']['wall_s']:.2f}s "
            f"({section['sharded']['points_per_s']:,.0f} points/s, "
            f"merge {section['sharded']['merge_wall_s']:.2f}s, "
            f"{section['sharded']['segments_adopted']} segments adopted)"
        )
        print(
            f"sharded speedup: x{section['speedup_vs_single']:.2f} "
            f"vs single process (merged store verified column-equal)"
        )
        print(f"[timings persisted to {path}]")
        return 0
    section = payload if args.kind == "bench" else payload["pattern_campaign"]
    print(
        f"{section['n_points']} analytic {args.kind} points: "
        f"batched {section['batched']['wall_s']:.2f}s "
        f"({section['batched']['points_per_s']:,.0f} points/s, "
        f"{section['batched']['segments']} segments)"
    )
    print(
        f"per-point pipeline (run() + file per point): "
        f"{section['per_point_pipeline']['points_per_s']:,.0f} points/s "
        f"(~{section['per_point_pipeline']['projected_wall_s']:,.0f}s "
        f"projected for the full grid)"
    )
    if args.kind == "bench":
        print(
            f"bare execute: "
            f"{section['per_point_execute_only']['points_per_s']:,.0f} "
            f"points/s"
        )
        reads = section["read_path"]
        print(
            f"read drain: rows jsonl "
            f"{reads['jsonl']['points_per_s']:,.0f} / binary "
            f"{reads['binary']['points_per_s']:,.0f} points/s; "
            f"columnar jsonl "
            f"{reads['columnar']['jsonl']['points_per_s']:,.0f} / binary "
            f"{reads['columnar']['binary']['points_per_s']:,.0f} points/s "
            f"(x{reads['columnar']['binary']['speedup_vs_row_drain']:.1f} "
            f"vs binary rows)"
        )
        print(
            f"batched speedup: x{section['speedup']:.1f} vs pipeline, "
            f"x{section['speedup_vs_execute_only']:.1f} vs bare execute"
        )
    else:
        print(
            f"PR-4 config path (scenario_at per point): "
            f"{section['config_path']['points_per_s']:,.0f} points/s"
        )
        print(
            f"batched speedup: x{section['speedup']:.1f} vs pipeline, "
            f"x{section['speedup_vs_config_path']:.1f} vs config path"
        )
    print(f"[timings persisted to {path}]")
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "apps":
        parser = _apps_parser()
        return _run_apps(parser.parse_args(argv[1:]), parser)
    if argv and argv[0] == "figures":
        parser = _figures_parser()
        return _run_figures(parser.parse_args(argv[1:]), parser)
    if argv and argv[0] == "campaign":
        return _run_campaign_cli(_campaign_parser().parse_args(argv[1:]))
    if argv and argv[0] == "campaign-bench":
        return _run_campaign_bench(
            _campaign_bench_parser().parse_args(argv[1:])
        )
    if argv and argv[0] == "runner-bench":
        return _run_runner_bench(_runner_bench_parser().parse_args(argv[1:]))
    if argv and argv[0] == "backend-bench":
        return _run_backend_bench(_backend_bench_parser().parse_args(argv[1:]))
    if argv and argv[0] == "store":
        return _run_store(_store_parser().parse_args(argv[1:]))
    # No subcommand: historical figure-regeneration behavior.
    parser = _figures_parser(top_level=True)
    return _run_figures(parser.parse_args(argv), parser)


if __name__ == "__main__":
    sys.exit(main())
