"""MPI+threads substrate: simulated thread teams, compute models, binding."""

from .binding import BindingPolicy, close_binding, spread_binding
from .compute import (
    ComputeModel,
    FixedDelayModel,
    GaussianComputeModel,
    NoDelayModel,
)
from .team import ThreadTeam

__all__ = [
    "ThreadTeam",
    "ComputeModel",
    "NoDelayModel",
    "FixedDelayModel",
    "GaussianComputeModel",
    "BindingPolicy",
    "close_binding",
    "spread_binding",
]
