"""Simulated thread teams (the OpenMP layer of MPI+threads).

A :class:`ThreadTeam` forks ``n_threads`` simulated threads inside one
rank, mirroring the paper's benchmark structure (Fig. 3): the master
thread performs ``start``/``wait`` while every thread computes on its
partitions and calls ``ready``.  Thread barriers pay the tree-barrier
cost of :meth:`SystemParams.barrier_time` — the synchronization penalty
the paper notes for ``Pt2Pt single`` at 32 threads (§4.2.1).
"""

from __future__ import annotations

from typing import Callable, Generator, List

from ..sim import Environment, Process, SimBarrier

__all__ = ["ThreadTeam"]


class ThreadTeam:
    """A fork/join team of simulated threads within one rank.

    Parameters
    ----------
    env:
        Simulation environment.
    n_threads:
        Team size (``OMP_NUM_THREADS``).
    barrier_cost:
        Simulated time one thread barrier takes (use
        ``params.barrier_time(n_threads)``).
    """

    def __init__(self, env: Environment, n_threads: int, barrier_cost: float = 0.0):
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self.env = env
        self.n_threads = n_threads
        self.barrier_cost = barrier_cost
        self._barrier = SimBarrier(env, n_threads, name="team")
        self.barrier_count = 0

    # ------------------------------------------------------------------
    def barrier(self):
        """Generator: thread barrier (all team threads must call it)."""
        self.barrier_count += 1
        if self.barrier_cost > 0.0:
            yield self.env.timeout(self.barrier_cost)
        yield self._barrier.wait()

    def fork(
        self,
        body: Callable[[int], Generator],
    ) -> List[Process]:
        """Launch ``body(thread_id)`` as one process per thread.

        Returns the processes; join with :meth:`join`.
        """
        return [self.env.process(body(tid)) for tid in range(self.n_threads)]

    def join(self, procs: List[Process]):
        """Generator: wait for all forked threads to finish."""
        for proc in procs:
            if proc.is_alive:
                yield proc

    def run_parallel(self, body: Callable[[int], Generator]):
        """Generator: fork + join in one call; returns thread results."""
        procs = self.fork(body)
        yield from self.join(procs)
        return [p.value for p in procs]
