"""Compute-delay models (Appendix A of the paper).

The pipelined pattern's gain is driven by the *delay* between the first
and last partition becoming ready.  The paper reduces all computation to
a per-partition compute time

    T_cmpt = µ · S_part · N(1, (ε + δ)/2)          (Eq. 7)

with µ the average compute rate (s/B, Eq. 6), ε the system noise, and δ
the algorithmic imbalance.  Three models are provided:

* :class:`NoDelayModel` — γ = 0; used for Fig. 4 and the small-message
  studies (Figs. 5–7) where "all the partitions are ready immediately".
* :class:`FixedDelayModel` — the controlled §4.3 setup: the **last**
  partition is delayed by ``γ · S_part`` while all others are ready at
  once; used for Fig. 8.
* :class:`GaussianComputeModel` — the full Appendix-A model with seeded
  noise streams, used by the examples and the model-validation tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "ComputeModel",
    "NoDelayModel",
    "FixedDelayModel",
    "GaussianComputeModel",
]


class ComputeModel:
    """Interface: per-partition compute times in seconds."""

    def compute_time(
        self, thread_id: int, partition: int, part_bytes: int, n_threads: int,
        theta: int,
    ) -> float:
        """Compute time for one partition on one thread.

        Parameters mirror the benchmark: ``partition`` is the global
        partition index, ``theta`` the partitions per thread.
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Reset per-iteration state (called between iterations)."""


class NoDelayModel(ComputeModel):
    """All partitions ready immediately (γ = 0)."""

    def compute_time(self, thread_id, partition, part_bytes, n_threads, theta):
        return 0.0


class FixedDelayModel(ComputeModel):
    """The §4.3 controlled-delay setup for the early-bird study.

    "The last partition is delayed compared with the other N_part − 1
    partitions, where the delay time is given by γ·S_part."

    Parameters
    ----------
    gamma:
        Delay rate in s/B (the paper quotes µs/MB; 100 µs/MB = 1e-10 s/B).
    """

    def __init__(self, gamma: float):
        if gamma < 0:
            raise ValueError("gamma must be >= 0")
        self.gamma = gamma

    @classmethod
    def from_us_per_mb(cls, gamma_us_per_mb: float) -> "FixedDelayModel":
        """Build from the paper's µs/MB unit."""
        return cls(gamma_us_per_mb * 1e-6 / 1e6)

    def compute_time(self, thread_id, partition, part_bytes, n_threads, theta):
        n_part = n_threads * theta
        if partition == n_part - 1:
            return self.gamma * part_bytes
        return 0.0


class GaussianComputeModel(ComputeModel):
    """The Appendix-A noise model: ``T = µ · S · N(1, σ)`` with
    ``σ = (ε + δ)/2``, drawn from a named deterministic stream.

    Parameters
    ----------
    mu:
        Average compute rate in s/B (Eq. 6).
    epsilon:
        System noise level ε.
    delta:
        Algorithmic imbalance δ.
    rng:
        A ``numpy.random.Generator`` (use
        :meth:`RngRegistry.stream` for reproducibility).
    """

    def __init__(
        self,
        mu: float,
        epsilon: float = 0.0,
        delta: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        if mu < 0:
            raise ValueError("mu must be >= 0")
        if epsilon < 0 or delta < 0:
            raise ValueError("noise terms must be >= 0")
        self.mu = mu
        self.epsilon = epsilon
        self.delta = delta
        self.rng = rng if rng is not None else np.random.default_rng(0)

    @property
    def sigma(self) -> float:
        """Relative noise std-dev σ = (ε + δ)/2 (Eq. 7)."""
        return (self.epsilon + self.delta) / 2.0

    def compute_time(self, thread_id, partition, part_bytes, n_threads, theta):
        factor = self.rng.normal(1.0, self.sigma) if self.sigma > 0 else 1.0
        return max(0.0, self.mu * part_bytes * factor)
