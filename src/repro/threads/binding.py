"""Thread→core binding (the paper's ``OMP_PROC_BIND=CLOSE`` setup).

The paper binds OpenMP threads closely to cores and gives each MPI rank
as many cores as threads (``-bind-to cores:${OMP_NUM_THREADS}``).  The
binding map is bookkeeping in the simulator — threads never oversubscribe
cores in any benchmarked configuration — but it is modelled so that
configurations *can* oversubscribe and so experiments can report
placements.
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = ["BindingPolicy", "close_binding", "spread_binding"]


class BindingPolicy:
    """A thread→core map for one rank."""

    def __init__(self, cores: List[int], name: str = "custom"):
        if not cores:
            raise ValueError("need at least one core")
        self.cores = list(cores)
        self.name = name

    def core_of(self, thread_id: int) -> int:
        """Core hosting ``thread_id`` (wraps when oversubscribed)."""
        return self.cores[thread_id % len(self.cores)]

    @property
    def oversubscribed(self) -> bool:
        """True when more threads than cores would share cores."""
        return len(set(self.cores)) < len(self.cores)

    def placement(self, n_threads: int) -> List[Tuple[int, int]]:
        """(thread, core) pairs for a team of ``n_threads``."""
        return [(t, self.core_of(t)) for t in range(n_threads)]


def close_binding(n_threads: int, cores_per_node: int = 64,
                  first_core: int = 0) -> BindingPolicy:
    """``OMP_PROC_BIND=CLOSE`` with ``OMP_PLACES=cores``: consecutive
    cores starting at ``first_core``."""
    if n_threads < 1:
        raise ValueError("n_threads must be >= 1")
    cores = [first_core + (i % cores_per_node) for i in range(n_threads)]
    return BindingPolicy(cores, name="close")


def spread_binding(n_threads: int, cores_per_node: int = 64) -> BindingPolicy:
    """``OMP_PROC_BIND=SPREAD``: evenly spaced cores."""
    if n_threads < 1:
        raise ValueError("n_threads must be >= 1")
    stride = max(1, cores_per_node // n_threads)
    cores = [(i * stride) % cores_per_node for i in range(n_threads)]
    return BindingPolicy(cores, name="spread")
