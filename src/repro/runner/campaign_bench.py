"""Campaign self-benchmark: the ``BENCH_campaign.json`` artifact.

Runs one fixed ≥10⁵-point analytic grid through three pipelines and
records each throughput, so the whole point of the batched refactor is
a recorded, regenerable number instead of a claim:

* **batched** — the campaign pipeline end-to-end: grid-index decode →
  vectorized kernel → columnar JSONL segments (what this PR adds);
* **per-point pipeline** — the PR-3 status quo for a persisted
  campaign: one ``Backend.run()`` per point, one content-hashed JSON
  file per point in a v1 :class:`~repro.runner.store.ResultStore` (the
  ``speedup`` headline is batched vs this, measured on a subsample and
  scaled — running it on all 10⁵ points would add minutes and a
  hundred thousand inodes for the same number);
* **per-point execute only** — bare ``execute() + result_to_dict``
  with no persistence, the lower bound any per-point loop could reach
  (reported for transparency as ``speedup_vs_execute_only``).

Run:  ``python -m repro campaign-bench [--json PATH] [--sizes N]``
"""

from __future__ import annotations

import json
import platform
import shutil
import tempfile
import time
from pathlib import Path
from typing import Optional

from .campaign import CAMPAIGN_SCHEMA, CampaignStore, parse_grid_spec, run_campaign

__all__ = ["DEFAULT_JSON_PATH", "campaign_grid_spec", "benchmark_campaign"]

#: Default persistence target (picked up by the perf trajectory).
DEFAULT_JSON_PATH = "BENCH_campaign.json"

_SCHEMA = "repro.campaign.bench/v1"

#: Size-axis length of the fixed benchmark grid.  The default crosses
#: 8 approaches x 320 sizes x 4 thread counts x 2 theta x 5 compute
#: rates = 102,400 points.
DEFAULT_N_SIZES = 320

#: Points of the per-point *pipeline* baseline (executor + one JSON
#: file per point): a uniform stride over the grid, timed and scaled.
PIPELINE_SAMPLE_POINTS = 4096


def campaign_grid_spec(n_sizes: int = DEFAULT_N_SIZES) -> dict:
    """The fixed analytic campaign grid (declarative JSON spec form)."""
    return {
        "kind": "bench",
        "backend": "analytic",
        "base": {"iterations": 3},
        "axes": {
            "approach": [
                "pt2pt_single",
                "pt2pt_many",
                "pt2pt_part",
                "pt2pt_part_old",
                "rma_single_passive",
                "rma_many_passive",
                "rma_single_active",
                "rma_many_active",
            ],
            "total_bytes": {"range": [1024, 1024 + n_sizes * 4096, 4096]},
            "n_threads": [1, 4, 16, 32],
            "theta": [1, 2],
            "gamma_us_per_mb": [0.0, 50.0, 100.0, 200.0, 400.0],
        },
    }


def benchmark_campaign(
    path: str | Path = DEFAULT_JSON_PATH,
    n_sizes: int = DEFAULT_N_SIZES,
    root: Optional[str | Path] = None,
) -> dict:
    """Run the fixed grid batched and per-point; persist the timings.

    ``root`` keeps the campaign directory for inspection; by default it
    lives in a temp dir and is removed after the measurement.  Returns
    the written payload.
    """
    from .scenario import execute, result_to_dict
    from .store import ResultStore

    grid = parse_grid_spec(campaign_grid_spec(n_sizes))
    keep = root is not None
    work = Path(root) if keep else Path(tempfile.mkdtemp()) / "campaign"
    work.mkdir(parents=True, exist_ok=True)
    try:
        # Warm the lazy imports (bench/apps/model layers load on first
        # execute) so no pipeline is charged one-time import cost.
        warm = grid.scenario_at(0)
        result_to_dict(warm, execute(warm))

        t0 = time.perf_counter()
        store = CampaignStore.create(work / "store", grid)
        summary = run_campaign(store)
        batched_wall = time.perf_counter() - t0
        if summary["executed"] != len(grid):
            raise RuntimeError(
                f"campaign root {work / 'store'} already held "
                f"{len(grid) - summary['executed']} of {len(grid)} points; "
                f"a resumed run would record inflated throughput — "
                f"benchmark against an empty --root"
            )
        store_stats = store.stats()

        # PR-3 per-point pipeline on a uniform subsample, scaled: one
        # Backend.run() per point, one content-hashed file per point.
        # (Deliberately NOT through the current executor — it would
        # route the analytic batch through run_batch and measure the
        # vectorized kernel instead of the per-point status quo.)
        stride = max(1, len(grid) // PIPELINE_SAMPLE_POINTS)
        sample = [
            grid.scenario_at(i) for i in range(0, len(grid), stride)
        ]
        v1_store = ResultStore(work / "v1-store")
        t0 = time.perf_counter()
        for scenario in sample:
            v1_store.put_dict(
                scenario, result_to_dict(scenario, execute(scenario))
            )
        pipeline_wall = time.perf_counter() - t0
        pipeline_pps = len(sample) / pipeline_wall

        t0 = time.perf_counter()
        per_point = 0
        for _, scenario in grid.points():
            result_to_dict(scenario, execute(scenario))
            per_point += 1
        execute_wall = time.perf_counter() - t0
        execute_pps = per_point / execute_wall
    finally:
        if not keep:
            shutil.rmtree(work.parent, ignore_errors=True)

    batched_pps = len(grid) / batched_wall
    payload = {
        "schema": _SCHEMA,
        #: Provenance: these are model evaluations, never measurements.
        "backend": "analytic",
        "campaign_schema": CAMPAIGN_SCHEMA,
        "grid": campaign_grid_spec(n_sizes),
        "n_points": len(grid),
        "python": platform.python_version(),
        "batched": {
            "wall_s": round(batched_wall, 4),
            "points_per_s": round(batched_pps, 1),
            "chunks": summary["chunks"],
            "segments": store_stats["segments"],
            "store_bytes": store_stats["total_bytes"],
        },
        "per_point_pipeline": {
            "description": "one Backend.run() + one content-hashed JSON "
                           "file per point (v1 ResultStore), sampled",
            "sample_points": len(sample),
            "wall_s": round(pipeline_wall, 4),
            "points_per_s": round(pipeline_pps, 1),
            "projected_wall_s": round(len(grid) / pipeline_pps, 1),
        },
        "per_point_execute_only": {
            "description": "bare execute() + result_to_dict, no store",
            "wall_s": round(execute_wall, 4),
            "points_per_s": round(execute_pps, 1),
        },
        "speedup": round(batched_pps / pipeline_pps, 1),
        "speedup_vs_execute_only": round(batched_pps / execute_pps, 1),
    }
    target = Path(path)
    target.write_text(json.dumps(payload, indent=2) + "\n")
    return payload
