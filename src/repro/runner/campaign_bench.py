"""Campaign self-benchmark: the ``BENCH_campaign.json`` artifact.

Runs one fixed ≥10⁵-point analytic grid per scenario family through
three pipelines and records each throughput, so the whole point of the
batched refactor is a recorded, regenerable number instead of a claim:

* **batched** — the campaign pipeline end-to-end: grid-index decode →
  vectorized kernel → columnar JSONL segments, written synchronously
  (the PR-5 columns-first status quo).  For ``--kind pattern`` this is
  the columns-first pattern fast path (topology summaries cached per
  unique geometry, no per-point config objects);
* **binary campaign** (bench kind, ``binary_campaign`` section) — the
  same grid through binary ``.bin`` segments plus the async segment
  writer (``speedup_vs_jsonl`` is binary+async vs the batched row
  above), with a ``read_path`` section timing a full ``iter_rows``
  drain of both stores through the streaming k-way merge and a
  ``read_path.columnar`` subsection timing the ``iter_columns`` bulk
  drain per format (array slices end-to-end — the number the CI
  read-path gate holds);
* **per-point pipeline** — the per-point status quo for a persisted
  campaign: one ``Backend.run()`` per point, one content-hashed JSON
  file per point in a v1 :class:`~repro.runner.store.ResultStore` (the
  ``speedup`` headline is batched vs this, measured on a subsample and
  scaled — running it on every point would add minutes and a hundred
  thousand inodes for the same number);
* **per-point execute only** — bare ``execute() + result_to_dict``
  with no persistence, the lower bound any per-point loop could reach
  (reported for transparency as ``speedup_vs_execute_only``).

The pattern payload additionally records the **PR-4 config path**
(``scenario_at`` per point into the batch kernel — the pattern
campaign status quo before the columns-first fast path) as
``speedup_vs_config_path``.

Both families persist into one ``BENCH_campaign.json``: the bench run
owns the top-level fields (unchanged schema), the pattern run owns the
``pattern_campaign`` section; each run preserves the other's numbers.

Run:  ``python -m repro campaign-bench [--kind bench|pattern]
[--json PATH] [--sizes N]``
"""

from __future__ import annotations

import json
import platform
import shutil
import tempfile
from pathlib import Path
from typing import Optional

from ..telemetry import environment_provenance, stopwatch
from .campaign import CAMPAIGN_SCHEMA, CampaignStore, parse_grid_spec, run_campaign

__all__ = [
    "DEFAULT_JSON_PATH",
    "campaign_grid_spec",
    "pattern_campaign_grid_spec",
    "benchmark_campaign",
]

#: Default persistence target (picked up by the perf trajectory).
DEFAULT_JSON_PATH = "BENCH_campaign.json"

_SCHEMA = "repro.campaign.bench/v1"

#: Size-axis length of the fixed benchmark grid.  The default crosses
#: 8 approaches x 320 sizes x 4 thread counts x 2 theta x 5 compute
#: rates = 102,400 points.
DEFAULT_N_SIZES = 320

#: Size-axis length of the fixed *pattern* benchmark grid.  The default
#: crosses 3 patterns x 8 approaches x 50 sizes x 3 thread counts x
#: 4 noise shapes x 4 amplitudes x 2 compute rates = 115,200 points
#: over 450 unique topology geometries.
DEFAULT_N_PATTERN_SIZES = 50

#: Size-axis length of the *sharded* benchmark grid (same spec family
#: as the bench grid: 320 points per size).  Shards are subprocesses,
#: so each pays a python+numpy interpreter start (~0.2-0.4s); against
#: the 102k-point default grid — ~40ms of single-process wall at the
#: binary campaign's measured throughput — that overhead can never
#: amortize.  The sharded section therefore measures the regime
#: sharding exists for: a grid large enough (6.4M points) that kernel
#: time dominates process overhead and per-core scaling is visible.
DEFAULT_N_SHARDED_SIZES = 20000

#: Shard processes of the sharded section (the CI runner has 4 cores).
DEFAULT_N_SHARDS = 4

#: Points of the per-point *pipeline* baseline (executor + one JSON
#: file per point): a uniform stride over the grid, timed and scaled.
PIPELINE_SAMPLE_POINTS = 4096

#: Points of the pattern per-point baselines (simulationless, but a
#: scalar predictor call per point — sampled smaller to keep the
#: benchmark itself quick).
PATTERN_SAMPLE_POINTS = 512


def campaign_grid_spec(n_sizes: int = DEFAULT_N_SIZES) -> dict:
    """The fixed analytic bench campaign grid (declarative JSON spec)."""
    return {
        "kind": "bench",
        "backend": "analytic",
        "base": {"iterations": 3},
        "axes": {
            "approach": [
                "pt2pt_single",
                "pt2pt_many",
                "pt2pt_part",
                "pt2pt_part_old",
                "rma_single_passive",
                "rma_many_passive",
                "rma_single_active",
                "rma_many_active",
            ],
            "total_bytes": {"range": [1024, 1024 + n_sizes * 4096, 4096]},
            "n_threads": [1, 4, 16, 32],
            "theta": [1, 2],
            "gamma_us_per_mb": [0.0, 50.0, 100.0, 200.0, 400.0],
        },
    }


def pattern_campaign_grid_spec(
    n_sizes: int = DEFAULT_N_PATTERN_SIZES,
) -> dict:
    """The fixed analytic *pattern* campaign grid (Fig. 6-style sweep:
    application patterns x approaches x sizes x threads x noise)."""
    return {
        "kind": "pattern",
        "backend": "analytic",
        "base": {"n_ranks": 8, "iterations": 3},
        "axes": {
            "pattern": ["halo3d", "sweep3d", "fft"],
            "approach": [
                "pt2pt_single",
                "pt2pt_many",
                "pt2pt_part",
                "pt2pt_part_old",
                "rma_single_passive",
                "rma_many_passive",
                "rma_single_active",
                "rma_many_active",
            ],
            "msg_bytes": {
                "range": [16384, 16384 + n_sizes * 16384, 16384]
            },
            "n_threads": [2, 4, 8],
            "noise": ["none", "single", "uniform", "gaussian"],
            "noise_us": [0.0, 25.0, 50.0, 100.0],
            "compute_us_per_mb": [0.0, 200.0],
        },
    }


def _merge_payload(path: Path, payload: dict) -> dict:
    """Carry the other family's section over from an existing file, so
    ``campaign-bench`` and ``campaign-bench --kind pattern`` co-own one
    artifact."""
    if not path.is_file():
        return payload
    try:
        existing = json.loads(path.read_text())
    except ValueError:
        return payload
    for section in ("pattern_campaign", "sharded_campaign"):
        if section not in payload and section in existing:
            payload[section] = existing[section]
    return payload


def _benchmark_bench(work: Path, n_sizes: int) -> dict:
    """The bench-kind measurement (top-level payload fields)."""
    from .scenario import execute, result_to_dict
    from .store import ResultStore

    grid = parse_grid_spec(campaign_grid_spec(n_sizes))
    # Warm the lazy imports (bench/apps/model layers load on first
    # execute) so no pipeline is charged one-time import cost.
    warm = grid.scenario_at(0)
    result_to_dict(warm, execute(warm))

    # The PR-5 status quo: columnar JSONL segments, synchronous writes.
    with stopwatch() as batched:
        store = CampaignStore.create(work / "store", grid)
        summary = run_campaign(store, async_write=False)
    if summary["executed"] != len(grid):
        raise RuntimeError(
            f"campaign root {work / 'store'} already held "
            f"{len(grid) - summary['executed']} of {len(grid)} points; "
            f"a resumed run would record inflated throughput — "
            f"benchmark against an empty --root"
        )
    store_stats = store.stats()

    # Binary .bin segments + the async segment writer (the current
    # defaults for a --binary campaign): same grid, same chunking.
    with stopwatch() as binary_run:
        bin_store = CampaignStore.create(
            work / "store-bin", grid, compression="binary"
        )
        bin_summary = run_campaign(bin_store)
    if bin_summary["executed"] != len(grid):
        raise RuntimeError(
            f"campaign root {work / 'store-bin'} was not empty — "
            f"benchmark against an empty --root"
        )
    bin_stats = bin_store.stats()
    binary_pps = len(grid) / binary_run.wall

    # Read path: a full iter_rows drain through the streaming k-way
    # merge, per store format.
    def _drain(campaign_store: CampaignStore) -> dict:
        with stopwatch() as drain:
            n_rows = sum(1 for _ in campaign_store.iter_rows())
        if n_rows != len(grid):
            raise RuntimeError(
                f"{campaign_store.root}: drained {n_rows} of "
                f"{len(grid)} rows"
            )
        return {
            "wall_s": round(drain.wall, 4),
            "points_per_s": round(n_rows / drain.wall, 1),
        }

    read_jsonl = _drain(store)
    read_binary = _drain(bin_store)

    # Columnar drain: the same latest-wins merge decided at the
    # index-range level, column blocks sliced as arrays (memmap views
    # for .bin stores) — no per-point Python objects anywhere.
    def _drain_columns(campaign_store: CampaignStore) -> dict:
        with stopwatch() as drain:
            n_points = sum(
                len(indices)
                for indices, _ in campaign_store.iter_columns()
            )
        if n_points != len(grid):
            raise RuntimeError(
                f"{campaign_store.root}: columnar drain covered "
                f"{n_points} of {len(grid)} points"
            )
        return {
            "wall_s": round(drain.wall, 4),
            "points_per_s": round(n_points / drain.wall, 1),
        }

    cols_jsonl = _drain_columns(store)
    cols_binary = _drain_columns(bin_store)
    cols_binary["speedup_vs_row_drain"] = round(
        cols_binary["points_per_s"] / read_binary["points_per_s"], 2
    )

    # Per-point pipeline on a uniform subsample, scaled: one
    # Backend.run() per point, one content-hashed file per point.
    # (Deliberately NOT through the current executor — it would
    # route the analytic batch through run_batch and measure the
    # vectorized kernel instead of the per-point status quo.)
    stride = max(1, len(grid) // PIPELINE_SAMPLE_POINTS)
    sample = [
        grid.scenario_at(i) for i in range(0, len(grid), stride)
    ]
    v1_store = ResultStore(work / "v1-store")
    with stopwatch() as pipeline:
        for scenario in sample:
            v1_store.put_dict(
                scenario, result_to_dict(scenario, execute(scenario))
            )
    pipeline_pps = len(sample) / pipeline.wall

    per_point = 0
    with stopwatch() as execute_only:
        for _, scenario in grid.points():
            result_to_dict(scenario, execute(scenario))
            per_point += 1
    execute_pps = per_point / execute_only.wall

    batched_pps = len(grid) / batched.wall
    return {
        "schema": _SCHEMA,
        #: Provenance: these are model evaluations, never measurements.
        "backend": "analytic",
        "campaign_schema": CAMPAIGN_SCHEMA,
        "grid": campaign_grid_spec(n_sizes),
        "n_points": len(grid),
        "python": platform.python_version(),
        "env": environment_provenance(),
        "batched": {
            "description": "columns-first JSONL segments, synchronous "
                           "writes (the PR-5 pipeline)",
            "wall_s": round(batched.wall, 4),
            "points_per_s": round(batched_pps, 1),
            "chunks": summary["chunks"],
            "segments": store_stats["segments"],
            "store_bytes": store_stats["total_bytes"],
        },
        "binary_campaign": {
            "description": "binary .bin column segments + async "
                           "segment writer (--binary defaults)",
            "wall_s": round(binary_run.wall, 4),
            "points_per_s": round(binary_pps, 1),
            "chunks": bin_summary["chunks"],
            "segments": bin_stats["segments"],
            "store_bytes": bin_stats["total_bytes"],
            "speedup_vs_jsonl": round(binary_pps / batched_pps, 2),
        },
        "read_path": {
            "description": "full iter_rows drain via the streaming "
                           "k-way merge, per store format",
            "jsonl": read_jsonl,
            "binary": read_binary,
            "columnar": {
                "description": "full iter_columns drain (range-level "
                               "merge, array slices end-to-end), per "
                               "store format",
                "jsonl": cols_jsonl,
                "binary": cols_binary,
            },
        },
        "per_point_pipeline": {
            "description": "one Backend.run() + one content-hashed JSON "
                           "file per point (v1 ResultStore), sampled",
            "sample_points": len(sample),
            "wall_s": round(pipeline.wall, 4),
            "points_per_s": round(pipeline_pps, 1),
            "projected_wall_s": round(len(grid) / pipeline_pps, 1),
        },
        "per_point_execute_only": {
            "description": "bare execute() + result_to_dict, no store",
            "wall_s": round(execute_only.wall, 4),
            "points_per_s": round(execute_pps, 1),
        },
        "speedup": round(batched_pps / pipeline_pps, 1),
        "speedup_vs_execute_only": round(batched_pps / execute_pps, 1),
    }


def _benchmark_pattern(work: Path, n_sizes: int) -> dict:
    """The pattern-kind measurement (the ``pattern_campaign`` section)."""
    from .campaign import _pattern_columns
    from .scenario import execute, result_to_dict
    from .store import ResultStore

    grid = parse_grid_spec(pattern_campaign_grid_spec(n_sizes))
    warm = grid.scenario_at(0)
    result_to_dict(warm, execute(warm))

    # End-to-end columns-first campaign, *including* the one-time
    # topology builds (cold cache would be the honest number, but the
    # process may have warmed some geometries via the baselines of a
    # previous section — the fixed grid's geometry set is private to
    # this spec, so in practice the builds land here).
    with stopwatch() as batched:
        store = CampaignStore.create(work / "pattern-store", grid)
        summary = run_campaign(store)
    if summary["executed"] != len(grid):
        raise RuntimeError(
            f"campaign root {work / 'pattern-store'} already held "
            f"{len(grid) - summary['executed']} of {len(grid)} points — "
            f"benchmark against an empty --root"
        )
    store_stats = store.stats()
    batched_pps = len(grid) / batched.wall

    # PR-4 config path: a PatternConfig per point (scenario_at) into
    # the batch kernel — the pattern-campaign status quo before the
    # columns-first fast path.  Sampled contiguously (chunk-shaped,
    # like the real path ran) and scaled.
    chunk = min(len(grid), 4 * PATTERN_SAMPLE_POINTS)
    with stopwatch() as config:
        _pattern_columns(grid, 0, chunk)
    config_pps = chunk / config.wall

    # Per-point pipeline: one Backend.run() + one content-hashed file
    # per point (v1 ResultStore), sampled with a uniform stride.
    stride = max(1, len(grid) // PATTERN_SAMPLE_POINTS)
    sample = [
        grid.scenario_at(i) for i in range(0, len(grid), stride)
    ]
    v1_store = ResultStore(work / "pattern-v1-store")
    with stopwatch() as pipeline:
        for scenario in sample:
            v1_store.put_dict(
                scenario, result_to_dict(scenario, execute(scenario))
            )
    pipeline_pps = len(sample) / pipeline.wall

    return {
        "backend": "analytic",
        "grid": pattern_campaign_grid_spec(n_sizes),
        "n_points": len(grid),
        "python": platform.python_version(),
        "env": environment_provenance(),
        "batched": {
            "description": "columns-first fast path: grid digits -> "
                           "geometry-cached topology summaries -> "
                           "vectorized kernel -> columnar segments",
            "wall_s": round(batched.wall, 4),
            "points_per_s": round(batched_pps, 1),
            "chunks": summary["chunks"],
            "segments": store_stats["segments"],
            "store_bytes": store_stats["total_bytes"],
        },
        "config_path": {
            "description": "PR-4 status quo: scenario_at() config per "
                           "point into the batch kernel, sampled",
            "sample_points": chunk,
            "points_per_s": round(config_pps, 1),
        },
        "per_point_pipeline": {
            "description": "one Backend.run() + one content-hashed JSON "
                           "file per point (v1 ResultStore), sampled",
            "sample_points": len(sample),
            "points_per_s": round(pipeline_pps, 1),
            "projected_wall_s": round(len(grid) / pipeline_pps, 1),
        },
        "speedup": round(batched_pps / pipeline_pps, 1),
        "speedup_vs_config_path": round(batched_pps / config_pps, 1),
    }


def _benchmark_sharded(work: Path, n_sizes: int, n_shards: int) -> dict:
    """The sharded-execution measurement (``sharded_campaign`` section).

    Times the same large analytic grid twice — once through the
    ordinary single-process binary campaign, once split across
    ``n_shards`` shard subprocesses and merged — and verifies the
    merged store is column-for-column equal to the single-process one
    before recording ``speedup_vs_single``.
    """
    import numpy as np

    from .scenario import execute, result_to_dict
    from .shard import run_sharded

    grid = parse_grid_spec(campaign_grid_spec(n_sizes))
    warm = grid.scenario_at(0)
    result_to_dict(warm, execute(warm))

    with stopwatch() as single:
        store = CampaignStore.create(
            work / "sharded-single", grid, compression="binary"
        )
        summary = run_campaign(store)
    if summary["executed"] != len(grid):
        raise RuntimeError(
            f"campaign root {work / 'sharded-single'} was not empty — "
            f"benchmark against an empty --root"
        )
    single_pps = len(grid) / single.wall

    with stopwatch() as sharded:
        target = CampaignStore.create(
            work / "sharded-store", grid, compression="binary"
        )
        sharded_summary = run_sharded(target, n_shards=n_shards)
    if target.n_completed != len(grid):
        raise RuntimeError(
            f"sharded campaign covered {target.n_completed} of "
            f"{len(grid)} points"
        )
    sharded_pps = len(grid) / sharded.wall

    # The speedup only counts if the merged store holds the same data.
    ref_idx, ref_cols = store.read_columns()
    got_idx, got_cols = target.read_columns()
    if not np.array_equal(ref_idx, got_idx) or any(
        not np.array_equal(ref_cols[name], got_cols[name])
        for name in ref_cols
    ):
        raise RuntimeError(
            "merged sharded store differs from the single-process "
            "store — refusing to record the speedup"
        )

    return {
        "backend": "analytic",
        "grid": campaign_grid_spec(n_sizes),
        "n_points": len(grid),
        "n_shards": n_shards,
        "python": platform.python_version(),
        "env": environment_provenance(),
        "single": {
            "description": "one process, binary segments + async "
                           "writer (the binary_campaign defaults)",
            "wall_s": round(single.wall, 4),
            "points_per_s": round(single_pps, 1),
        },
        "sharded": {
            "description": f"{n_shards} shard subprocesses "
                           f"(campaign run --shards), merged and "
                           f"verified column-equal to the single run",
            "wall_s": round(sharded.wall, 4),
            "points_per_s": round(sharded_pps, 1),
            "shards_run": len(sharded_summary["shards"]),
            "segments_adopted": (
                sharded_summary["merge"]["segments_adopted"]
                if sharded_summary["merge"]
                else 0
            ),
            "merge_wall_s": (
                round(sharded_summary["merge"]["wall_s"], 4)
                if sharded_summary["merge"]
                else 0.0
            ),
        },
        "speedup_vs_single": round(sharded_pps / single_pps, 2),
        "verified_equivalent": True,
    }


def benchmark_campaign(
    path: str | Path = DEFAULT_JSON_PATH,
    n_sizes: Optional[int] = None,
    root: Optional[str | Path] = None,
    kind: str = "bench",
    n_shards: int = DEFAULT_N_SHARDS,
) -> dict:
    """Run the fixed grid of ``kind`` batched and per-point; persist.

    ``root`` keeps the campaign directory for inspection; by default it
    lives in a temp dir and is removed after the measurement.  Returns
    the written payload (both families' sections, merged).
    """
    if kind not in ("bench", "pattern", "sharded"):
        raise ValueError(f"unknown campaign-bench kind {kind!r}")
    keep = root is not None
    work = Path(root) if keep else Path(tempfile.mkdtemp()) / "campaign"
    work.mkdir(parents=True, exist_ok=True)
    target = Path(path)
    try:
        if kind == "bench":
            payload = _benchmark_bench(
                work, n_sizes if n_sizes else DEFAULT_N_SIZES
            )
        else:
            # Pattern/sharded sections ride on the existing payload (or
            # a stub carrying provenance when none exists yet).
            if target.is_file():
                try:
                    payload = json.loads(target.read_text())
                except ValueError:
                    payload = {"schema": _SCHEMA}
            else:
                payload = {"schema": _SCHEMA}
            if kind == "pattern":
                payload["pattern_campaign"] = _benchmark_pattern(
                    work, n_sizes if n_sizes else DEFAULT_N_PATTERN_SIZES
                )
            else:
                payload["sharded_campaign"] = _benchmark_sharded(
                    work,
                    n_sizes if n_sizes else DEFAULT_N_SHARDED_SIZES,
                    n_shards,
                )
    finally:
        if not keep:
            shutil.rmtree(work.parent, ignore_errors=True)

    payload = _merge_payload(target, payload)
    target.write_text(json.dumps(payload, indent=2) + "\n")
    return payload
