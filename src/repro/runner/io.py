"""Shared store I/O helpers: atomic writes and JSONL export plumbing.

Every persistent artifact in the runner layer — v1 result records,
campaign headers, segments, indexes, JSONL exports — goes through the
same two idioms:

* **atomic replace** — write to a unique temp file in the target's
  directory, then ``os.replace`` it into place, so a store shared by
  parallel workers or interrupted mid-run never holds a torn file;
* **path-or-handle targets** — export entry points accept either a
  filesystem path (opened, parents created) or an open file object
  (written through, left open), so ``--out FILE`` and stdout piping
  share one code path.

Both used to be duplicated between :mod:`repro.runner.store` and
:mod:`repro.runner.campaign`; this module is the single owner now.
"""

from __future__ import annotations

import gzip
import json
import os
import tempfile
from pathlib import Path
from typing import Callable, IO, Iterable, List, Tuple, Union

__all__ = [
    "BINARY_DTYPES",
    "atomic_write_bytes",
    "atomic_write_text",
    "open_segment_text",
    "read_binary_segment",
    "read_columnar_text_segment",
    "read_segment_header",
    "write_jsonl",
    "write_npz",
]

#: Column dtypes a binary segment may carry (explicit little-endian, so
#: the on-disk bytes are identical on any host): float64 and int64.
BINARY_DTYPES = ("<f8", "<i8")


def atomic_write_bytes(target: Path, data: bytes) -> None:
    """Atomically replace ``target`` with raw ``data`` (creating
    parents) — the binary-segment twin of :func:`atomic_write_text`."""
    target = Path(target)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        prefix=target.stem + ".", suffix=".tmp", dir=target.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp, target)
    except BaseException:
        os.unlink(tmp)
        raise


def atomic_write_text(target: Path, text: str, compress: bool = False) -> None:
    """Atomically replace ``target`` with ``text`` (creating parents).

    The temp name is unique per writer, so concurrent processes writing
    the same target cannot interleave; the last ``os.replace`` wins with
    a whole file either way.  With ``compress=True`` the bytes on disk
    are gzip-compressed (``mtime=0`` so identical text always produces
    identical bytes — the campaign byte-identity invariant).
    """
    target = Path(target)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        prefix=target.stem + ".", suffix=".tmp", dir=target.parent
    )
    try:
        if compress:
            with os.fdopen(fd, "wb") as handle:
                handle.write(
                    gzip.compress(text.encode("utf-8"), mtime=0)
                )
        else:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
        os.replace(tmp, target)
    except BaseException:
        os.unlink(tmp)
        raise


def open_segment_text(path: Path) -> IO[str]:
    """Open a JSONL segment for text reading, gzip-transparent.

    Dispatch is by suffix (``.gz`` — the only compressed form the
    campaign store writes), so plain and compressed segments can
    coexist in one store and every reader stays oblivious.
    """
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    return path.open()


def _binary_layout(header: dict) -> List[Tuple[str, str, int]]:
    """``(name, dtype, nbytes)`` per column block, header order.

    Raises ``ValueError`` on anything outside the binary-segment
    contract (unknown dtype, malformed column spec) — the caller treats
    that exactly like an unparseable JSONL header.
    """
    import numpy as np

    count = int(header["count"])
    layout: List[Tuple[str, str, int]] = []
    for name, dtype in header["columns"]:
        if dtype not in BINARY_DTYPES:
            raise ValueError(
                f"binary segment column {name!r} has unsupported "
                f"dtype {dtype!r} (expected one of {BINARY_DTYPES})"
            )
        layout.append((str(name), str(dtype), count * np.dtype(dtype).itemsize))
    return layout


def read_segment_header(path: Path) -> dict:
    """Parse a segment's first-line JSON header, any on-disk format.

    ``.bin`` segments are additionally *size-validated*: the header's
    declared column layout must account for every payload byte, so a
    truncated (or trailing-garbage) binary file fails here — the same
    "unreadable, never coverage" contract a truncated ``.jsonl.gz``
    hits via its EOFError.  Raises OSError/ValueError on any problem.
    """
    path = Path(path)
    if path.suffix == ".bin":
        with path.open("rb") as handle:
            line = handle.readline()
            if not line.endswith(b"\n"):
                raise ValueError(f"{path}: truncated binary header")
            header = json.loads(line)
            payload_start = handle.tell()
        expected = payload_start + sum(
            nbytes for _, _, nbytes in _binary_layout(header)
        )
        actual = path.stat().st_size
        if actual != expected:
            raise ValueError(
                f"{path}: payload size mismatch "
                f"(header declares {expected} bytes, file has {actual})"
            )
        return header
    with open_segment_text(path) as handle:
        header = json.loads(handle.readline())
    if not isinstance(header, dict):
        raise ValueError(f"{path}: segment header is not an object")
    return header


def read_binary_segment(path: Path) -> Tuple[dict, List]:
    """A binary segment as ``(header, [column, ...])``.

    Columns come back as read-only ``numpy.memmap`` views over the
    payload blocks — zero parse, zero copy, O(1) resident memory until
    a consumer touches the pages.  The header is size-validated first
    (:func:`read_segment_header`), so a truncated file raises here
    instead of yielding short columns.
    """
    import numpy as np

    path = Path(path)
    header = read_segment_header(path)
    with path.open("rb") as handle:
        handle.readline()
        offset = handle.tell()
    columns = []
    for _, dtype, nbytes in _binary_layout(header):
        columns.append(
            np.memmap(
                path, dtype=dtype, mode="r",
                offset=offset, shape=(int(header["count"]),),
            )
        )
        offset += nbytes
    return header, columns


def read_columnar_text_segment(path: Path) -> Tuple[dict, List[list]]:
    """A ``*-cols`` JSONL segment as ``(header, [column list, ...])``.

    Each body line is one whole-column JSON array; one C-level
    ``json.loads`` per column is the read twin of the one ``json.dumps``
    per column the columnar append wrote.  Gzip-transparent.
    """
    with open_segment_text(path) as handle:
        header = json.loads(handle.readline())
        columns = [json.loads(line) for line in handle if line.strip()]
    return header, columns


def write_npz(target: Union[str, Path], arrays: dict) -> None:
    """Atomically write named arrays as an uncompressed ``.npz``
    (creating parents) — the columnar-export twin of
    :func:`atomic_write_text`."""
    import numpy as np

    target = Path(target)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        prefix=target.stem + ".", suffix=".tmp", dir=target.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **arrays)
        os.replace(tmp, target)
    except BaseException:
        os.unlink(tmp)
        raise


def write_jsonl(
    target: Union[str, Path, IO[str]],
    records: Iterable[dict],
    encode: Callable[[dict], str] = lambda record: json.dumps(
        record, sort_keys=True, separators=(",", ":")
    ),
) -> int:
    """Write ``records`` as JSON lines to a path or open file object.

    Returns the record count.  A path target is created (with parents)
    and closed; a file-object target is written through and left open —
    the shared contract of every ``export_jsonl`` entry point.
    """
    def _write(handle: IO[str]) -> int:
        count = 0
        for record in records:
            handle.write(encode(record) + "\n")
            count += 1
        return count

    if hasattr(target, "write"):
        return _write(target)  # type: ignore[arg-type]
    path = Path(target)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        return _write(handle)
