"""Shared store I/O helpers: atomic writes and JSONL export plumbing.

Every persistent artifact in the runner layer — v1 result records,
campaign headers, segments, indexes, JSONL exports — goes through the
same two idioms:

* **atomic replace** — write to a unique temp file in the target's
  directory, then ``os.replace`` it into place, so a store shared by
  parallel workers or interrupted mid-run never holds a torn file;
* **path-or-handle targets** — export entry points accept either a
  filesystem path (opened, parents created) or an open file object
  (written through, left open), so ``--out FILE`` and stdout piping
  share one code path.

Both used to be duplicated between :mod:`repro.runner.store` and
:mod:`repro.runner.campaign`; this module is the single owner now.
"""

from __future__ import annotations

import gzip
import json
import os
import tempfile
from pathlib import Path
from typing import Callable, IO, Iterable, Union

__all__ = [
    "atomic_write_text",
    "open_segment_text",
    "write_jsonl",
]


def atomic_write_text(target: Path, text: str, compress: bool = False) -> None:
    """Atomically replace ``target`` with ``text`` (creating parents).

    The temp name is unique per writer, so concurrent processes writing
    the same target cannot interleave; the last ``os.replace`` wins with
    a whole file either way.  With ``compress=True`` the bytes on disk
    are gzip-compressed (``mtime=0`` so identical text always produces
    identical bytes — the campaign byte-identity invariant).
    """
    target = Path(target)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        prefix=target.stem + ".", suffix=".tmp", dir=target.parent
    )
    try:
        if compress:
            with os.fdopen(fd, "wb") as handle:
                handle.write(
                    gzip.compress(text.encode("utf-8"), mtime=0)
                )
        else:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
        os.replace(tmp, target)
    except BaseException:
        os.unlink(tmp)
        raise


def open_segment_text(path: Path) -> IO[str]:
    """Open a JSONL segment for text reading, gzip-transparent.

    Dispatch is by suffix (``.gz`` — the only compressed form the
    campaign store writes), so plain and compressed segments can
    coexist in one store and every reader stays oblivious.
    """
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    return path.open()


def write_jsonl(
    target: Union[str, Path, IO[str]],
    records: Iterable[dict],
    encode: Callable[[dict], str] = lambda record: json.dumps(
        record, sort_keys=True, separators=(",", ":")
    ),
) -> int:
    """Write ``records`` as JSON lines to a path or open file object.

    Returns the record count.  A path target is created (with parents)
    and closed; a file-object target is written through and left open —
    the shared contract of every ``export_jsonl`` entry point.
    """
    def _write(handle: IO[str]) -> int:
        count = 0
        for record in records:
            handle.write(encode(record) + "\n")
            count += 1
        return count

    if hasattr(target, "write"):
        return _write(target)  # type: ignore[arg-type]
    path = Path(target)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        return _write(handle)
