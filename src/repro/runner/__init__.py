"""Unified scenario-execution engine.

One declarative grid language, parallel fan-out, and cached/resumable
results for every execution path in the repo:

* :class:`~repro.runner.scenario.ScenarioGrid` — declarative axis
  cross-products over either spec family (``bench`` two-rank points,
  ``pattern`` N-rank application points), expanded in a deterministic
  order;
* :class:`~repro.runner.executor.ParallelExecutor` — ``multiprocessing``
  fan-out (``jobs=N``; ``jobs=1`` is plain in-process serial) with
  results reassembled in submission order and moved through one
  serialized form, so parallel output is byte-identical to serial;
* :class:`~repro.runner.store.ResultStore` — content-addressed JSON
  cache keyed by scenario hash; ``resume=True`` serves warm points
  without simulating.

The figure drivers, ``bench.sweep``, ``apps.sweep``, and the CLI
(``--jobs`` / ``--store`` / ``--resume``) all submit their grids here.

Campaign-scale grids (10⁵–10⁶ points and beyond) go through
:mod:`repro.runner.campaign` instead: the same declarative grid, but
index-addressed chunks streamed into a sharded JSON-lines
:class:`~repro.runner.campaign.CampaignStore` — a few hundred segment
files instead of one file per point — with the analytic fast path
decoding grid indices straight into vectorized-kernel columns.

Quick start
-----------
>>> from repro.runner import ScenarioGrid, run_scenarios
>>> grid = ScenarioGrid(
...     "bench",
...     base={"iterations": 2, "n_threads": 1},
...     axes={"approach": ["pt2pt_single", "pt2pt_part"],
...           "total_bytes": [1024, 65536]},
... )
>>> report = run_scenarios(grid.expand(), jobs=1)
>>> len(report.results)
4
"""

from .campaign import CampaignStore, parse_grid_spec, run_campaign
from .executor import (
    ParallelExecutor,
    RunReport,
    default_jobs,
    run_scenarios,
    run_specs,
)
from .planner import (
    Chunk,
    ExecutionPlan,
    available_cpus,
    plan_execution,
    shard_plan,
)
from .profile import Attribution, build_attribution, render_profile
from .scenario import (
    DEFAULT_BACKEND,
    SCHEMA,
    Scenario,
    ScenarioGrid,
    execute,
    result_from_dict,
    result_to_dict,
    scenario_for,
)
from .shard import merge_shards, run_shard, run_sharded, shard_token
from .store import ResultStore

__all__ = [
    "SCHEMA",
    "DEFAULT_BACKEND",
    "Scenario",
    "ScenarioGrid",
    "scenario_for",
    "execute",
    "result_to_dict",
    "result_from_dict",
    "ParallelExecutor",
    "RunReport",
    "ResultStore",
    "CampaignStore",
    "parse_grid_spec",
    "run_campaign",
    "Chunk",
    "ExecutionPlan",
    "available_cpus",
    "plan_execution",
    "shard_plan",
    "merge_shards",
    "run_shard",
    "run_sharded",
    "shard_token",
    "Attribution",
    "build_attribution",
    "render_profile",
    "run_scenarios",
    "run_specs",
    "default_jobs",
]
